//! Offline shim for the slice of the `parking_lot` API used by AnKerDB.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! interface: `lock()`/`read()`/`write()` return guards directly, a poisoned
//! lock is transparently recovered (the data is still consistent for our
//! workloads — a panicking test thread should not cascade), and
//! [`Condvar::wait_for`] takes `&mut MutexGuard` like upstream.
//!
//! ```
//! use parking_lot::{Mutex, RwLock};
//!
//! let m = Mutex::new(1);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 2);
//!
//! let rw = RwLock::new(vec![1, 2]);
//! assert_eq!(rw.read().len(), 2);
//! rw.write().push(3);
//! assert_eq!(rw.read().len(), 3);
//! ```

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily move the std guard out
    // through `&mut MutexGuard`; it is `Some` at every other moment.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard vacated")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard vacated")
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable taking `&mut MutexGuard`, like `parking_lot`'s.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard vacated");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard vacated");
        let (g, result) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(0u32);
        *m.lock() = 5;
        assert_eq!(*m.lock(), 5);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 2);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
