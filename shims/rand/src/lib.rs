//! Offline shim for the slice of the `rand` crate API used by AnKerDB.
//!
//! The build environment has no registry access, so this crate provides the
//! handful of items the workspace imports — [`Rng`],
//! [`SeedableRng`], and [`rngs::SmallRng`] — with the same names and
//! signatures as `rand` 0.9. The generator is xoshiro256++, seeded through
//! SplitMix64 exactly like upstream `SmallRng`, so streams are deterministic
//! for a given seed.
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let x = rng.random_range(0..100u32);
//! assert!(x < 100);
//! let f = rng.random_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&f));
//! ```

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words, with the sampling methods `rand` 0.9
/// puts on its `Rng` trait.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample from `range` (`low..high` or `low..=high`).
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
        Self: Sized,
    {
        let (low, high, inclusive) = range.bounds();
        T::sample_range(self, low, high, inclusive)
    }

    /// A uniform random `bool`.
    fn random_bool(&mut self) -> bool
    where
        Self: Sized,
    {
        self.next_u64() & 1 == 1
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a half-open or closed range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample from `[low, high)` if `inclusive` is false, `[low, high]` otherwise.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (high as $wide).wrapping_sub(low as $wide).wrapping_add(1)
                } else {
                    assert!(low < high, "cannot sample from empty range");
                    (high as $wide).wrapping_sub(low as $wide)
                };
                if span == 0 {
                    // Inclusive range covering the whole domain.
                    return rng.next_u64() as $wide as $t;
                }
                // Widening-multiply range reduction (Lemire); bias is far below
                // anything a test or benchmark workload can observe.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span as u128) >> 64) as $wide;
                (low as $wide).wrapping_add(hi) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                if !inclusive {
                    assert!(low < high, "cannot sample from empty range");
                }
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = low + unit * (high - low);
                // `low + unit*(high-low)` can round up to exactly `high`;
                // keep half-open ranges half-open like upstream rand.
                if !inclusive && v >= high {
                    high.next_down().max(low)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Decompose into `(low, high, inclusive)`.
    fn bounds(self) -> (T, T, bool);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        let (s, e) = self.into_inner();
        (s, e, true)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++), mirroring
    /// `rand::rngs::SmallRng` on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(1.0..2.0f64);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn covers_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[cfg(test)]
mod float_edge_tests {
    use super::{Rng, SampleUniform};

    /// An rng pinned to all-ones, driving `unit` to its maximum.
    struct MaxRng;
    impl Rng for MaxRng {
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    #[test]
    fn half_open_float_range_excludes_high() {
        let v = f64::sample_range(&mut MaxRng, 1_000.0, 500_000.0, false);
        assert!(v < 500_000.0, "got excluded upper bound: {v}");
        let w = f64::sample_range(&mut MaxRng, 0.0, 1.0, false);
        assert!(w < 1.0);
    }
}
