//! Deterministic RNG and case-level error type for the shim harness.

use std::fmt;

/// SplitMix64 generator, seeded from the test path and case index so every
//  run regenerates the same inputs without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a) and a case counter.
    pub fn deterministic(test_path: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Why a generated case did not pass: an assertion failure, or a
/// `prop_assume!` rejection (which merely skips the case).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError {
            message,
            rejection: false,
        }
    }

    pub fn reject() -> TestCaseError {
        TestCaseError {
            message: "input rejected by prop_assume!".to_owned(),
            rejection: true,
        }
    }

    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::deterministic("x::y", 3);
        let mut b = TestRng::deterministic("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_bounds() {
        let mut rng = TestRng::deterministic("bounds", 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
