//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length bounds for collection strategies (inclusive on both ends).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec()`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn vec_lengths_in_bounds() {
        let s = vec(Just(7u8), 2..5);
        let mut rng = TestRng::deterministic("veclen", 0);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
    }
}
