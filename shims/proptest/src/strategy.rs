//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking; a strategy
/// simply draws a value from the RNG. Combinator methods carry a
/// `Self: Sized` bound so `dyn Strategy<Value = T>` stays object-safe for
/// [`BoxedStrategy`].
pub trait Strategy {
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted union of strategies over a common value type, as built by
/// `prop_oneof!`.
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: std::fmt::Debug> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total_weight }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {:?}", self);
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Inclusive range spanning the whole 64-bit domain.
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `&str` patterns act as generators for a small regex subset:
/// literal characters, character classes (`[a-z0-9_]`), and the quantifiers
/// `{n}`, `{m,n}`, `?`, `+`, `*` (the unbounded ones capped at 8 repeats).
/// This covers patterns like `"[a-z]{1,8}"` used by the storage tests.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    set.extend((lo..=hi).filter(|c| c.is_ascii()));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            assert!(!set.is_empty(), "empty character class in {pattern:?}");
            set
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '+' || chars[i] == '*' || chars[i] == '?') {
            let q = chars[i];
            i += 1;
            match q {
                '+' => (1, 8),
                '*' => (0, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_generator_subset() {
        let mut rng = TestRng::deterministic("pattern", 0);
        for _ in 0..200 {
            let s = generate_pattern("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "bad len: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = generate_pattern("ab[0-9]+", &mut rng);
            assert!(t.starts_with("ab") && t.len() >= 3);
            assert!(t[2..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn union_honours_weights() {
        let u = Union::new(vec![(3, Just(0u8).boxed()), (1, Just(1u8).boxed())]);
        let mut rng = TestRng::deterministic("weights", 0);
        let mut counts = [0u32; 2];
        for _ in 0..4000 {
            counts[u.generate(&mut rng) as usize] += 1;
        }
        // ~3:1 split with generous tolerance.
        assert!(counts[0] > counts[1] * 2, "split was {counts:?}");
    }

    #[test]
    fn signed_inclusive_range() {
        let mut rng = TestRng::deterministic("signed", 0);
        for _ in 0..1000 {
            let v = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&v));
        }
    }
}
