//! Offline shim for the slice of the `proptest` API used by AnKerDB's
//! property tests.
//!
//! The build environment has no registry access, so this crate implements a
//! compact property-testing harness behind proptest's names: the
//! [`Strategy`] trait with `prop_map` and `boxed`, range / tuple / `Just` /
//! `any::<T>()` strategies, a simple-character-class string strategy,
//! `proptest::collection::vec`, weighted `prop_oneof!`, and the `proptest!`
//! / `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from upstream: failing inputs are *not shrunk* (the failing
//! case and its RNG seed are printed instead), and generation is seeded
//! deterministically from the test name and case index so runs are
//! reproducible without a persistence file.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // Inside a test crate this would carry `#[test]`.
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{TestCaseError, TestRng};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Types with a canonical "anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy producing any value of `T` (uniform over the representation).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary + std::fmt::Debug>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// The body of a `proptest!`-generated test function, mirroring upstream's
/// closure-returning-`Result` structure (`prop_assert*` returns `Err` rather
/// than panicking, so helper closures inside the body are not torn).
#[macro_export]
macro_rules! proptest {
    // With a leading `#![proptest_config(...)]`.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::deterministic(test_path, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Render the inputs before the body may consume them; the
                    // string is only shown when the case fails.
                    let inputs = format!(
                        concat!($("\n    ", stringify!($arg), " = {:?}"),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err(e) if e.is_rejection() => continue,
                        Err(e) => panic!(
                            "proptest case {case} of {test_path} failed: {e}\n  inputs:{inputs}"
                        ),
                    }
                }
            }
        )*
    };
    // Without a config: default number of cases.
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    // The stringified condition goes in as a runtime argument, not as part
    // of the format string: conditions like `matches!(x, Some { .. })`
    // contain braces that would otherwise parse as format placeholders.
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), left, right
        );
    }};
}

/// Fail the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discard the current case (counted as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Weighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn range_strategy_in_bounds(x in 5u32..10) {
            prop_assert!((5..10).contains(&x));
        }

        #[test]
        fn inclusive_range_in_bounds(x in 0u8..=3) {
            prop_assert!(x <= 3);
        }

        #[test]
        fn vec_and_oneof(v in crate::collection::vec(prop_oneof![2 => Just(1u8), 1 => Just(2u8)], 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn map_applies(x in (0u32..10).prop_map(|v| v * 3)) {
            prop_assert_eq!(x % 3, 0);
            prop_assert!(x < 30);
        }

        #[test]
        fn string_pattern(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn one_arg_assert_with_braces_compiles(x in 0u32..4) {
            // Braces in the stringified condition must not be parsed as
            // format placeholders.
            prop_assert!(matches!(Some(x), Some { .. }));
        }
    }
}
