//! Offline shim for the slice of the `criterion` API used by AnKerDB's
//! benches.
//!
//! The build environment has no registry access, so this crate provides a
//! small wall-clock harness behind criterion's names: benchmark groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is warmed
//! up once, then timed for `sample_size` iterations (capped by a per-bench
//! time budget), and a `name/param  median  mean` line is printed.
//!
//! Environment knobs:
//!
//! * `ANKER_BENCH_JSON=<path>` — append one JSON object per benchmark
//!   (`{"bench": ..., "mean_ns": ..., "median_ns": ..., "samples": ...}`),
//!   which `EXPERIMENTS.md` uses to record baselines. A relative path is
//!   resolved against the **workspace root** (cargo runs bench binaries
//!   with the owning package as cwd, which is not where you want the
//!   file). Appending is deliberate — one `cargo bench` run spans several
//!   bench binaries that all add to the same file — so delete the file
//!   before regenerating a baseline.
//! * `ANKER_BENCH_BUDGET_MS=<n>` — per-benchmark sampling budget
//!   (default 2000 ms).
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default();
//! let mut group = c.benchmark_group("doc_smoke");
//! group.sample_size(3);
//! group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
//! group.finish();
//! ```

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label of one benchmark within a group: a function name plus an optional
/// parameter, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples_ns: Vec<u64>,
    target_samples: usize,
    budget: Duration,
}

impl Bencher {
    /// Call `f` repeatedly, recording one wall-clock sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let began = Instant::now();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(f());
            self.samples_ns.push(start.elapsed().as_nanos() as u64);
            if began.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations to aim for per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            target_samples: self.sample_size,
            budget: self.criterion.budget,
        };
        f(&mut bencher);
        self.criterion
            .report(&self.name, &id.label, &bencher.samples_ns);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
    json_path: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let budget_ms = std::env::var("ANKER_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2000u64);
        Criterion {
            budget: Duration::from_millis(budget_ms),
            json_path: std::env::var("ANKER_BENCH_JSON")
                .ok()
                .map(resolve_json_path),
        }
    }
}

/// Resolve a relative `ANKER_BENCH_JSON` against the workspace root, so the
/// file lands in one predictable place no matter which bench binary (and
/// thus which package cwd) is writing.
fn resolve_json_path(path: String) -> std::path::PathBuf {
    let p = std::path::PathBuf::from(&path);
    if p.is_absolute() {
        p
    } else {
        // This shim lives at <workspace>/shims/criterion.
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 20,
        }
    }

    fn report(&mut self, group: &str, label: &str, samples_ns: &[u64]) {
        if samples_ns.is_empty() {
            println!("  {label:<40} <no samples>");
            return;
        }
        let mut sorted = samples_ns.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<u64>() / sorted.len() as u64;
        println!(
            "  {label:<40} median {:>12}   mean {:>12}   ({} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            sorted.len()
        );
        if let Some(path) = &self.json_path {
            let entry = format!(
                "{{\"bench\":\"{group}/{label}\",\"mean_ns\":{mean},\"median_ns\":{median},\"samples\":{}}}",
                sorted.len()
            );
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| writeln!(f, "{entry}"));
            if let Err(e) = written {
                eprintln!(
                    "warning: could not write ANKER_BENCH_JSON entry to {}: {e}",
                    path.display()
                );
            }
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declare a group-runner function from a list of `fn(&mut Criterion)` targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the given groups. `--test` (passed by `cargo test`
/// to `harness = false` targets) short-circuits to a fast smoke run.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                std::env::set_var("ANKER_BENCH_BUDGET_MS", "1");
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_json_path_resolves_to_workspace_root() {
        let p = resolve_json_path("bench.json".to_owned());
        assert!(p.is_absolute());
        assert!(p.ends_with("shims/criterion/../../bench.json"));
        let abs = resolve_json_path("/tmp/bench.json".to_owned());
        assert_eq!(abs, std::path::PathBuf::from("/tmp/bench.json"));
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            budget: Duration::from_millis(50),
            json_path: None,
        };
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("shim_smoke");
            g.sample_size(5);
            g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
            g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
                ran += 0; // closure may capture environment
                b.iter(|| black_box(x) * 2)
            });
            g.finish();
        }
        ran += 1;
        assert_eq!(ran, 1);
    }
}
