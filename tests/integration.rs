//! Cross-crate integration tests through the `ankerdb` facade: the full
//! stack from the simulated kernel up to TPC-H queries.

use ankerdb::core::{AnkerDb, DbConfig, IsolationLevel, ProcessingMode, TxnKind};
use ankerdb::snapshot::{Snapshotter, VmSnapshotter};
use ankerdb::storage::{ColumnDef, LogicalType, Schema, Value};
use ankerdb::tpch::gen::{self, TpchConfig};
use ankerdb::tpch::oltp::{run_oltp, OltpKind};
use ankerdb::tpch::queries::{q1, q6};
use ankerdb::vmem::{Kernel, MapBacking, Prot, Share};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn facade_exposes_the_full_stack() {
    // Kernel level.
    let kernel = Kernel::default();
    let space = kernel.create_space();
    let ps = space.page_size();
    let area = space
        .mmap(4 * ps, Prot::READ_WRITE, Share::Private, MapBacking::Anon)
        .unwrap();
    space.write_u64(area, 99).unwrap();
    let snap = space.vm_snapshot(None, area, 4 * ps).unwrap();
    space.write_u64(area, 100).unwrap();
    assert_eq!(space.read_u64(snap).unwrap(), 99);

    // Snapshot-technique level.
    let mut s = VmSnapshotter::new(2, 8).unwrap();
    s.write_base(0, 0, 0, 5).unwrap();
    let id = s.snapshot_columns(2).unwrap();
    s.write_base(0, 0, 0, 6).unwrap();
    assert_eq!(s.read_snapshot(id, 0, 0, 0).unwrap(), 5);

    // Database level.
    let db = AnkerDb::new(DbConfig::default());
    assert_eq!(db.config().mode, ProcessingMode::Heterogeneous);
    assert_eq!(db.config().isolation, IsolationLevel::Serializable);
}

#[test]
fn database_survives_a_life_story() {
    // Create, load, update under all kinds of transactions, snapshot,
    // GC — one long scenario exercising every layer together.
    let db = AnkerDb::new(
        DbConfig::heterogeneous_serializable()
            .with_snapshot_every(10)
            .with_gc_interval(None),
    );
    let t = db.create_table(
        "events",
        Schema::new(vec![
            ColumnDef::new("count", LogicalType::Int),
            ColumnDef::new("weight", LogicalType::Double),
        ]),
        2048,
    );
    let schema = db.schema(t);
    let (count, weight) = (schema.col("count"), schema.col("weight"));
    db.fill_column(t, count, (0..2048).map(|i| Value::Int(i).encode()))
        .unwrap();
    db.fill_column(
        t,
        weight,
        (0..2048).map(|i| Value::Double(i as f64 / 2.0).encode()),
    )
    .unwrap();

    let mut checks = 0;
    for round in 0..100i64 {
        let mut w = db.begin(TxnKind::Oltp);
        let row = (round * 13 % 2048) as u32;
        let c = w.get_value(t, count, row).unwrap().as_int();
        w.update_value(t, count, row, Value::Int(c + 1)).unwrap();
        let wt = w.get_value(t, weight, row).unwrap().as_double();
        w.update_value(t, weight, row, Value::Double(wt * 1.01))
            .unwrap();
        w.commit().unwrap();

        if round % 10 == 0 {
            let mut olap = db.begin(TxnKind::Olap);
            let (sum, _) = olap
                .scan_on(t)
                .project(&[count])
                .fold(0i64, |acc, _, vals| acc + vals[0].as_int())
                .unwrap();
            olap.commit().unwrap();
            // Base sum plus one increment per commit visible at the
            // snapshot: between base and base + rounds so far.
            let base: i64 = (0..2048).sum();
            assert!(
                sum >= base && sum <= base + round + 1,
                "sum {sum} round {round}"
            );
            checks += 1;
        }
    }
    assert_eq!(checks, 10);
    let stats = db.stats();
    assert_eq!(stats.committed, 100);
    assert!(stats.epochs_triggered >= 9);
    assert!(
        stats.live_epochs <= 3,
        "epochs must retire: {}",
        stats.live_epochs
    );
}

#[test]
fn tpch_queries_run_against_live_updates() {
    let t = gen::generate(
        DbConfig::heterogeneous_serializable()
            .with_snapshot_every(25)
            .with_gc_interval(None),
        &TpchConfig {
            scale_factor: 0.004,
            seed: 3,
        },
    );
    let mut rng = SmallRng::seed_from_u64(1);
    // Interleave updates and analytics.
    for i in 0..200 {
        let _ = run_oltp(&t, OltpKind::sample(&mut rng), &mut rng);
        if i % 50 == 0 {
            let mut olap = t.db.begin(TxnKind::Olap);
            let rows = q1(&t, &mut olap, 90).unwrap();
            assert!(!rows.is_empty());
            let rev = q6(&t, &mut olap, 1995, 0.05, 24.0).unwrap();
            assert!(rev >= 0.0);
            olap.commit().unwrap();
        }
    }
    assert!(t.db.stats().committed >= 150);
}

#[test]
fn memory_is_bounded_under_snapshot_churn() {
    // Continuous snapshotting with OLAP consumers must not leak frames:
    // retired epochs return their COW pages.
    let db = AnkerDb::new(
        DbConfig::heterogeneous_serializable()
            .with_snapshot_every(1)
            .with_gc_interval(None),
    );
    let t = db.create_table(
        "hot",
        Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]),
        512,
    );
    let v = db.schema(t).col("v");
    db.fill_column(t, v, 0..512).unwrap();
    let mut peak = 0;
    for i in 0..400u32 {
        let mut w = db.begin(TxnKind::Oltp);
        w.update(t, v, i % 512, i as u64).unwrap();
        w.commit().unwrap();
        let mut olap = db.begin(TxnKind::Olap);
        let _ = olap.get(t, v, 0).unwrap();
        olap.commit().unwrap();
        peak = peak.max(db.kernel().frames_in_use());
    }
    // One column of 512 rows = 1 page. Retired areas wait in the graveyard
    // until the periodic drain (every 128 commits), so the peak is bounded
    // by the drain interval — not by the 400 epochs churned.
    assert!(peak < 200, "frames peaked at {peak}");
    // After an explicit safe-point drain, only the live state remains.
    db.run_gc_once();
    let now = db.kernel().frames_in_use();
    assert!(now < 20, "frames after drain: {now}");
}

#[test]
fn homogeneous_gc_thread_runs_in_background() {
    let db = AnkerDb::new(
        DbConfig::homogeneous_serializable()
            .with_gc_interval(Some(std::time::Duration::from_millis(20))),
    );
    let t = db.create_table(
        "x",
        Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]),
        64,
    );
    let v = db.schema(t).col("v");
    for i in 0..100u64 {
        let mut w = db.begin(TxnKind::Oltp);
        w.update(t, v, 0, i).unwrap();
        w.commit().unwrap();
    }
    assert!(db.total_versions() > 0);
    // Give the GC thread a few intervals.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while db.total_versions() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(db.total_versions(), 0, "background GC never collected");
    assert!(db.stats().gc_passes > 0);
    db.shutdown();
}
