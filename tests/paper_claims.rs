//! The paper's headline claims, asserted structurally (virtual-time and
//! scan-statistics based, so they hold on any machine).

use ankerdb::core::{DbConfig, TxnKind};
use ankerdb::snapshot::{
    fig5_run, table1_run, Fig5Config, ForkSnapshotter, PhysicalSnapshotter, Snapshotter,
    Table1Config, VmSnapshotter,
};
use ankerdb::tpch::gen::{self, TpchConfig};
use ankerdb::tpch::oltp::{run_oltp, OltpKind};
use ankerdb::tpch::queries::{scan_table, OlapQuery};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// §4.1.4 / Figure 5a: once a column is fragmented, `vm_snapshot` beats
/// rewiring by a large factor, and its cost does not grow with writes.
#[test]
fn claim_vm_snapshot_beats_rewiring() {
    let points = fig5_run(&Fig5Config {
        pages: 512,
        record_every: 64,
    })
    .unwrap();
    let first = points.first().unwrap();
    let last = points.last().unwrap();
    assert!(
        last.rewiring_snapshot_ns > last.vmsnap_snapshot_ns * 10,
        "rewiring {} !>> vm_snapshot {}",
        last.rewiring_snapshot_ns,
        last.vmsnap_snapshot_ns
    );
    let growth = last.vmsnap_snapshot_ns as f64 / first.vmsnap_snapshot_ns as f64;
    assert!(growth < 1.5, "vm_snapshot cost grew {growth}x with writes");
}

/// §3.3.2 / Table 1: physical cost is linear in columns; fork is constant
/// and snapshots everything; unfragmented rewiring is the cheapest.
#[test]
fn claim_state_of_the_art_cost_structure() {
    let rows = table1_run(&Table1Config {
        n_cols: 10,
        pages_per_col: 128,
        col_counts: vec![1, 5, 10],
        modified_pages: vec![0, 128],
    })
    .unwrap();
    let physical = rows.iter().find(|r| r.method == "Physical").unwrap();
    let fork = rows.iter().find(|r| r.method == "Fork-based").unwrap();
    let rew0 = rows
        .iter()
        .find(|r| r.method == "Rewiring" && r.modified_per_col == Some(0))
        .unwrap();
    let rew_full = rows
        .iter()
        .find(|r| r.method == "Rewiring" && r.modified_per_col == Some(128))
        .unwrap();
    // Physical: ~linear in p.
    let lin = physical.virtual_ms[2] / physical.virtual_ms[0];
    assert!((8.0..12.0).contains(&lin), "physical scaling {lin}");
    // Fork: flat in p.
    let flat = fork.virtual_ms[2] / fork.virtual_ms[0];
    assert!((0.9..1.1).contains(&flat), "fork scaling {flat}");
    // Rewiring unfragmented is cheapest; fully fragmented costs the same
    // order as physical (paper: 169 ms vs 108 ms).
    assert!(rew0.virtual_ms[0] < fork.virtual_ms[0]);
    assert!(rew0.virtual_ms[0] < physical.virtual_ms[0]);
    let ratio = rew_full.virtual_ms[2] / physical.virtual_ms[2];
    assert!(
        (0.5..4.0).contains(&ratio),
        "fragmented rewiring vs physical: {ratio}"
    );
}

/// §2.2 / §5.3: OLAP on snapshots never touches version chains, while the
/// same OLAP under homogeneous processing must traverse them.
#[test]
fn claim_snapshot_scans_skip_version_chains() {
    let mk = |cfg| {
        gen::generate(
            cfg,
            &TpchConfig {
                scale_factor: 0.004,
                seed: 5,
            },
        )
    };
    let hetero = mk(DbConfig::heterogeneous_serializable()
        .with_snapshot_every(50)
        .with_gc_interval(None));
    let homo = mk(DbConfig::homogeneous_serializable().with_gc_interval(None));

    // Old reader on the homogeneous side (it will need chains).
    let mut homo_reader = homo.db.begin(TxnKind::Olap);
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..400 {
        let kind = OltpKind::sample(&mut rng);
        let _ = run_oltp(&hetero, kind, &mut rng);
        let _ = run_oltp(&homo, kind, &mut rng);
    }
    // Heterogeneous OLAP: brand-new txn on the newest snapshot.
    let mut hetero_reader = hetero.db.begin(TxnKind::Olap);
    let s_hetero = {
        for q in [
            OlapQuery::ScanLineitem,
            OlapQuery::ScanOrders,
            OlapQuery::ScanPart,
        ] {
            // scan_table returns a checksum; stats come from the txn scan.
            let _ = scan_table(&hetero, &mut hetero_reader, q).unwrap();
        }
        // Snapshot scans are tight by construction; verify via a direct
        // column scan that exposes stats.
        let schema = hetero.db.schema(hetero.lineitem);
        let col = schema.col("l_extendedprice");
        hetero_reader
            .scan_on(hetero.lineitem)
            .project(&[col])
            .for_each(|_, _| {})
            .unwrap()
    };
    hetero_reader.commit().unwrap();
    assert_eq!(s_hetero.checked_rows, 0, "hetero OLAP checked rows");
    assert_eq!(s_hetero.chain_walks, 0, "hetero OLAP walked chains");

    // Homogeneous old reader: must pay chain walks.
    let schema = homo.db.schema(homo.lineitem);
    let col = schema.col("l_extendedprice");
    let s_homo = homo_reader
        .scan_on(homo.lineitem)
        .project(&[col])
        .for_each(|_, _| {})
        .unwrap();
    homo_reader.commit().unwrap();
    assert!(
        s_homo.chain_walks > 0,
        "homogeneous old reader should walk chains: {s_homo:?}"
    );
}

/// §5.6 / Figure 10: snapshotting even all columns of all tables with
/// vm_snapshot is cheaper than forking the whole process, and a single
/// column is cheaper still.
#[test]
fn claim_column_granularity_beats_fork() {
    // Virtual-clock comparison: always runs on the simulated kernel (the
    // fork probe cannot fork the host process on the OS backend).
    let t = gen::generate(
        DbConfig::heterogeneous_serializable()
            .with_gc_interval(None)
            .with_backend(anker_core::BackendKind::Sim),
        &TpchConfig {
            scale_factor: 0.01,
            seed: 1,
        },
    );
    let mut all_ns = 0u64;
    let mut single_min = u64::MAX;
    for table in [t.lineitem, t.orders, t.part] {
        for (_, stats) in t.db.snapshot_cost_probe(table).unwrap() {
            all_ns += stats.virtual_ns;
            single_min = single_min.min(stats.virtual_ns);
        }
    }
    let fork_ns = t.db.fork_cost_probe().unwrap().virtual_ns;
    assert!(
        fork_ns > all_ns / 2,
        "fork {fork_ns} vs all columns {all_ns}"
    );
    assert!(
        fork_ns > single_min * 20,
        "fork {fork_ns} vs cheapest column {single_min}"
    );
}

/// §1.3.1: dropping a snapshot epoch drops its version chains — while
/// analytics run, the heterogeneous design needs no chain-by-chain garbage
/// collector. (An analytics-free phase takes no snapshots; a bounded
/// fallback in the engine covers that case, see `anker_core::txn`.)
#[test]
fn claim_implicit_garbage_collection() {
    let t = gen::generate(
        DbConfig::heterogeneous_serializable()
            .with_snapshot_every(20)
            .with_gc_interval(None),
        &TpchConfig {
            scale_factor: 0.004,
            seed: 9,
        },
    );
    let mut rng = SmallRng::seed_from_u64(4);
    let scan_cols = {
        let schema = t.db.schema(t.lineitem);
        [
            schema.col("l_returnflag"),
            schema.col("l_extendedprice"),
            schema.col("l_discount"),
            schema.col("l_shipdate"),
        ]
    };
    for round in 0..500 {
        let _ = run_oltp(&t, OltpKind::sample(&mut rng), &mut rng);
        if round % 25 == 24 {
            // Analytics arrivals pin epochs; their materialisation hands
            // the chains over.
            let mut olap = t.db.begin(TxnKind::Olap);
            for col in scan_cols {
                olap.scan_on(t.lineitem)
                    .project(&[col])
                    .for_each(|_, _| {})
                    .unwrap();
            }
            olap.commit().unwrap();
        }
    }
    // No GC pass ever ran, yet the versions of the *scanned* columns stay
    // bounded: their chains were handed to epochs and released with them.
    // `column_versions` counts frozen epoch stores too, so the bound is
    // the write traffic of one housekeeping interval (~128 commits) plus
    // one trigger interval — far below the ~500 rounds of unbounded
    // growth a chainless design would accumulate. (Columns no analytics
    // touch keep their chains — a bounded fallback in the engine covers
    // those.)
    assert_eq!(t.db.stats().gc_passes, 0);
    assert!(t.db.stats().epochs_retired > 0);
    for col in scan_cols {
        let v = t.db.column_versions(t.lineitem, col);
        assert!(
            v <= 60,
            "scanned column should have handed its chains over, holds {v}"
        );
    }
}

/// Sanity: the four snapshotting techniques agree on data content.
#[test]
fn claim_all_techniques_agree_on_content() {
    let run = |s: &mut dyn Snapshotter| -> Vec<u64> {
        for c in 0..s.n_cols() {
            for p in 0..s.pages_per_col() {
                s.write_base(c, p, 0, (c as u64) << 32 | p).unwrap();
            }
        }
        let id = s.snapshot_columns(s.n_cols()).unwrap();
        s.write_base(0, 0, 0, u64::MAX).unwrap();
        let mut out = Vec::new();
        for c in 0..s.n_cols() {
            for p in 0..s.pages_per_col() {
                out.push(s.read_snapshot(id, c, p, 0).unwrap());
            }
        }
        out
    };
    let a = run(&mut PhysicalSnapshotter::new(3, 16).unwrap());
    let b = run(&mut ForkSnapshotter::new(3, 16).unwrap());
    let c = run(&mut ankerdb::snapshot::RewiredSnapshotter::new(3, 16).unwrap());
    let d = run(&mut VmSnapshotter::new(3, 16).unwrap());
    assert_eq!(a, b);
    assert_eq!(b, c);
    assert_eq!(c, d);
}
