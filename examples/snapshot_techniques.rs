//! The four snapshotting techniques head to head (paper §3–§4): physical
//! copies, fork-based COW, user-space rewiring, and the custom
//! `vm_snapshot` system call — same workload, same kernel model.
//!
//! ```sh
//! cargo run --release --example snapshot_techniques
//! ```

use ankerdb::snapshot::{
    ForkSnapshotter, PhysicalSnapshotter, RewiredSnapshotter, Snapshotter, VmSnapshotter,
};
use ankerdb::util::stats::fmt_ns;
use ankerdb::util::TableBuilder;

const COLS: usize = 16;
const PAGES: u64 = 512; // 2 MiB per column

fn exercise(s: &mut dyn Snapshotter) -> (u64, u64, u64) {
    // Load every page of every column.
    for col in 0..s.n_cols() {
        for page in 0..s.pages_per_col() {
            s.write_base(col, page, 0, page).unwrap();
        }
    }
    // 1. Cost of snapshotting a single column.
    let t0 = s.kernel().virtual_ns();
    let snap = s.snapshot_columns(1).unwrap();
    let one_col = s.kernel().virtual_ns() - t0;
    s.drop_snapshot(snap).unwrap();
    // 2. Cost of snapshotting the whole table.
    let t0 = s.kernel().virtual_ns();
    let snap = s.snapshot_columns(s.n_cols()).unwrap();
    let all_cols = s.kernel().virtual_ns() - t0;
    // 3. Cost of the first write into a snapshotted page.
    let t0 = s.kernel().virtual_ns();
    s.write_base(0, 7, 1, 99).unwrap();
    let write = s.kernel().virtual_ns() - t0;
    // The snapshot stayed frozen.
    assert_eq!(s.read_snapshot(snap, 0, 7, 1).unwrap(), 0);
    s.drop_snapshot(snap).unwrap();
    (one_col, all_cols, write)
}

fn main() {
    println!(
        "snapshotting {COLS} columns x {PAGES} pages ({} KiB per column), virtual time\n",
        PAGES * 4
    );
    let mut table =
        TableBuilder::new("").header(["Technique", "1 column", "all columns", "first write (COW)"]);
    let mut run = |s: &mut dyn Snapshotter| {
        let (one, all, write) = exercise(s);
        table.row([
            s.name().to_string(),
            fmt_ns(one as f64),
            fmt_ns(all as f64),
            fmt_ns(write as f64),
        ]);
    };
    run(&mut PhysicalSnapshotter::new(COLS, PAGES).unwrap());
    run(&mut ForkSnapshotter::new(COLS, PAGES).unwrap());
    run(&mut RewiredSnapshotter::new(COLS, PAGES).unwrap());
    run(&mut VmSnapshotter::new(COLS, PAGES).unwrap());
    println!("{}", table.render());
    println!("physical pays the full copy up front; fork snapshots everything whether");
    println!("asked or not; rewiring is cheap until fragmentation strikes; vm_snapshot");
    println!("is cheap always — and leaves copy-on-write to the kernel.");
}
