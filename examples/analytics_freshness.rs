//! High-frequency snapshotting in action: analytical transactions read
//! slightly stale but *consistent* snapshots whose freshness is bounded by
//! the trigger interval (paper §2.2: "snapshots are created at a very high
//! frequency to ensure freshness").
//!
//! A writer continuously moves stock between two warehouses (the total is
//! invariant); an analyst repeatedly sums both columns. Every analyst read
//! is consistent (the invariant holds exactly), and its staleness —
//! measured in commits behind the live head — stays below the trigger
//! interval.
//!
//! ```sh
//! cargo run --release --example analytics_freshness
//! ```

use ankerdb::core::{AnkerDb, DbConfig, TxnKind};
use ankerdb::storage::{ColumnDef, LogicalType, Schema, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const ROWS: u32 = 10_000;
const TOTAL_PER_ROW: i64 = 1_000;
const SNAPSHOT_EVERY: u64 = 250;

fn main() {
    let db =
        AnkerDb::new(DbConfig::heterogeneous_serializable().with_snapshot_every(SNAPSHOT_EVERY));
    let t = db.create_table(
        "warehouses",
        Schema::new(vec![
            ColumnDef::new("stock_a", LogicalType::Int),
            ColumnDef::new("stock_b", LogicalType::Int),
        ]),
        ROWS,
    );
    let schema = db.schema(t);
    let (a, b) = (schema.col("stock_a"), schema.col("stock_b"));
    db.fill_column(
        t,
        a,
        (0..ROWS).map(|_| Value::Int(TOTAL_PER_ROW / 2).encode()),
    )
    .unwrap();
    db.fill_column(
        t,
        b,
        (0..ROWS).map(|_| Value::Int(TOTAL_PER_ROW / 2).encode()),
    )
    .unwrap();

    let committed = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let max_staleness = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Writer: transfers stock between the two warehouse columns.
        let writer = {
            let db = db.clone();
            let committed = &committed;
            s.spawn(move || {
                let mut x: u64 = 0x243F6A8885A308D3;
                for _ in 0..20_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let row = (x % ROWS as u64) as u32;
                    let qty = (x % 7) as i64 + 1;
                    let mut txn = db.begin(TxnKind::Oltp);
                    let va = txn.get_value(t, a, row).unwrap().as_int();
                    let vb = txn.get_value(t, b, row).unwrap().as_int();
                    if va < qty {
                        txn.abort();
                        continue;
                    }
                    txn.update_value(t, a, row, Value::Int(va - qty)).unwrap();
                    txn.update_value(t, b, row, Value::Int(vb + qty)).unwrap();
                    if txn.commit().is_ok() {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        };
        // Analyst: sums both columns on snapshots, checks the invariant and
        // tracks staleness.
        {
            let db = db.clone();
            let committed = &committed;
            let stop = &stop;
            let max_staleness = &max_staleness;
            s.spawn(move || {
                let expected = ROWS as i64 * TOTAL_PER_ROW;
                let mut scans = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let head_before = committed.load(Ordering::Relaxed);
                    let mut olap = db.begin(TxnKind::Olap);
                    let mut sum = 0i64;
                    olap.scan_on(t)
                        .project(&[a, b])
                        .for_each(|_, v| {
                            sum += v[0] as i64 + v[1] as i64;
                        })
                        .unwrap();
                    let snapshot_ts = olap.start_ts();
                    olap.commit().unwrap();
                    assert_eq!(sum, expected, "analyst saw an inconsistent snapshot");
                    // Staleness bound: commits that happened after the
                    // snapshot the analyst read.
                    let staleness = head_before.saturating_sub(snapshot_ts);
                    max_staleness.fetch_max(staleness, Ordering::Relaxed);
                    scans += 1;
                }
                println!("analyst: {scans} consistent scans, invariant always exact");
            });
        }
        writer.join().unwrap();
        stop.store(true, Ordering::Release);
    });

    let stats = db.stats();
    println!("writer: {} transfers committed", stats.committed);
    println!(
        "snapshot epochs: {} triggered, {} retired, {} column materialisations",
        stats.epochs_triggered, stats.epochs_retired, stats.columns_materialized
    );
    println!(
        "max analyst staleness observed: {} commits (trigger interval: {})",
        max_staleness.load(Ordering::Relaxed),
        SNAPSHOT_EVERY
    );
}
