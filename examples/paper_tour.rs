//! A guided tour through the paper's running example (§2.2.1, Figure 1):
//! the eight steps of heterogeneous MVCC processing, executed for real
//! against AnKerDB with the engine's state printed after each step.
//!
//! ```sh
//! cargo run --example paper_tour
//! ```

use ankerdb::core::{AnkerDb, DbConfig, DbError, TxnKind};
use ankerdb::storage::{ColumnDef, LogicalType, Schema};

fn show(db: &AnkerDb, label: &str) {
    let s = db.stats();
    println!(
        "    [state] commits={} epochs: triggered={} retired={} live={} \
         materialised={} versions={}",
        s.committed,
        s.epochs_triggered,
        s.epochs_retired,
        s.live_epochs,
        s.columns_materialized,
        db.total_versions(),
    );
    println!("    -- end of {label}\n");
}

fn main() -> Result<(), DbError> {
    // One table with a single column C of 6 rows, all 0 — Figure 1, step 1.
    // A trigger after every commit keeps the walkthrough's snapshots as
    // fresh as Figure 1 draws them.
    let db = AnkerDb::new(DbConfig::heterogeneous_serializable().with_snapshot_every(1));
    let t = db.create_table(
        "example",
        Schema::new(vec![ColumnDef::new("C", LogicalType::Int)]),
        6,
    );
    let c = db.schema(t).col("C");
    println!("Step 1: column C of 6 rows, all 0; only the OLTP component exists.");
    show(&db, "step 1");

    // Step 2: T1 writes w(5)=1, w(1)=2; T2 writes w(3)=3 — all only in
    // their local write sets.
    let mut t1 = db.begin(TxnKind::Oltp);
    t1.update(t, c, 5, 1)?;
    t1.update(t, c, 1, 2)?;
    let mut t2 = db.begin(TxnKind::Oltp);
    t2.update(t, c, 3, 3)?;
    println!("Step 2: T1 buffered w(5)=1, w(1)=2; T2 buffered w(3)=3.");
    println!(
        "    T1 sees its own writes: C[5]={}, others see the column untouched.",
        t1.get(t, c, 5)?
    );
    show(&db, "step 2");

    // Step 3: T1 commits (old values move into version chains); T2 aborts
    // (free — nothing shared was touched).
    let commit_ts = t1.commit()?;
    t2.abort();
    println!("Step 3: T1 committed at ts {commit_ts}; T2 aborted at zero cost.");
    println!("    Version chains now hold the old zeros of rows 1 and 5.");
    show(&db, "step 3");

    // Step 4: OLAP transaction T3 arrives — the first snapshot is taken
    // (virtually, via vm_snapshot) and C's chains are handed over.
    let mut t3 = db.begin(TxnKind::Olap);
    let mut sum = 0i64;
    t3.scan_on(t)
        .project(&[c])
        .for_each(|_, v| sum += v[0] as i64)?;
    println!("Step 4: OLAP T3 arrived; snapshot taken; sum(0..=5) = {sum} (= 1+2).");
    show(&db, "step 4");

    // Step 5: OLTP T4 reads r(3) from the most recent representation and
    // buffers w(3)=4, w(1)=5, while T3 still runs on its snapshot.
    let mut t4 = db.begin(TxnKind::Oltp);
    let r3 = t4.get(t, c, 3)?;
    t4.update(t, c, 3, 4)?;
    t4.update(t, c, 1, 5)?;
    println!("Step 5: T4 read r(3)={r3} from the OLTP component and buffered writes.");

    // Step 6: T4 commits — no interference with the running T3.
    t4.commit()?;
    let mut sum_again = 0i64;
    t3.scan_on(t)
        .project(&[c])
        .for_each(|_, v| sum_again += v[0] as i64)?;
    println!(
        "Step 6: T4 committed; T3's snapshot still sums to {sum_again} \
         (frozen at its epoch)."
    );
    show(&db, "step 6");

    // Step 7: a newer snapshot for fresh analytics (a second OLAP arrival
    // pins a fresh epoch, since T4's commit superseded the old one).
    let mut t5 = db.begin(TxnKind::Olap);
    let mut sum_fresh = 0i64;
    t5.scan_on(t)
        .project(&[c])
        .for_each(|_, v| sum_fresh += v[0] as i64)?;
    println!(
        "Step 7: new OLAP T5 runs on a fresh snapshot: sum = {sum_fresh} \
         (= 5+4+1 after T4)."
    );
    show(&db, "step 7");

    // Step 8: T3 and T5 finish; the superseded snapshot retires, dropping
    // its version chains with it — garbage collection for free.
    t3.commit()?;
    t5.commit()?;
    println!("Step 8: OLAP transactions done; superseded epochs retired.");
    show(&db, "step 8");

    let final_stats = db.stats();
    assert_eq!(sum, 3);
    assert_eq!(sum_again, 3);
    assert_eq!(sum_fresh, 10);
    assert!(final_stats.epochs_retired >= 1);
    println!("All of Figure 1 verified. ✔");
    Ok(())
}
