//! Write skew, demonstrated: a bank allows an overdraft on either of two
//! accounts as long as the *combined* balance stays positive. Under
//! snapshot isolation two concurrent withdrawals can each read the other
//! account's old balance and together break the invariant — the classic
//! write-skew anomaly the paper notes MVCC permits by default (§2.1).
//! Under full serializability (precision-locking validation), one of them
//! aborts.
//!
//! ```sh
//! cargo run --example serializable_banking
//! ```

use ankerdb::core::{AnkerDb, DbConfig, DbError, TxnKind};
use ankerdb::storage::{ColumnDef, LogicalType, Schema, Value};

fn combined_withdrawal(db: &AnkerDb) -> (Result<u64, DbError>, Result<u64, DbError>, i64) {
    let accounts = db.table_id("accounts").unwrap();
    let balance = db.schema(accounts).col("balance");

    // Both start with 100 + 100 = 200; each withdrawal takes 150 if the
    // combined balance allows it.
    let mut t1 = db.begin(TxnKind::Oltp);
    let mut t2 = db.begin(TxnKind::Oltp);

    // T1 checks both balances, then withdraws from account 0.
    let total1 = t1.get_value(accounts, balance, 0).unwrap().as_int()
        + t1.get_value(accounts, balance, 1).unwrap().as_int();
    assert!(total1 >= 150);
    let b0 = t1.get_value(accounts, balance, 0).unwrap().as_int();
    t1.update_value(accounts, balance, 0, Value::Int(b0 - 150))
        .unwrap();

    // T2 does the same from account 1 — reading the *old* state.
    let total2 = t2.get_value(accounts, balance, 0).unwrap().as_int()
        + t2.get_value(accounts, balance, 1).unwrap().as_int();
    assert!(total2 >= 150);
    let b1 = t2.get_value(accounts, balance, 1).unwrap().as_int();
    t2.update_value(accounts, balance, 1, Value::Int(b1 - 150))
        .unwrap();

    let r1 = t1.commit();
    let r2 = t2.commit();

    let mut check = db.begin(TxnKind::Oltp);
    let final_total = check.get_value(accounts, balance, 0).unwrap().as_int()
        + check.get_value(accounts, balance, 1).unwrap().as_int();
    check.commit().unwrap();
    (r1, r2, final_total)
}

fn setup(config: DbConfig) -> AnkerDb {
    let db = AnkerDb::new(config);
    let accounts = db.create_table(
        "accounts",
        Schema::new(vec![ColumnDef::new("balance", LogicalType::Int)]),
        2,
    );
    let balance = db.schema(accounts).col("balance");
    db.fill_column(
        accounts,
        balance,
        [100i64, 100].map(|v| Value::Int(v).encode()),
    )
    .unwrap();
    db
}

fn main() {
    println!("invariant: balance[0] + balance[1] must stay >= 0\n");

    let db = setup(DbConfig::homogeneous_snapshot_isolation());
    let (r1, r2, total) = combined_withdrawal(&db);
    println!("snapshot isolation:");
    println!("  T1 -> {r1:?}");
    println!("  T2 -> {r2:?}");
    println!("  combined balance afterwards: {total}  <-- write skew! invariant broken\n");
    assert!(total < 0, "SI should have permitted the anomaly");

    let db = setup(DbConfig::homogeneous_serializable());
    let (r1, r2, total) = combined_withdrawal(&db);
    println!("full serializability (precision locking):");
    println!("  T1 -> {r1:?}");
    println!("  T2 -> {r2:?}");
    println!("  combined balance afterwards: {total}  <-- invariant preserved");
    assert!(total >= 0);
    assert!(
        r1.is_ok() ^ r2.is_ok(),
        "exactly one transaction must abort"
    );
}
