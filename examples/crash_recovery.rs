//! Crash recovery end to end: load a TPC-H database with a fsync WAL,
//! update it, **crash** (drop every handle without calling
//! [`AnkerDb::shutdown`]), then [`AnkerDb::open`] the directory again and
//! verify a Q6 revenue fold matches the pre-crash answer bit for bit.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use ankerdb::core::{AnkerDb, DbConfig, DurabilityLevel, TxnKind, Value};
use ankerdb::tpch::gen::{self, TpchConfig};
use ankerdb::tpch::oltp::{is_abort, run_oltp, OltpKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The Q6-style revenue fold used before and after the crash.
fn q6_revenue(db: &AnkerDb) -> f64 {
    let t = db.table_id("lineitem").expect("lineitem exists");
    let schema = db.schema(t);
    let lo = gen::days(1994, 1, 1) as i64;
    let hi = gen::days(1995, 1, 1) as i64;
    let reader = db.snapshot_reader().expect("snapshot reader");
    let (revenue, _) = reader
        .scan(t)
        .range_i64(schema.col("l_shipdate"), lo, hi - 1)
        .range_f64(schema.col("l_discount"), 0.05 - 1e-9, 0.07 + 1e-9)
        .lt_f64(schema.col("l_quantity"), 24.0)
        .project(&[schema.col("l_extendedprice"), schema.col("l_discount")])
        .fold(
            0.0f64,
            |acc, _, v| acc + v[0].as_double() * v[1].as_double(),
            |a, b| a + b,
        )
        .expect("q6 scan");
    revenue
}

fn main() {
    let dir = std::env::temp_dir().join(format!("anker-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DbConfig::heterogeneous_serializable()
        .with_snapshot_every(100)
        .with_gc_interval(None)
        .with_durability(DurabilityLevel::Fsync);

    // ---- generation 1: load, checkpoint, update, crash -------------
    println!("== generation 1: load + update ==");
    let t = gen::generate(
        config.clone().with_durability_dir(&dir),
        &TpchConfig {
            scale_factor: 0.004,
            seed: 7,
        },
    );
    // Move the bulk loads from the WAL into a checkpoint; from here on
    // the WAL holds only commits.
    let ckpt_ts = t.db.checkpoint().expect("checkpoint");
    println!(
        "loaded {} lineitems, checkpoint at ts {ckpt_ts}",
        t.db.rows(t.lineitem)
    );
    let mut rng = SmallRng::seed_from_u64(99);
    let mut committed = 0;
    while committed < 500 {
        match run_oltp(&t, OltpKind::sample(&mut rng), &mut rng) {
            Ok(_) => committed += 1,
            Err(e) if is_abort(&e) => {}
            Err(e) => panic!("oltp failed: {e}"),
        }
    }
    // One last hand-made update so there is a known fresh value to check.
    let mut txn = t.db.begin(TxnKind::Oltp);
    txn.update_value(t.lineitem, t.li.quantity, 0, Value::Double(49.0))
        .unwrap();
    txn.commit().unwrap();
    let revenue_before = q6_revenue(&t.db);
    let stats = t.db.wal_stats().expect("wal attached");
    println!(
        "committed {} updates (WAL: {} commit records, {} fsyncs), q6 revenue {revenue_before:.4}",
        committed + 1,
        stats.commit_records,
        stats.syncs
    );
    println!("== simulated crash: dropping the database without shutdown ==");
    drop(t); // no shutdown(), no final flush — the WAL already has it all

    // ---- generation 2: recover and verify --------------------------
    println!("== generation 2: AnkerDb::open ==");
    let db = AnkerDb::open(&dir, config).expect("recovery");
    let report = db.recovery_report().expect("recovery report");
    println!(
        "recovered {} tables from checkpoint ts {} + {} WAL commits (last ts {})",
        report.tables, report.checkpoint_ts, report.commits_replayed, report.last_commit_ts
    );
    let t2 = db.table_id("lineitem").unwrap();
    let qty = db.schema(t2).col("l_quantity");
    let mut txn = db.begin(TxnKind::Oltp);
    let q = txn.get_value(t2, qty, 0).unwrap();
    txn.abort();
    assert_eq!(q, Value::Double(49.0), "the last pre-crash commit survived");
    let revenue_after = q6_revenue(&db);
    println!("q6 revenue after recovery: {revenue_after:.4}");
    assert_eq!(
        revenue_before.to_bits(),
        revenue_after.to_bits(),
        "recovery must reproduce the fold bit-identically"
    );
    println!("crash recovery OK: folds identical across the crash");
    db.shutdown();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
