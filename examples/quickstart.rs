//! Quickstart: boot AnKerDB, create a table, run an OLTP update and an
//! OLAP aggregation on a virtual snapshot.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ankerdb::core::{AnkerDb, DbConfig, TxnKind};
use ankerdb::storage::{ColumnDef, LogicalType, Schema, Value};

fn main() {
    // Heterogeneous processing with full serializability — the paper's
    // flagship configuration. A snapshot epoch is triggered every 1000
    // commits.
    let db = AnkerDb::new(DbConfig::heterogeneous_serializable().with_snapshot_every(1000));

    let products = db.create_table(
        "products",
        Schema::new(vec![
            ColumnDef::new("price", LogicalType::Double),
            ColumnDef::new("stock", LogicalType::Int),
        ]),
        10_000,
    );
    let schema = db.schema(products);
    let price = schema.col("price");
    let stock = schema.col("stock");

    // Bulk load.
    db.fill_column(
        products,
        price,
        (0..10_000).map(|i| Value::Double(9.99 + i as f64).encode()),
    )
    .unwrap();
    db.fill_column(
        products,
        stock,
        (0..10_000).map(|i| Value::Int(i % 50).encode()),
    )
    .unwrap();

    // A short OLTP transaction: read-modify-write of one product.
    let mut txn = db.begin(TxnKind::Oltp);
    let current = txn.get_value(products, price, 42).unwrap().as_double();
    txn.update_value(products, price, 42, Value::Double(current * 1.10))
        .unwrap();
    let commit_ts = txn.commit().unwrap();
    println!(
        "OLTP commit at ts {commit_ts}: price[42] {current:.2} -> {:.2}",
        current * 1.10
    );

    // A long-running OLAP transaction: scans a frozen virtual snapshot in a
    // tight loop — no timestamps, no version chains.
    let mut olap = db.begin(TxnKind::Olap);
    let ((units, revenue), stats) = olap
        .scan_on(products)
        .project(&[price, stock])
        .fold((0i64, 0.0f64), |(units, revenue), _row, vals| {
            let p = vals[0].as_double();
            let s = vals[1].as_int();
            (units + s, revenue + p * s as f64)
        })
        .unwrap();
    println!("OLAP on snapshot: {units} units, potential revenue {revenue:.2}");
    println!(
        "scan path: {} rows tight, {} rows checked (snapshots never check versions)",
        stats.tight_rows, stats.checked_rows
    );

    // A second scan with a pushed-down predicate: the builder filters
    // inside the block loops, skips whole 1024-row blocks via zone maps
    // (prices are loaded in ascending order), and — for serializable
    // updaters — registers the equivalent precision lock automatically.
    let (premium, stats) = olap
        .scan_on(products)
        .range_f64(price, 5_000.0, f64::INFINITY)
        .count()
        .unwrap();
    olap.commit().unwrap();
    println!(
        "{premium} premium products; predicate pushdown skipped {} blocks, \
         filtered {} rows",
        stats.blocks_skipped, stats.rows_filtered
    );
    assert!(stats.blocks_skipped > 0, "zone maps should prune blocks");
    println!("db stats: {:#?}", db.stats());
}
