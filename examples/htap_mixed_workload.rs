//! HTAP mixed workload: the paper's evaluation scenario in miniature.
//! Loads the TPC-H tables, then runs the same OLTP+OLAP batch under all
//! three configurations of §5.1 and prints their throughput side by side.
//!
//! ```sh
//! cargo run --release --example htap_mixed_workload
//! ```

use ankerdb::core::DbConfig;
use ankerdb::tpch::driver::{run_workload, WorkloadConfig};
use ankerdb::tpch::gen::{self, TpchConfig};
use ankerdb::util::TableBuilder;

fn main() {
    let tpch = TpchConfig {
        scale_factor: 0.02,
        seed: 42,
    };
    let workload = WorkloadConfig {
        oltp_txns: 20_000,
        olap_txns: 10,
        threads: 2,
        seed: 7,
        think_us: 0.0,
    };
    let configs = [
        (
            "Homogeneous / Serializable",
            DbConfig::homogeneous_serializable(),
        ),
        (
            "Homogeneous / Snapshot Isolation",
            DbConfig::homogeneous_snapshot_isolation(),
        ),
        (
            "Heterogeneous / Serializable",
            DbConfig::heterogeneous_serializable().with_snapshot_every(1_000),
        ),
    ];

    println!(
        "mixed workload: {} OLTP + {} OLAP transactions on {} threads (TPC-H sf {})\n",
        workload.oltp_txns, workload.olap_txns, workload.threads, tpch.scale_factor
    );
    let mut table = TableBuilder::new("").header([
        "Configuration",
        "tps",
        "committed",
        "aborted",
        "snapshots",
        "cols materialised",
    ]);
    for (name, cfg) in configs {
        let t = gen::generate(cfg, &tpch);
        let r = run_workload(&t, &workload);
        let s = t.db.stats();
        table.row([
            name.to_string(),
            format!("{:.0}", r.tps),
            r.committed.to_string(),
            r.aborted.to_string(),
            s.epochs_triggered.to_string(),
            s.columns_materialized.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Heterogeneous processing separates the analytical scans onto virtual");
    println!("snapshots, so the mixed batch finishes significantly faster (paper: ~2x).");
}
