//! HTAP mixed workload: the paper's evaluation scenario in miniature.
//! Loads the TPC-H tables, runs the same OLTP+OLAP batch under all three
//! configurations of §5.1, then switches to the detached-reader HTAP mode:
//! updater threads keep committing while `SnapshotReader`s fan analytical
//! scans out over the morsel-parallel worker pool.
//!
//! ```sh
//! cargo run --release --example htap_mixed_workload
//! ```

use ankerdb::core::DbConfig;
use ankerdb::tpch::driver::{run_htap, run_workload, HtapConfig, WorkloadConfig};
use ankerdb::tpch::gen::{self, TpchConfig};
use ankerdb::util::TableBuilder;

fn main() {
    let tpch = TpchConfig {
        scale_factor: 0.02,
        seed: 42,
    };
    let workload = WorkloadConfig {
        oltp_txns: 20_000,
        olap_txns: 10,
        threads: 2,
        seed: 7,
        think_us: 0.0,
    };
    let configs = [
        (
            "Homogeneous / Serializable",
            DbConfig::homogeneous_serializable(),
        ),
        (
            "Homogeneous / Snapshot Isolation",
            DbConfig::homogeneous_snapshot_isolation(),
        ),
        (
            "Heterogeneous / Serializable",
            DbConfig::heterogeneous_serializable().with_snapshot_every(1_000),
        ),
    ];

    println!(
        "mixed workload: {} OLTP + {} OLAP transactions on {} threads (TPC-H sf {})\n",
        workload.oltp_txns, workload.olap_txns, workload.threads, tpch.scale_factor
    );
    let mut table = TableBuilder::new("").header([
        "Configuration",
        "tps",
        "committed",
        "aborted",
        "snapshots",
        "cols materialised",
    ]);
    for (name, cfg) in configs {
        let t = gen::generate(cfg, &tpch);
        let r = run_workload(&t, &workload);
        let s = t.db.stats();
        table.row([
            name.to_string(),
            format!("{:.0}", r.tps),
            r.committed.to_string(),
            r.aborted.to_string(),
            s.epochs_triggered.to_string(),
            s.columns_materialized.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Heterogeneous processing separates the analytical scans onto virtual");
    println!("snapshots, so the mixed batch finishes significantly faster (paper: ~2x).\n");

    // ── Detached readers: the analytical fleet ─────────────────────────
    //
    // In-transaction OLAP borrows `&mut Txn` — one scan, one thread. The
    // `SnapshotReader` detaches the read path: it pins an epoch by
    // refcount, is `Send + Sync`, and its scans fan out over the
    // database's reusable worker pool (`.parallel(n)`), while updaters
    // keep committing against the live columns.
    let t = gen::generate(
        DbConfig::heterogeneous_serializable().with_snapshot_every(1_000),
        &tpch,
    );
    let mut htap = TableBuilder::new("").header([
        "scan threads",
        "OLAP q/s",
        "OLTP tx/s",
        "morsels",
        "blocks skipped",
    ]);
    for scan_threads in [1usize, 2, 4] {
        let r = run_htap(
            &t,
            &HtapConfig {
                updaters: 1,
                scan_threads,
                scans: 12,
                seed: 13,
                think_us: 0.0,
            },
        );
        htap.row([
            scan_threads.to_string(),
            format!("{:.0}", r.olap_qps),
            format!("{:.0}", r.oltp_tps),
            r.stats.morsels.to_string(),
            r.stats.blocks_skipped.to_string(),
        ]);
    }
    println!("detached-reader HTAP mode: 1 updater + morsel-parallel scanners");
    println!("{}", htap.render());

    // The same epoch read directly, without any transaction: a reader
    // opened now keeps observing its epoch even as commits continue.
    let reader = t.db.snapshot_reader().expect("heterogeneous mode");
    let li = &t.li;
    let (revenue, stats) = reader
        .scan(t.lineitem)
        .lt_f64(li.quantity, 25.0)
        .project(&[li.extendedprice, li.discount])
        .parallel(2)
        .fold(
            0.0f64,
            |acc, _, v| acc + v[0].as_double() * v[1].as_double(),
            |a, b| a + b,
        )
        .expect("reader scan");
    println!(
        "one parallel reader scan: revenue {revenue:.2} over {} morsels on {} threads \
         ({} rows filtered in-loop)",
        stats.morsels, stats.threads, stats.rows_filtered
    );
}
