//! Shared harness for the concurrent-commit test suites: a Zipf-skewed
//! key sampler, a multi-threaded committer driver that logs every
//! committed transaction's reads and writes, and the **commit-order
//! serializability oracle** that replays the logged history on a shadow
//! model.
//!
//! The oracle's contract: under `Serializable` isolation, re-executing
//! the *committed* transactions serially in commit-timestamp order must
//! (a) reproduce every value each transaction actually read and (b) end
//! in exactly the database's final state. Any lost update, write skew,
//! torn install or stale validation shows up as a mismatch.

// Each integration-test binary compiles this module separately and uses
// a different subset of it.
#![allow(dead_code)]

use anker_core::{
    AnkerDb, BackendKind, ColumnDef, DbConfig, LogicalType, Schema, TableId, TxnKind,
};
use anker_storage::ColumnId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// A unique scratch directory under the system temp dir.
pub fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anker-commit-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The memory backends to run a test on: the simulator everywhere, plus
/// the real-OS backend on Linux.
pub fn backends() -> Vec<BackendKind> {
    #[cfg(target_os = "linux")]
    {
        vec![BackendKind::Sim, BackendKind::Os]
    }
    #[cfg(not(target_os = "linux"))]
    {
        vec![BackendKind::Sim]
    }
}

/// Zipf-skewed sampler over `0..n` via the inverse CDF (exact, no
/// rejection): `theta = 0` is uniform, larger values concentrate mass on
/// the low keys — the standard hot-key contention generator.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: u32, theta: f64) -> Zipf {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for w in &mut cdf {
            *w /= total;
        }
        Zipf { cdf }
    }

    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        let u = rng.random_range(0.0..1.0f64);
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

/// One committed transaction's logged history: the values it observed
/// and the values it wrote, keyed by row.
pub struct TxnHistory {
    pub commit_ts: u64,
    /// `(row, value observed)` — post-repair values for repaired rows.
    pub reads: Vec<(u32, u64)>,
    /// `(row, value written)`.
    pub writes: Vec<(u32, u64)>,
}

/// Replay `history` serially in commit-timestamp order on a shadow
/// array starting from `init`; assert every logged read against the
/// shadow state at its serial position (skipped when `check_reads` is
/// false — snapshot isolation permits stale reads), then return the
/// shadow's final state.
pub fn replay_commit_order(
    init: &[u64],
    history: &mut [TxnHistory],
    check_reads: bool,
) -> Vec<u64> {
    history.sort_by_key(|h| h.commit_ts);
    for pair in history.windows(2) {
        assert_ne!(
            pair[0].commit_ts, pair[1].commit_ts,
            "commit timestamps must be unique"
        );
    }
    let mut shadow = init.to_vec();
    for h in history.iter() {
        if check_reads {
            for &(row, val) in &h.reads {
                assert_eq!(
                    shadow[row as usize], val,
                    "commit ts {} read row {row} = {val}, but the commit-order \
                     serial execution has {} there — not serializable",
                    h.commit_ts, shadow[row as usize]
                );
            }
        }
        for &(row, val) in &h.writes {
            shadow[row as usize] = val;
        }
    }
    shadow
}

/// A fresh single-table, single-Int-column database filled with
/// `0..rows`.
pub fn one_col_db(config: DbConfig, rows: u32) -> (AnkerDb, TableId, ColumnId) {
    let db = AnkerDb::new(config.with_gc_interval(None));
    let (t, c) = one_col_table(&db, rows);
    (db, t, c)
}

/// Create and fill the standard one-column table on an existing
/// database (for callers that need `AnkerDb::open` or a GC thread).
pub fn one_col_table(db: &AnkerDb, rows: u32) -> (TableId, ColumnId) {
    let t = db.create_table(
        "t",
        Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]),
        rows,
    );
    let c = db.schema(t).col("v");
    db.fill_column(t, c, 0..rows as u64).unwrap();
    (t, c)
}

/// Raw words of the standard column, read chain-exactly through OLTP.
pub fn dump_col(db: &AnkerDb, t: TableId, c: ColumnId, rows: u32) -> Vec<u64> {
    let mut txn = db.begin(TxnKind::Oltp);
    let out = (0..rows).map(|r| txn.get(t, c, r).unwrap()).collect();
    txn.abort();
    out
}

/// Stress-driver parameters.
pub struct StressConfig {
    pub threads: usize,
    pub txns_per_thread: usize,
    pub rows: u32,
    /// Zipf skew of the key distribution (0 = uniform).
    pub theta: f64,
    /// Reads per transaction are drawn from `1..=max_reads`.
    pub max_reads: usize,
    /// `max_rounds` handed to [`anker_core::Txn::commit_with_repair`].
    pub repair_rounds: u32,
    pub seed: u64,
}

/// Aggregate outcome of a stress run, after the oracle has passed.
pub struct StressOutcome {
    pub committed: usize,
    pub ww_aborts: usize,
    pub validation_aborts: usize,
}

/// Run `threads × txns_per_thread` read-compute-write transactions
/// against the standard one-column table, log every committed
/// transaction's history, then verify the whole run against the
/// commit-order oracle (reads checked only under `Serializable`).
///
/// Each transaction reads a few Zipf-distributed rows, computes a value
/// that depends on everything it read, and writes it to a distinct
/// Zipf-distributed row — so every anomaly is data-visible. The repair
/// closure re-reads exactly the conflicting rows and recomputes the
/// write, exercising the bounded conflict-repair path under real
/// contention.
pub fn run_commit_stress(
    db: &AnkerDb,
    t: TableId,
    c: ColumnId,
    cfg: &StressConfig,
) -> StressOutcome {
    assert!(cfg.rows as usize > cfg.max_reads);
    // Reads are only validated (and hence replay-checkable) under full
    // serializability.
    let serializable = db.config().isolation == anker_core::IsolationLevel::Serializable;
    let zipf = Zipf::new(cfg.rows, cfg.theta);
    let init: Vec<u64> = (0..cfg.rows as u64).collect();

    let mut history: Vec<TxnHistory> = Vec::new();
    let mut ww_aborts = 0usize;
    let mut validation_aborts = 0usize;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for k in 0..cfg.threads {
            let zipf = &zipf;
            handles.push(s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (k as u64).wrapping_mul(0x9E37));
                let mut local = Vec::new();
                let (mut ww, mut val) = (0usize, 0usize);
                for i in 0..cfg.txns_per_thread {
                    let n_reads = rng.random_range(1..=cfg.max_reads);
                    let mut read_rows: Vec<u32> = Vec::with_capacity(n_reads);
                    while read_rows.len() < n_reads {
                        let r = zipf.sample(&mut rng);
                        if !read_rows.contains(&r) {
                            read_rows.push(r);
                        }
                    }
                    let write_row = loop {
                        let r = zipf.sample(&mut rng);
                        if !read_rows.contains(&r) {
                            break r;
                        }
                    };
                    // The written value must be a function of the reads so
                    // a stale read corrupts downstream state visibly; the
                    // salt makes every write distinct.
                    let salt = ((k as u64) << 32) | i as u64;
                    let value_of = |reads: &BTreeMap<u32, u64>| {
                        reads
                            .values()
                            .fold(0u64, |acc, &v| acc.wrapping_mul(31).wrapping_add(v))
                            .wrapping_add(salt << 8)
                    };

                    let mut txn = db.begin(TxnKind::Oltp);
                    let mut reads: BTreeMap<u32, u64> = BTreeMap::new();
                    for &r in &read_rows {
                        reads.insert(r, txn.get(t, c, r).unwrap());
                    }
                    // On a single-core host every transaction otherwise
                    // fits inside one scheduler quantum and the threads
                    // serialize conflict-free; yielding between the reads
                    // and the commit lets other committers' writes land in
                    // the validation window.
                    std::thread::yield_now();
                    txn.update(t, c, write_row, value_of(&reads)).unwrap();
                    let reads_cell = std::cell::RefCell::new(&mut reads);
                    let result = txn.commit_with_repair(cfg.repair_rounds, |tx, conflicts| {
                        let mut reads = reads_cell.borrow_mut();
                        for conf in conflicts {
                            for &(ct, cc, row) in &conf.keys {
                                // Conflicts on the write row need no
                                // re-read (the write is blind); re-read
                                // only rows we actually observed.
                                if let std::collections::btree_map::Entry::Occupied(mut e) =
                                    reads.entry(row)
                                {
                                    e.insert(tx.get(ct, cc, row)?);
                                }
                            }
                        }
                        tx.update(t, c, write_row, value_of(&reads))
                    });
                    match result {
                        Ok(commit_ts) => local.push(TxnHistory {
                            commit_ts,
                            reads: reads.iter().map(|(&r, &v)| (r, v)).collect(),
                            writes: vec![(write_row, value_of(&reads))],
                        }),
                        Err(anker_core::DbError::Aborted(
                            anker_core::AbortReason::WriteWriteConflict,
                        )) => ww += 1,
                        Err(anker_core::DbError::Aborted(
                            anker_core::AbortReason::ValidationFailed { .. },
                        )) => val += 1,
                        Err(e) => panic!("unexpected commit error: {e:?}"),
                    }
                }
                (local, ww, val)
            }));
        }
        for h in handles {
            let (local, ww, val) = h.join().unwrap();
            history.extend(local);
            ww_aborts += ww;
            validation_aborts += val;
        }
    });

    let expected = replay_commit_order(&init, &mut history, serializable);
    let actual = dump_col(db, t, c, cfg.rows);
    assert_eq!(
        actual, expected,
        "final database state differs from the commit-order serial replay"
    );
    StressOutcome {
        committed: history.len(),
        ww_aborts,
        validation_aborts,
    }
}
