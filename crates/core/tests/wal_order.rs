//! Crash consistency of the **relaxed WAL ordering**: concurrent
//! committers append commit records in whatever order they reach the
//! log, so file order is *not* timestamp order — each record carries a
//! `(commit_ts, seq)` pair and recovery sorts before applying.
//!
//! The test forces a genuinely inverted append order with sched-gate
//! pins (three committers whose records land as `ts_b, ts_c, ts_a` with
//! `ts_a < ts_b < ts_c`), then truncates a copy of the log at **every**
//! record boundary and checks each recovery bit-identically against a
//! timestamp-sorted shadow-model replay of the surviving records.
//!
//! Losing a smaller-timestamp commit while keeping larger ones is
//! correct here: the record that never reached the log was never
//! acknowledged (its committer was still pre-fsync), and concurrent
//! commits have disjoint write sets (first-updater-wins), so any
//! surviving subset replays to a consistent state.

mod common;

use anker_core::{AnkerDb, DbConfig, DurabilityLevel, TxnKind};
use anker_util::sched::{self, SchedCtl};
use common::{dump_col, one_col_table, tmp_dir};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Sync points are process-global state: one controller at a time.
static GATE_MX: Mutex<()> = Mutex::new(());

const ROWS: u32 = 8;

/// Offsets just past each complete frame of a segment, with each
/// frame's payload (tag, commit_ts, seq) when it is a commit record.
fn frames(seg: &Path) -> Vec<(u64, Option<(u64, u64)>)> {
    let bytes = std::fs::read(seg).unwrap();
    let mut out = Vec::new();
    let mut pos = 16usize; // segment header
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if bytes.len() - pos - 8 < len {
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        let commit = if payload.first() == Some(&3) {
            let ts = u64::from_le_bytes(payload[1..9].try_into().unwrap());
            let seq = u64::from_le_bytes(payload[9..17].try_into().unwrap());
            Some((ts, seq))
        } else {
            None
        };
        pos += 8 + len;
        out.push((pos as u64, commit));
    }
    out
}

fn newest_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs.pop().expect("a WAL segment exists")
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for e in std::fs::read_dir(src).unwrap() {
        let e = e.unwrap();
        std::fs::copy(e.path(), dst.join(e.file_name())).unwrap();
    }
}

#[test]
fn every_truncation_of_an_out_of_order_log_recovers_to_the_sorted_replay() {
    let _g = GATE_MX.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("wal-order");
    // Snapshot isolation: committers take no validation-shard locks, so
    // the pinned schedule below controls the append order completely.
    let cfg = DbConfig::homogeneous_snapshot_isolation()
        .with_gc_interval(None)
        .with_durability(DurabilityLevel::Buffered);

    // writes[i] = (commit_ts, row, word) in *timestamp* order.
    let mut writes: Vec<(u64, u32, u64)>;
    let (t, c) = {
        let db = AnkerDb::open(&dir, cfg.clone()).unwrap();
        let (t, c) = one_col_table(&db, ROWS);

        let ctl = SchedCtl::install();
        // A parks after drawing its timestamp but *before* appending; B
        // parks after appending. C runs free. Append order: B, C, A.
        ctl.pause_label("commit:validate", "a");
        ctl.pause_label("commit:logged", "b");
        let (ts_a, ts_b, ts_c) = std::thread::scope(|s| {
            let a = s.spawn(|| {
                sched::set_label(Some("a"));
                let mut txn = db.begin(TxnKind::Oltp);
                txn.update(t, c, 1, 101).unwrap();
                txn.commit().unwrap()
            });
            ctl.await_parked("commit:validate", 1);
            let b = s.spawn(|| {
                sched::set_label(Some("b"));
                let mut txn = db.begin(TxnKind::Oltp);
                txn.update(t, c, 2, 202).unwrap();
                txn.commit().unwrap()
            });
            ctl.await_parked("commit:logged", 1);
            let ts_c = s
                .spawn(|| {
                    let mut txn = db.begin(TxnKind::Oltp);
                    txn.update(t, c, 3, 303).unwrap();
                    txn.commit().unwrap()
                })
                .join()
                .unwrap();
            ctl.resume("commit:logged");
            let ts_b = b.join().unwrap();
            ctl.resume("commit:validate");
            let ts_a = a.join().unwrap();
            (ts_a, ts_b, ts_c)
        });
        drop(ctl);
        assert!(ts_a < ts_b && ts_b < ts_c, "timestamp draw order is pinned");
        writes = vec![(ts_a, 1, 101), (ts_b, 2, 202), (ts_c, 3, 303)];
        (t, c)
        // Crash: drop without shutdown (appends are plain writes, so the
        // log content survives a same-OS reopen).
    };

    // The log now really is out of timestamp order.
    let seg = newest_segment(&dir);
    let all = frames(&seg);
    let commit_frames: Vec<(usize, u64, u64)> = all
        .iter()
        .enumerate()
        .filter_map(|(i, &(_, c))| c.map(|(ts, seq)| (i, ts, seq)))
        .collect();
    let file_ts: Vec<u64> = commit_frames.iter().map(|&(_, ts, _)| ts).collect();
    assert_eq!(
        file_ts,
        vec![writes[1].0, writes[2].0, writes[0].0],
        "file order must be the pinned inversion b, c, a"
    );
    let mut seqs: Vec<u64> = commit_frames.iter().map(|&(_, _, s)| s).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), 3, "every record carries a distinct sequence");

    // Truncate a copy at every record boundary of the commit region (0,
    // 1, 2 or all 3 surviving records) and compare recovery against the
    // ts-sorted shadow replay of exactly the survivors.
    let first_commit = commit_frames[0].0;
    writes.sort_unstable_by_key(|&(ts, _, _)| ts);
    for k in 0..=commit_frames.len() {
        let cut_at = if k == 0 {
            if first_commit == 0 {
                16
            } else {
                all[first_commit - 1].0
            }
        } else {
            all[commit_frames[k - 1].0].0
        };
        let cdir = tmp_dir(&format!("wal-order-cut{k}"));
        copy_dir(&dir, &cdir);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(newest_segment(&cdir))
            .unwrap();
        f.set_len(cut_at).unwrap();
        drop(f);

        let survivors: Vec<u64> = commit_frames.iter().take(k).map(|&(_, ts, _)| ts).collect();
        let mut shadow: Vec<u64> = (0..ROWS as u64).collect();
        for &(ts, row, word) in &writes {
            if survivors.contains(&ts) {
                shadow[row as usize] = word;
            }
        }
        let db = AnkerDb::open(&cdir, cfg.clone()).unwrap();
        let report = db.recovery_report().unwrap();
        assert_eq!(
            report.commits_replayed, k as u64,
            "exactly the surviving records replay (cut after {k})"
        );
        assert_eq!(
            dump_col(&db, t, c, ROWS),
            shadow,
            "recovery differs from the ts-sorted shadow replay (cut after {k})"
        );
        drop(db);
        std::fs::remove_dir_all(&cdir).ok();
    }

    // Sequence numbers resume past the recovered maximum: a second
    // generation appends more commits and a third replays all of them.
    {
        let db = AnkerDb::open(&dir, cfg.clone()).unwrap();
        let mut txn = db.begin(TxnKind::Oltp);
        txn.update(t, c, 4, 404).unwrap();
        txn.commit().unwrap();
    }
    let db = AnkerDb::open(&dir, cfg).unwrap();
    assert_eq!(db.recovery_report().unwrap().commits_replayed, 4);
    let state = dump_col(&db, t, c, ROWS);
    assert_eq!(&state[1..5], &[101, 202, 303, 404]);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}
