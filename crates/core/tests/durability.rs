//! Durability integration tests: WAL round-trips, snapshot-consistent
//! checkpoints, torn-tail recovery, and the crash-at-arbitrary-boundary
//! property — on both memory backends.
//!
//! "Crash" here means dropping the database without the final WAL fsync
//! mattering: WAL appends are unbuffered `write(2)` calls, so everything
//! appended is visible to a same-OS reopen no matter how the process
//! stops (the `kill -9` CI job covers the out-of-process case). Torn
//! tails are produced deliberately by truncating segment files.

use anker_core::{
    AnkerDb, BackendKind, ColumnDef, ColumnId, DbConfig, DbError, DurabilityLevel, LogicalType,
    Schema, TableId, TxnKind, Value,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anker-dura-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn backends() -> Vec<BackendKind> {
    #[cfg(target_os = "linux")]
    {
        vec![BackendKind::Sim, BackendKind::Os]
    }
    #[cfg(not(target_os = "linux"))]
    {
        vec![BackendKind::Sim]
    }
}

fn durable_config(backend: BackendKind, level: DurabilityLevel) -> DbConfig {
    DbConfig::heterogeneous_serializable()
        .with_snapshot_every(4)
        .with_gc_interval(None)
        .with_backend(backend)
        .with_durability(level)
}

/// One Int + one Double column, filled deterministically.
fn build_two_col(db: &AnkerDb, rows: u32) -> (TableId, ColumnId, ColumnId) {
    let t = db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::new("a", LogicalType::Int),
            ColumnDef::new("b", LogicalType::Double),
        ]),
        rows,
    );
    let a = db.schema(t).col("a");
    let b = db.schema(t).col("b");
    db.fill_column(t, a, (0..rows).map(|i| Value::Int(i as i64).encode()))
        .unwrap();
    db.fill_column(
        t,
        b,
        (0..rows).map(|i| Value::Double(i as f64 / 4.0).encode()),
    )
    .unwrap();
    (t, a, b)
}

/// Raw words of every cell of every column of the named tables, via an
/// OLTP read (exact, chain-aware). The "fold over all columns" of the
/// acceptance criteria.
fn full_fold(db: &AnkerDb, tables: &[&str]) -> Vec<Vec<Vec<u64>>> {
    let mut out = Vec::new();
    let mut txn = db.begin(TxnKind::Oltp);
    for name in tables {
        let t = db.table_id(name).expect("table recovered");
        let schema = db.schema(t);
        let rows = db.rows(t);
        let mut cols = Vec::new();
        for (cid, _) in schema.iter() {
            let mut words = Vec::with_capacity(rows as usize);
            for r in 0..rows {
                words.push(txn.get(t, cid, r).unwrap());
            }
            cols.push(words);
        }
        out.push(cols);
    }
    txn.abort();
    out
}

#[test]
fn clean_shutdown_round_trip_both_backends() {
    for backend in backends() {
        let dir = tmp_dir(&format!("clean-{backend:?}"));
        let cfg = durable_config(backend, DurabilityLevel::Fsync);
        {
            let db = AnkerDb::open(&dir, cfg.clone()).unwrap();
            let (t, a, b) = build_two_col(&db, 300);
            for i in 0..50u32 {
                let mut txn = db.begin(TxnKind::Oltp);
                txn.update_value(t, a, i % 300, Value::Int(1_000 + i as i64))
                    .unwrap();
                txn.update_value(t, b, (i * 7) % 300, Value::Double(i as f64))
                    .unwrap();
                txn.commit().unwrap();
            }
            db.shutdown();
            db.shutdown(); // idempotent
        }
        let before;
        {
            let db = AnkerDb::open(&dir, cfg.clone()).unwrap();
            let report = db.recovery_report().unwrap();
            assert_eq!(report.tables, 1);
            assert_eq!(report.commits_replayed, 50);
            assert!(!report.torn_tail);
            before = full_fold(&db, &["t"]);
            // Spot check typed content.
            let t = db.table_id("t").unwrap();
            let a = db.schema(t).col("a");
            let mut txn = db.begin(TxnKind::Oltp);
            assert_eq!(
                txn.get_value(t, a, 49).unwrap(),
                Value::Int(1_000 + 49),
                "last committed update must survive"
            );
            txn.abort();
        }
        // Recovery is deterministic: a third open yields bit-identical
        // columns.
        let db = AnkerDb::open(&dir, cfg).unwrap();
        assert_eq!(full_fold(&db, &["t"]), before, "backend {backend:?}");
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn new_commits_after_recovery_extend_the_log() {
    let dir = tmp_dir("extend");
    let cfg = durable_config(BackendKind::Sim, DurabilityLevel::Buffered);
    let (t, a) = {
        let db = AnkerDb::open(&dir, cfg.clone()).unwrap();
        let (t, a, _) = build_two_col(&db, 64);
        let mut txn = db.begin(TxnKind::Oltp);
        txn.update_value(t, a, 0, Value::Int(-7)).unwrap();
        txn.commit().unwrap();
        (t, a)
    };
    // Generation 2: recover, commit more.
    {
        let db = AnkerDb::open(&dir, cfg.clone()).unwrap();
        let mut txn = db.begin(TxnKind::Oltp);
        assert_eq!(txn.get_value(t, a, 0).unwrap(), Value::Int(-7));
        txn.update_value(t, a, 1, Value::Int(-8)).unwrap();
        txn.commit().unwrap();
    }
    // Generation 3 sees both generations' commits, ordered.
    let db = AnkerDb::open(&dir, cfg).unwrap();
    let report = db.recovery_report().unwrap();
    assert_eq!(report.commits_replayed, 2);
    let mut txn = db.begin(TxnKind::Oltp);
    assert_eq!(txn.get_value(t, a, 0).unwrap(), Value::Int(-7));
    assert_eq!(txn.get_value(t, a, 1).unwrap(), Value::Int(-8));
    txn.abort();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Frame boundaries (byte offsets after each complete frame, including
/// the 16-byte header as offset 0's base) and the byte at which each
/// frame's payload tag sits, for the torn-tail tests.
fn frame_boundaries(seg: &Path) -> Vec<(u64, u8)> {
    let bytes = std::fs::read(seg).unwrap();
    let mut out = Vec::new();
    let mut pos = 16usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if bytes.len() - pos - 8 < len {
            break;
        }
        let tag = bytes[pos + 8];
        pos += 8 + len;
        out.push((pos as u64, tag));
    }
    out
}

fn newest_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs.pop().expect("a WAL segment exists")
}

#[test]
fn torn_tail_recovers_to_last_complete_commit() {
    let dir = tmp_dir("torn");
    let cfg = durable_config(BackendKind::Sim, DurabilityLevel::Buffered);
    {
        let db = AnkerDb::open(&dir, cfg.clone()).unwrap();
        let (t, a, _) = build_two_col(&db, 32);
        for i in 0..10u32 {
            let mut txn = db.begin(TxnKind::Oltp);
            txn.update_value(t, a, i, Value::Int(500 + i as i64))
                .unwrap();
            txn.commit().unwrap();
        }
    }
    // Tear the newest segment in the middle of its final record.
    let seg = newest_segment(&dir);
    let boundaries = frame_boundaries(&seg);
    let last_commit_end = boundaries.last().unwrap().0;
    let second_last_end = boundaries[boundaries.len() - 2].0;
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len((second_last_end + last_commit_end) / 2).unwrap();
    drop(f);
    let db = AnkerDb::open(&dir, cfg).unwrap();
    let report = db.recovery_report().unwrap();
    assert!(report.torn_tail, "the tear must be reported");
    assert_eq!(report.commits_replayed, 9, "the torn 10th commit is gone");
    let t = db.table_id("t").unwrap();
    let a = db.schema(t).col("a");
    let mut txn = db.begin(TxnKind::Oltp);
    assert_eq!(txn.get_value(t, a, 8).unwrap(), Value::Int(508));
    assert_eq!(
        txn.get_value(t, a, 9).unwrap(),
        Value::Int(9),
        "the torn commit's write must NOT appear"
    );
    txn.abort();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_truncates_wal_and_recovery_starts_from_it() {
    for backend in backends() {
        let dir = tmp_dir(&format!("ckpt-{backend:?}"));
        let cfg = durable_config(backend, DurabilityLevel::Fsync);
        {
            let db = AnkerDb::open(&dir, cfg.clone()).unwrap();
            let (t, a, b) = build_two_col(&db, 200);
            for i in 0..20u32 {
                let mut txn = db.begin(TxnKind::Oltp);
                txn.update_value(t, a, i, Value::Int(-(i as i64))).unwrap();
                txn.commit().unwrap();
            }
            let ckpt_ts = db.checkpoint().unwrap();
            assert!(ckpt_ts >= 20, "epoch covers the 20 commits");
            // Load-record segments are covered and deleted; commits after
            // the checkpoint go to the fresh segment.
            for i in 0..5u32 {
                let mut txn = db.begin(TxnKind::Oltp);
                txn.update_value(t, b, i, Value::Double(9_000.0 + i as f64))
                    .unwrap();
                txn.commit().unwrap();
            }
            let stats = db.wal_stats().unwrap();
            assert!(
                stats.segments_retired >= 1,
                "the pre-checkpoint segment (holding the bulk loads) is covered"
            );
        }
        let db = AnkerDb::open(&dir, cfg).unwrap();
        let report = db.recovery_report().unwrap();
        assert!(
            report.checkpoint_ts >= 20,
            "boot starts from the checkpoint"
        );
        assert_eq!(report.commits_replayed, 5, "only the tail replays");
        let t = db.table_id("t").unwrap();
        let (a, b) = (db.schema(t).col("a"), db.schema(t).col("b"));
        let mut txn = db.begin(TxnKind::Oltp);
        assert_eq!(txn.get_value(t, a, 19).unwrap(), Value::Int(-19));
        assert_eq!(txn.get_value(t, b, 4).unwrap(), Value::Double(9_004.0));
        txn.abort();
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn checkpoint_requires_heterogeneous_mode_and_a_directory() {
    // No durability directory at all.
    let db = AnkerDb::new(DbConfig::default().with_gc_interval(None));
    assert!(matches!(db.checkpoint(), Err(DbError::DurabilityDisabled)));
    assert!(db.wal_stats().is_none());
    assert!(db.recovery_report().is_none());
    // Homogeneous durable database: WAL-only durability, no checkpoints.
    let dir = tmp_dir("homo");
    let cfg = DbConfig::homogeneous_serializable()
        .with_gc_interval(None)
        .with_durability(DurabilityLevel::Buffered);
    {
        let db = AnkerDb::open(&dir, cfg.clone()).unwrap();
        let (t, a, _) = build_two_col(&db, 16);
        let mut txn = db.begin(TxnKind::Oltp);
        txn.update_value(t, a, 3, Value::Int(42)).unwrap();
        txn.commit().unwrap();
        assert!(matches!(db.checkpoint(), Err(DbError::SnapshotsDisabled)));
    }
    let db = AnkerDb::open(&dir, cfg).unwrap();
    let t = db.table_id("t").unwrap();
    let a = db.schema(t).col("a");
    let mut txn = db.begin(TxnKind::Oltp);
    assert_eq!(
        txn.get_value(t, a, 3).unwrap(),
        Value::Int(42),
        "homogeneous mode recovers through pure WAL replay"
    );
    txn.abort();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance criterion's non-blocking guarantee: while a checkpoint
/// streams hundreds of thousands of words, concurrent commits keep
/// completing, and no single commit stalls for anything near the
/// checkpoint's duration (it only ever pays its own WAL append).
#[test]
fn checkpoint_never_blocks_commits_beyond_the_wal_append() {
    let dir = tmp_dir("nonblock");
    let cfg = durable_config(BackendKind::Sim, DurabilityLevel::Buffered);
    let db = AnkerDb::open(&dir, cfg).unwrap();
    // Large enough that streaming takes real time on the simulated
    // backend (word-resolved reads); several back-to-back checkpoints
    // widen the measurement window so the assertion is robust on a
    // single-core host.
    let rows = 300_000u32;
    let (t, a, _) = build_two_col(&db, rows);
    let stop = AtomicBool::new(false);
    let in_window = AtomicBool::new(false);
    let commits_during = AtomicU64::new(0);
    let max_during_ns = AtomicU64::new(0);
    let started = AtomicBool::new(false);
    let mut ckpt_wall_ns = 0u64;
    std::thread::scope(|s| {
        let updater = s.spawn(|| {
            let mut i = 0u32;
            while !stop.load(Ordering::Acquire) {
                let began = Instant::now();
                let mut txn = db.begin(TxnKind::Oltp);
                txn.update_value(t, a, i % rows, Value::Int(i as i64))
                    .unwrap();
                txn.commit().unwrap();
                let ns = began.elapsed().as_nanos() as u64;
                started.store(true, Ordering::Release);
                // The commit-latency counter of the acceptance criteria:
                // only commits overlapping the checkpoint window count.
                if in_window.load(Ordering::Acquire) {
                    commits_during.fetch_add(1, Ordering::Relaxed);
                    max_during_ns.fetch_max(ns, Ordering::Relaxed);
                }
                i += 1;
            }
        });
        // Let the updater get going, then checkpoint concurrently.
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let began = Instant::now();
        in_window.store(true, Ordering::Release);
        for _ in 0..5 {
            db.checkpoint().unwrap();
        }
        in_window.store(false, Ordering::Release);
        ckpt_wall_ns = began.elapsed().as_nanos() as u64;
        stop.store(true, Ordering::Release);
        updater.join().unwrap();
    });
    let during = commits_during.load(Ordering::Relaxed);
    let max_ns = max_during_ns.load(Ordering::Relaxed);
    assert!(
        during >= 5,
        "commits must flow while checkpoints stream (saw {during})"
    );
    assert!(
        max_ns < ckpt_wall_ns,
        "no commit may stall for anything near the checkpoint window \
         (max commit {max_ns} ns vs window {ckpt_wall_ns} ns)"
    );
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_checkpointer_takes_checkpoints() {
    let dir = tmp_dir("bg");
    let cfg = durable_config(BackendKind::Sim, DurabilityLevel::Buffered)
        .with_checkpoint_interval(Some(std::time::Duration::from_millis(30)));
    let db = AnkerDb::open(&dir, cfg).unwrap();
    let (t, a, _) = build_two_col(&db, 64);
    let mut txn = db.begin(TxnKind::Oltp);
    txn.update_value(t, a, 1, Value::Int(77)).unwrap();
    txn.commit().unwrap();
    // Poll for the checkpoint file the background thread writes.
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    let has_ckpt = || {
        std::fs::read_dir(&dir).unwrap().any(|e| {
            e.unwrap()
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".ckpt"))
        })
    };
    while !has_ckpt() {
        assert!(Instant::now() < deadline, "no checkpoint after 10s");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    db.shutdown();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Property: any committed workload, crashed at ANY record boundary in the
// commit region, recovers every column bit-identically to the state after
// exactly the commits whose records survived — on both backends.
// ---------------------------------------------------------------------

fn crash_recovery_property(
    backend: BackendKind,
    rows: u32,
    updates: &[(u8, u32, u64)],
    cut_choice: u64,
    with_checkpoint: bool,
) {
    let dir = tmp_dir(&format!(
        "prop-{backend:?}-{rows}-{cut_choice}-{with_checkpoint}"
    ));
    let cfg = durable_config(backend, DurabilityLevel::Buffered);
    // Shadow model of both columns; one entry per committed transaction.
    let mut shadow = [
        (0..rows)
            .map(|i| Value::Int(i as i64).encode())
            .collect::<Vec<u64>>(),
        (0..rows)
            .map(|i| Value::Double(i as f64 / 4.0).encode())
            .collect::<Vec<u64>>(),
    ];
    let mut per_commit: Vec<Vec<(usize, u32, u64)>> = Vec::new();
    {
        let db = AnkerDb::open(&dir, cfg.clone()).unwrap();
        let (t, a, b) = build_two_col(&db, rows);
        if with_checkpoint {
            db.checkpoint().unwrap();
        }
        // Group updates into transactions of 1..=3 writes.
        for chunk in updates.chunks(3) {
            let mut txn = db.begin(TxnKind::Oltp);
            let mut writes = Vec::new();
            for &(which, row, word) in chunk {
                let row = row % rows;
                let (col, idx) = if which % 2 == 0 { (a, 0) } else { (b, 1) };
                txn.update(t, col, row, word).unwrap();
                writes.push((idx, row, word));
            }
            txn.commit().unwrap();
            per_commit.push(writes);
        }
    }
    // Crash: cut the newest segment at an arbitrary *record boundary* at
    // or after the fill region (tag 3 = commit frames).
    let seg = newest_segment(&dir);
    let boundaries = frame_boundaries(&seg);
    let first_commit = boundaries
        .iter()
        .position(|&(_, tag)| tag == 3)
        .unwrap_or(boundaries.len());
    // Eligible cuts: after the last load record, after commit 1, ... after
    // commit n (= no cut). When a checkpoint ran, the newest segment holds
    // only commits, so every boundary is eligible.
    let base = if first_commit == 0 {
        // Segment starts with commits: also allow cutting them all away.
        16
    } else {
        boundaries[first_commit - 1].0
    };
    let n_commits_in_seg = boundaries.len() - first_commit;
    let cut_idx = (cut_choice % (n_commits_in_seg as u64 + 1)) as usize;
    let cut_at = if cut_idx == 0 {
        base
    } else {
        boundaries[first_commit + cut_idx - 1].0
    };
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(cut_at).unwrap();
    drop(f);
    // Commits whose records survived: all of them when the segment holds
    // fewer commit frames than total (earlier segments/checkpoint cover
    // the rest — cannot happen here since one segment holds all commits),
    // otherwise exactly `cut_idx`.
    let survived = per_commit.len() - (n_commits_in_seg - cut_idx);
    for writes in per_commit.iter().take(survived) {
        for &(idx, row, word) in writes {
            shadow[idx][row as usize] = word;
        }
    }
    // Recover and compare bit-for-bit.
    let db = AnkerDb::open(&dir, cfg).unwrap();
    let t = db.table_id("t").unwrap();
    let (a, b) = (db.schema(t).col("a"), db.schema(t).col("b"));
    let mut txn = db.begin(TxnKind::Oltp);
    for r in 0..rows {
        assert_eq!(
            txn.get(t, a, r).unwrap(),
            shadow[0][r as usize],
            "column a row {r} (cut after {survived}/{} commits, backend {backend:?})",
            per_commit.len()
        );
        assert_eq!(
            txn.get(t, b, r).unwrap(),
            shadow[1][r as usize],
            "column b row {r} (cut after {survived}/{} commits, backend {backend:?})",
            per_commit.len()
        );
    }
    txn.abort();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_workload_crash_recovers_bit_identically(
        rows in 8u32..120,
        updates in proptest::collection::vec(
            (any::<u8>(), any::<u32>(), any::<u64>()), 1..40),
        cut_choice in any::<u64>(),
        with_checkpoint in any::<bool>(),
    ) {
        for backend in backends() {
            crash_recovery_property(backend, rows, &updates, cut_choice, with_checkpoint);
        }
    }
}
