//! Serializability oracle: random interleaved transactions must produce a
//! final state identical to re-executing the *committed* transactions
//! serially in commit-timestamp order.
//!
//! This is the strongest correctness check in the suite: it exercises the
//! whole pipeline — local write sets, write-write detection, precision
//! locking, install ordering, version chains, epoch hand-over — and fails
//! on any anomaly full serializability forbids.

mod common;

use anker_core::{AnkerDb, ColumnDef, DbConfig, LogicalType, Schema, TxnKind};
use proptest::prelude::*;

const ROWS: u32 = 64;
const COLS: usize = 2;

/// One step of a transaction script.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Read `(col, row)` and remember it in the transaction's register.
    Read { col: usize, row: u32 },
    /// Write `register + delta` to `(col, row)` (data dependencies!).
    WriteFromRegister { col: usize, row: u32, delta: u64 },
    /// Write a constant.
    WriteConst { col: usize, row: u32, value: u64 },
}

#[derive(Debug, Clone)]
struct Script {
    steps: Vec<Step>,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..COLS, 0..ROWS).prop_map(|(col, row)| Step::Read { col, row }),
        (0..COLS, 0..ROWS, 0..100u64).prop_map(|(col, row, delta)| Step::WriteFromRegister {
            col,
            row,
            delta
        }),
        (0..COLS, 0..ROWS, 0..1000u64).prop_map(|(col, row, value)| Step::WriteConst {
            col,
            row,
            value
        }),
    ]
}

fn script_strategy() -> impl Strategy<Value = Script> {
    proptest::collection::vec(step_strategy(), 1..6).prop_map(|steps| Script { steps })
}

fn fresh_db(config: DbConfig) -> (AnkerDb, anker_core::TableId, Vec<anker_storage::ColumnId>) {
    let db = AnkerDb::new(config.with_gc_interval(None));
    let t = db.create_table(
        "t",
        Schema::new(
            (0..COLS)
                .map(|i| ColumnDef::new(format!("c{i}"), LogicalType::Int))
                .collect(),
        ),
        ROWS,
    );
    let schema = db.schema(t);
    let cols: Vec<_> = (0..COLS).map(|i| schema.col(&format!("c{i}"))).collect();
    for &c in &cols {
        db.fill_column(t, c, 0..ROWS as u64).unwrap();
    }
    (db, t, cols)
}

fn dump(db: &AnkerDb, t: anker_core::TableId, cols: &[anker_storage::ColumnId]) -> Vec<u64> {
    let mut txn = db.begin(TxnKind::Olap);
    let mut out = Vec::with_capacity(COLS * ROWS as usize);
    for &c in cols {
        for r in 0..ROWS {
            out.push(txn.get(t, c, r).unwrap());
        }
    }
    txn.commit().unwrap();
    out
}

/// Replay `scripts[idx]` serially (one transaction at a time) in the given
/// order on a fresh database; return the final state.
fn serial_replay(order: &[usize], scripts: &[Script]) -> Vec<u64> {
    let (db, t, cols) = fresh_db(DbConfig::homogeneous_serializable());
    for &idx in order {
        let mut txn = db.begin(TxnKind::Oltp);
        let mut register = 0u64;
        for step in &scripts[idx].steps {
            match *step {
                Step::Read { col, row } => register = txn.get(t, cols[col], row).unwrap(),
                Step::WriteFromRegister { col, row, delta } => txn
                    .update(t, cols[col], row, register.wrapping_add(delta))
                    .unwrap(),
                Step::WriteConst { col, row, value } => {
                    txn.update(t, cols[col], row, value).unwrap()
                }
            }
        }
        txn.commit().expect("serial execution cannot conflict");
    }
    dump(&db, t, &cols)
}

/// Phantom protection through the ScanBuilder: a predicate scan races an
/// updater that moves rows into the scanned range. The scanning updater
/// never called `log_range` — the builder registered the precision lock —
/// yet it must abort under `Serializable` once the racing commit lands.
/// This is exactly the footgun the typed scan API removes: with the old
/// raw-callback API, forgetting the manual log call made this race pass
/// validation silently.
#[test]
fn scan_builder_phantom_protection() {
    for hetero in [false, true] {
        let config = if hetero {
            DbConfig::heterogeneous_serializable().with_snapshot_every(3)
        } else {
            DbConfig::homogeneous_serializable()
        };
        let (db, t, cols) = fresh_db(config);
        // The scanner counts rows with c0 in [10, 20] and writes the
        // summary; its predicate comes only from the builder.
        let mut scanner = db.begin(TxnKind::Oltp);
        let (n_before, _) = scanner
            .scan_on(t)
            .range_i64(cols[0], 10, 20)
            .count()
            .unwrap();
        assert_eq!(n_before, 11, "rows are loaded as 0..64");
        // A racing updater moves a distant row *into* the scanned range —
        // the phantom — and commits first.
        let mut updater = db.begin(TxnKind::Oltp);
        updater.update(t, cols[0], 40, 15).unwrap();
        updater.commit().unwrap();
        // The scanner's count is now stale; committing its summary must
        // abort.
        scanner.update(t, cols[1], 0, n_before).unwrap();
        match scanner.commit() {
            Err(anker_core::DbError::Aborted(_)) => {}
            other => panic!("phantom survived (hetero={hetero}): {other:?}"),
        }
        // Control: an update far outside the range does not disturb an
        // identical scanner.
        let mut scanner = db.begin(TxnKind::Oltp);
        let (n, _) = scanner
            .scan_on(t)
            .range_i64(cols[0], 10, 20)
            .count()
            .unwrap();
        let mut updater = db.begin(TxnKind::Oltp);
        updater.update(t, cols[0], 50, 5000).unwrap();
        updater.commit().unwrap();
        scanner.update(t, cols[1], 0, n).unwrap();
        scanner
            .commit()
            .expect("write outside the predicate range must not abort the scanner");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleaved_equals_serial_in_commit_order(
        scripts in proptest::collection::vec(script_strategy(), 2..5),
        schedule in proptest::collection::vec(0usize..5, 10..60),
        hetero in any::<bool>(),
    ) {
        let config = if hetero {
            DbConfig::heterogeneous_serializable().with_snapshot_every(3)
        } else {
            DbConfig::homogeneous_serializable()
        };
        let (db, t, cols) = fresh_db(config);

        // Interleaved execution. We need commit order with indices, so use
        // a deterministic full drive: run the schedule, then finish
        // remaining txns in index order, recording (commit_ts, idx).
        let mut txns: Vec<Option<(anker_core::Txn, u64, usize)>> = scripts
            .iter()
            .map(|_| Some((db.begin(TxnKind::Oltp), 0u64, 0usize)))
            .collect();
        let mut committed: Vec<(u64, usize)> = Vec::new();
        let drive = |idx: usize,
                         txns: &mut Vec<Option<(anker_core::Txn, u64, usize)>>,
                         committed: &mut Vec<(u64, usize)>| {
            if let Some((txn, register, pc)) = txns[idx].as_mut() {
                if let Some(step) = scripts[idx].steps.get(*pc).copied() {
                    match step {
                        Step::Read { col, row } => {
                            *register = txn.get(t, cols[col], row).unwrap();
                        }
                        Step::WriteFromRegister { col, row, delta } => {
                            let v = register.wrapping_add(delta);
                            txn.update(t, cols[col], row, v).unwrap();
                        }
                        Step::WriteConst { col, row, value } => {
                            txn.update(t, cols[col], row, value).unwrap();
                        }
                    }
                    *pc += 1;
                } else if let Some((txn, _, _)) = txns[idx].take() {
                    if let Ok(ts) = txn.commit() {
                        committed.push((ts, idx));
                    }
                }
            }
        };
        for &pick in &schedule {
            drive(pick % scripts.len(), &mut txns, &mut committed);
        }
        // Finish stragglers: step each to completion, then commit.
        for idx in 0..scripts.len() {
            while txns[idx].is_some() {
                drive(idx, &mut txns, &mut committed);
            }
        }
        let interleaved_state = dump(&db, t, &cols);

        // Serial replay of the committed transactions in commit order.
        committed.sort_by_key(|&(ts, _)| ts);
        let order: Vec<usize> = committed.iter().map(|&(_, idx)| idx).collect();
        let serial_state = serial_replay(&order, &scripts);

        prop_assert_eq!(
            interleaved_state,
            serial_state,
            "interleaved execution is not equivalent to serial commit order \
             (committed order: {:?})",
            order
        );
    }
}

// ---------------------------------------------------------------------
// The threaded oracle: real concurrent committers (the single-threaded
// proptest above interleaves steps but commits one at a time, so it can
// never catch a pipeline race). 2–8 OS threads hammer Zipf-skewed keys
// through the read-compute-write driver of `tests/common`, including the
// bounded conflict-repair path, and the whole history must replay
// serially in commit-timestamp order.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn threaded_history_is_commit_order_serializable(
        threads in 2usize..=8,
        txns_per_thread in 8usize..=32,
        theta_tenths in 0u32..=12,
        repair_rounds in 0u32..=3,
        seed in any::<u64>(),
        hetero in any::<bool>(),
    ) {
        let config = if hetero {
            DbConfig::heterogeneous_serializable().with_snapshot_every(8)
        } else {
            DbConfig::homogeneous_serializable()
        };
        let cfg = common::StressConfig {
            threads,
            txns_per_thread,
            rows: 24,
            theta: theta_tenths as f64 / 10.0,
            max_reads: 3,
            repair_rounds,
            seed,
        };
        let (db, t, c) = common::one_col_db(config, cfg.rows);
        // `run_commit_stress` panics (→ proptest failure + shrink) on any
        // serializability violation.
        let out = common::run_commit_stress(&db, t, c, &cfg);
        prop_assert!(out.committed > 0);
    }
}
