//! Deterministic-interleaving tests of the concurrent commit pipeline.
//!
//! Each test pins one historically racy schedule with [`anker_util::sched`]
//! sync points instead of hoping a loop reopens the window:
//!
//! 1. **Write skew across validation shards** — two committers whose
//!    read/write footprints cross two different validation shards both
//!    reach validation with latches held; exactly one must abort.
//! 2. **Out-of-order install** — a committer with a *smaller* timestamp
//!    parks mid-install while a larger one completes; new readers must
//!    see neither commit until the watermark covers both.
//! 3. **WAL append vs. group-commit rotation** — a checkpoint rotates
//!    and retires segments between a committer's append and its fsync;
//!    the commit must survive a crash.
//!
//! Plus the fairness regression (a slow WAL fsync must not block
//! snapshot-reader creation), a deterministic conflict-repair schedule,
//! the repair-snapshot regression (a commit completing during the
//! conflict wait must not escape revalidation), the epoch-liveness
//! escalation (OLAP arrivals force a commit-quiescent window instead of
//! starving), and the forced-window deadlock regression (a committer
//! must shed its validation-shard locks before waiting out a commit
//! freeze, or the freezer's drain can never complete). The gate is
//! process-global, so every test here serializes on [`GATE_MX`].

mod common;

use anker_core::{AbortReason, AnkerDb, DbConfig, DbError, DurabilityLevel, TxnKind, Value};
use anker_util::sched::{self, SchedCtl};
use common::{backends, dump_col, one_col_db, one_col_table, tmp_dir};
use std::sync::Mutex;

/// Sync points are process-global state: one controller at a time.
static GATE_MX: Mutex<()> = Mutex::new(());

fn gate_lock() -> std::sync::MutexGuard<'static, ()> {
    GATE_MX.lock().unwrap_or_else(|e| e.into_inner())
}

/// Race 1: the sharded validator must still serialize logically across
/// shards. A reads table `t2` and writes `t1`; B reads `t1` and writes
/// `t2` (the tables land on different validation shards). Both run to
/// their install latches before either validates — under a per-table
/// validator that locked only its own write shard, both would validate
/// against an empty shard and commit, committing textbook write skew.
/// The pipeline locks the union of write and predicate shards, so
/// exactly one side must abort — deterministically, on every backend,
/// in both processing modes.
#[test]
fn write_skew_across_validation_shards_aborts_exactly_one() {
    for backend in backends() {
        for hetero in [false, true] {
            let _g = gate_lock();
            let config = if hetero {
                DbConfig::heterogeneous_serializable().with_snapshot_every(4)
            } else {
                DbConfig::homogeneous_serializable()
            };
            let db = AnkerDb::new(config.with_gc_interval(None).with_backend(backend));
            let mk = |name: &str| {
                let t = db.create_table(
                    name,
                    anker_core::Schema::new(vec![anker_core::ColumnDef::new(
                        "v",
                        anker_core::LogicalType::Int,
                    )]),
                    4,
                );
                let c = db.schema(t).col("v");
                db.fill_column(t, c, 0..4u64).unwrap();
                (t, c)
            };
            let (t1, c1) = mk("t1");
            let (t2, c2) = mk("t2");
            assert_ne!(
                anker_mvcc::RecentCommits::shard_of(t1.0),
                anker_mvcc::RecentCommits::shard_of(t2.0),
                "the two tables must land on different validation shards"
            );

            let ctl = SchedCtl::install();
            ctl.pause("commit:latched");
            let (ra, rb) = std::thread::scope(|s| {
                let a = s.spawn(|| {
                    let mut txn = db.begin(TxnKind::Oltp);
                    let v = txn.get(t2, c2, 0).unwrap();
                    txn.update(t1, c1, 0, v + 100).unwrap();
                    txn.commit()
                });
                let b = s.spawn(|| {
                    let mut txn = db.begin(TxnKind::Oltp);
                    let v = txn.get(t1, c1, 0).unwrap();
                    txn.update(t2, c2, 0, v + 200).unwrap();
                    txn.commit()
                });
                // Both sides hold their install latches; neither has
                // validated. Note the *reads* cross the latches (B reads
                // the row A holds latched, and vice versa): latch-ignoring
                // reads are load-bearing here — a reader that waited on
                // PENDING would deadlock against this very schedule.
                ctl.await_parked("commit:latched", 2);
                ctl.resume("commit:latched");
                (a.join().unwrap(), b.join().unwrap())
            });
            drop(ctl);

            let (committed, aborted) = match (&ra, &rb) {
                (Ok(_), Err(e)) => (1, e),
                (Err(e), Ok(_)) => (2, e),
                other => panic!(
                    "exactly one of the write-skew pair must commit \
                     (backend {backend:?}, hetero {hetero}): {other:?}"
                ),
            };
            assert!(
                matches!(
                    aborted,
                    DbError::Aborted(AbortReason::ValidationFailed { .. })
                ),
                "the loser must fail read validation, got {aborted:?}"
            );
            // The surviving state is one of the two serial outcomes.
            let mut txn = db.begin(TxnKind::Oltp);
            let (v1, v2) = (txn.get(t1, c1, 0).unwrap(), txn.get(t2, c2, 0).unwrap());
            txn.abort();
            if committed == 1 {
                assert_eq!((v1, v2), (100, 0));
            } else {
                assert_eq!((v1, v2), (0, 200));
            }
        }
    }
}

/// Race 2: installs land physically out of timestamp order, and the
/// stable-timestamp watermark must hide them until the *full prefix* is
/// in. Committer A draws the smaller timestamp and parks after
/// installing but before completing; B (larger timestamp) installs and
/// completes. A reader opened now would, under a naive
/// `next_commit - 1` snapshot, see B's write without A's — a torn,
/// non-serial state. With watermark gating it sees neither.
///
/// Runs under homogeneous snapshot isolation: no validation shards, so
/// both committers move through the pipeline without serializing on
/// anything but the oracle — the purest out-of-order install.
#[test]
fn out_of_order_install_is_invisible_until_the_watermark_covers_it() {
    for backend in backends() {
        let _g = gate_lock();
        let (db, t, c) = one_col_db(
            DbConfig::homogeneous_snapshot_isolation().with_backend(backend),
            8,
        );

        let ctl = SchedCtl::install();
        ctl.pause("commit:validate");
        ctl.pause_label("commit:installed", "slow");
        std::thread::scope(|s| {
            let a = s.spawn(|| {
                sched::set_label(Some("slow"));
                let mut txn = db.begin(TxnKind::Oltp);
                txn.update(t, c, 0, 100).unwrap();
                txn.commit().unwrap()
            });
            // A has drawn its commit timestamp once it parks.
            ctl.await_parked("commit:validate", 1);
            let b = s.spawn(|| {
                let mut txn = db.begin(TxnKind::Oltp);
                txn.update(t, c, 1, 200).unwrap();
                txn.commit().unwrap()
            });
            ctl.await_parked("commit:validate", 2);
            // Let both continue; B runs to completion, A parks with its
            // row installed but its commit not yet completed.
            ctl.resume("commit:validate");
            let ts_b = b.join().unwrap();
            ctl.await_parked("commit:installed", 1);

            // Both rows are physically written (A's under ts_a < ts_b,
            // B's completed), yet the watermark sits below ts_a: a new
            // reader must see the pre-commit values of *both* rows,
            // through the version chains.
            let mut r = db.begin(TxnKind::Oltp);
            assert!(r.start_ts() < ts_b, "watermark is gated by A");
            assert_eq!(r.get(t, c, 0).unwrap(), 0, "A's install is hidden");
            assert_eq!(r.get(t, c, 1).unwrap(), 1, "B's commit is hidden too");
            r.abort();

            ctl.resume("commit:installed");
            let ts_a = a.join().unwrap();
            assert!(ts_a < ts_b, "A drew the smaller timestamp");

            // Watermark now covers both: a new reader sees both commits.
            let mut r = db.begin(TxnKind::Oltp);
            assert!(r.start_ts() >= ts_b);
            assert_eq!(r.get(t, c, 0).unwrap(), 100);
            assert_eq!(r.get(t, c, 1).unwrap(), 200);
            r.abort();
        });
        drop(ctl);
    }
}

/// Race 3: a checkpoint rotates the WAL and retires covered segments in
/// the window between a committer's append and its group-commit fsync.
/// The committer's `sync_to` must still succeed (rotation closes and
/// syncs the old segment, so the LSN is already durable), and after a
/// crash the commit must be recovered — from the checkpoint that covered
/// it.
#[test]
fn wal_append_vs_checkpoint_rotation_survives_a_crash() {
    for backend in backends() {
        let _g = gate_lock();
        let dir = tmp_dir(&format!("rotate-{backend:?}"));
        let cfg = DbConfig::heterogeneous_serializable()
            .with_snapshot_every(1)
            .with_gc_interval(None)
            .with_backend(backend)
            .with_durability(DurabilityLevel::Fsync);
        let (t, c) = {
            let db = AnkerDb::open(&dir, cfg.clone()).unwrap();
            let (t, c) = one_col_table(&db, 16);
            let mut txn = db.begin(TxnKind::Oltp);
            txn.update(t, c, 0, 11).unwrap();
            txn.commit().unwrap();

            let ctl = SchedCtl::install();
            ctl.pause("commit:pre-fsync");
            std::thread::scope(|s| {
                let committer = s.spawn(|| {
                    let mut txn = db.begin(TxnKind::Oltp);
                    txn.update(t, c, 2, 777).unwrap();
                    txn.commit().unwrap()
                });
                // The committer has appended, installed and completed, but
                // not yet synced. Rotate the log underneath it.
                ctl.await_parked("commit:pre-fsync", 1);
                let before = db.wal_stats().unwrap();
                db.checkpoint().unwrap();
                let after = db.wal_stats().unwrap();
                assert!(
                    after.segments_created > before.segments_created,
                    "the checkpoint must have rotated the WAL"
                );
                ctl.resume("commit:pre-fsync");
                committer.join().unwrap();
            });
            drop(ctl);
            (t, c)
            // Crash: drop without shutdown.
        };
        let db = AnkerDb::open(&dir, cfg).unwrap();
        let mut txn = db.begin(TxnKind::Oltp);
        assert_eq!(
            txn.get_value(t, c, 2).unwrap(),
            Value::Int(777),
            "the commit that raced the rotation must survive the crash \
             (backend {backend:?})"
        );
        assert_eq!(txn.get_value(t, c, 0).unwrap(), Value::Int(11));
        txn.abort();
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Fairness regression: the old commit section covered the WAL fsync, so
/// one committer stuck in `fdatasync` blocked `snapshot_reader()` (which
/// needs the commit lock to pin an epoch) for the full sync latency. The
/// pipeline syncs outside every lock; a reader opened while a committer
/// is mid-fsync must come up immediately.
#[test]
fn slow_wal_fsync_does_not_block_snapshot_readers() {
    let _g = gate_lock();
    let dir = tmp_dir("fsync-reader");
    let cfg = DbConfig::heterogeneous_serializable()
        .with_snapshot_every(1)
        .with_gc_interval(None)
        .with_durability(DurabilityLevel::Fsync);
    let db = AnkerDb::open(&dir, cfg).unwrap();
    let (t, c) = one_col_table(&db, 8);
    let mut txn = db.begin(TxnKind::Oltp);
    txn.update(t, c, 0, 5).unwrap();
    txn.commit().unwrap();

    let ctl = SchedCtl::install();
    ctl.pause("commit:pre-fsync");
    std::thread::scope(|s| {
        let committer = s.spawn(|| {
            let mut txn = db.begin(TxnKind::Oltp);
            txn.update(t, c, 1, 6).unwrap();
            txn.commit().unwrap()
        });
        ctl.await_parked("commit:pre-fsync", 1);
        // The committer is parked "inside its fsync". Reader creation
        // must not wait for it; a bounded-channel handshake turns a
        // regression into a test failure instead of a hang.
        let (tx, rx) = std::sync::mpsc::channel();
        let db2 = db.clone();
        let reader = s.spawn(move || {
            let r = db2.snapshot_reader();
            tx.send(()).unwrap();
            r.unwrap()
        });
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("snapshot_reader() blocked behind a committer's WAL fsync");
        let reader = reader.join().unwrap();
        // The reader pinned a consistent epoch: row 0's committed value,
        // and a stable view regardless of the in-flight commit.
        assert_eq!(reader.get(t, c, 0).unwrap(), 5);
        ctl.resume("commit:pre-fsync");
        committer.join().unwrap();
    });
    drop(ctl);
    db.shutdown();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression for a conflict-repair serializability hole: after a failed
/// validation the transaction used to advance its snapshot to the
/// *current watermark* instead of the youngest conflictor. A commit that
/// published after the transaction's shard locks dropped and completed
/// before the repair read could then land at-or-below the new snapshot —
/// the next round's validation (which only scans commits younger than
/// the snapshot) never saw it, and the repair closure never re-read its
/// keys: a commit with stale reads. The schedule:
///
///   T    reads rows 0 and 1, writes row 2 = 100·r0 + 10·r1
///   B1   overwrites row 0 while T holds its install latches
///        → T's round-1 conflict
///   B2   reads row 2, overwrites row 1, and *completes* while T is
///        parked between its validation failure and its snapshot advance
///
/// B2 read row 2 before T wrote it (B2 before T) and, with a stale
/// row 1, T read row 1 before B2 wrote it (T before B2): committing
/// `100·5 + 10·1 = 510` matches no serial order of {B1, B2, T}. Pinning
/// the new snapshot at the youngest round-1 conflictor keeps B2 above
/// it, so round 2 must flag row 1 and repair it too → 570.
#[test]
fn repair_revalidates_commits_published_during_the_conflict_wait() {
    let _g = gate_lock();
    let (db, t, c) = one_col_db(DbConfig::homogeneous_serializable(), 8);

    let ctl = SchedCtl::install();
    ctl.pause_label("commit:latched", "repairer");
    ctl.pause("repair:conflict");
    let (result, b2_read) = std::thread::scope(|s| {
        let a = s.spawn(|| {
            sched::set_label(Some("repairer"));
            let mut txn = db.begin(TxnKind::Oltp);
            let mut r0 = txn.get(t, c, 0).unwrap();
            let mut r1 = txn.get(t, c, 1).unwrap();
            txn.update(t, c, 2, 100 * r0 + 10 * r1).unwrap();
            txn.commit_with_repair(3, |tx, conflicts| {
                // Re-read exactly the flagged keys (the documented
                // contract); every other read keeps its cached value.
                for cf in conflicts {
                    for &(tt, cc, row) in &cf.keys {
                        let fresh = tx.get(tt, cc, row)?;
                        match row {
                            0 => r0 = fresh,
                            1 => r1 = fresh,
                            _ => unreachable!("only rows 0 and 1 are read"),
                        }
                    }
                }
                tx.update(t, c, 2, 100 * r0 + 10 * r1)
            })
        });
        ctl.await_parked("commit:latched", 1);
        // B1 invalidates T's read of row 0 → the round-1 conflict.
        let mut b1 = db.begin(TxnKind::Oltp);
        b1.update(t, c, 0, 5).unwrap();
        b1.commit().unwrap();
        ctl.resume("commit:latched");
        // T has failed validation and released its shard locks and
        // latches, but not yet advanced its snapshot. B2 publishes and
        // completes inside exactly that window.
        ctl.await_parked("repair:conflict", 1);
        let mut b2 = db.begin(TxnKind::Oltp);
        let b2_read = b2.get(t, c, 2).unwrap();
        b2.update(t, c, 1, 7).unwrap();
        b2.commit().unwrap();
        ctl.release("repair:conflict", 1);
        // Round 2 must flag B2's overwrite of row 1; T parks here again.
        ctl.await_parked("repair:conflict", 1);
        ctl.resume("repair:conflict");
        (a.join().unwrap(), b2_read)
    });
    drop(ctl);

    result.expect("two repair rounds must converge");
    assert_eq!(b2_read, 2, "B2 observed row 2 before T's write");
    let stats = db.stats();
    assert_eq!(stats.repair_rounds, 2, "B2's overwrite must cost a round");
    assert_eq!(stats.repaired_commits, 1);
    assert_eq!(
        dump_col(&db, t, c, 8)[2],
        100 * 5 + 10 * 7,
        "the committed write must fold in BOTH overwrites; 510 would mean \
         B2 escaped revalidation and T committed a stale row 1"
    );
}

/// Liveness: OLAP snapshot/epoch creation must not starve behind
/// sustained commit traffic. A new epoch needs a commit-quiescent
/// instant, and with some commit always in flight a retry loop may never
/// observe one. Pin the worst case — a committer that *stays* in flight,
/// parked between its WAL append and its install — and assert the
/// arriving reader escalates: it freezes commit-timestamp allocation,
/// waits out the straggler, cuts its epoch in the forced window, and
/// re-admits commits afterwards. On the pre-escalation code the reader
/// spins forever and `await_parked("epoch:forced")` hangs.
#[test]
fn olap_epoch_creation_escalates_to_a_forced_quiescent_window() {
    let _g = gate_lock();
    let (db, t, c) = one_col_db(
        DbConfig::heterogeneous_serializable()
            .with_snapshot_every(1)
            .with_gc_interval(None),
        8,
    );

    let ctl = SchedCtl::install();
    ctl.pause_label("commit:logged", "stall");
    ctl.pause("epoch:forced");
    std::thread::scope(|s| {
        let stalled = s.spawn(|| {
            sched::set_label(Some("stall"));
            let mut txn = db.begin(TxnKind::Oltp);
            txn.update(t, c, 0, 42).unwrap();
            txn.commit().unwrap()
        });
        // The committer is in flight: timestamp drawn, nothing installed,
        // and it stays that way — no quiescent instant will occur.
        ctl.await_parked("commit:logged", 1);
        let db2 = db.clone();
        let reader = s.spawn(move || db2.snapshot_reader().unwrap());
        ctl.await_parked("epoch:forced", 1);
        // The freeze is armed. Let the straggler drain, then let the
        // reader take its epoch in the quiescent window.
        ctl.resume("commit:logged");
        stalled.join().unwrap();
        ctl.resume("epoch:forced");
        let reader = reader.join().unwrap();
        assert_eq!(
            reader.get(t, c, 0).unwrap(),
            42,
            "the forced epoch covers the drained commit"
        );
        // Commit admission is restored after the forced window.
        let mut txn = db.begin(TxnKind::Oltp);
        txn.update(t, c, 1, 9).unwrap();
        txn.commit().unwrap();
    });
    drop(ctl);
}

/// Deadlock regression for the forced quiescent window: freezer vs a
/// shard-holding committer parked on the freeze vs an in-flight pruner.
///
/// The cycle (caught live on a single-core host, ~1-in-10 full HTAP
/// runs): an OLAP arrival escalates to `force_quiescent_epoch` and
/// freezes commit-timestamp allocation; committer B has taken its
/// validation-shard locks and now blocks in allocation waiting for the
/// unfreeze; in-flight committer C (timestamp drawn before the freeze)
/// reaches the periodic prune — which locks *every* validation shard —
/// and parks on B's shard. The freezer waits on C (drain, then the
/// commit section C holds), C waits on B's shard, B waits on the
/// freezer's unfreeze. Fixed by B shedding its shard locks before
/// waiting out the freeze (`commit:frozen-wait` marks the handoff);
/// on the pre-fix code this schedule deadlocks at the pruner's join.
#[test]
fn forced_epoch_vs_shard_held_committer_vs_pruner() {
    let _g = gate_lock();
    let (db, t, c) = one_col_db(
        DbConfig::heterogeneous_serializable()
            .with_snapshot_every(1_000_000)
            .with_gc_interval(None),
        8,
    );
    // Run the prune counter up to 127: the next heterogeneous commit is
    // the 128th and prunes, locking every validation shard in turn.
    for i in 0..127u32 {
        let mut txn = db.begin(TxnKind::Oltp);
        txn.update(t, c, i % 8, i as u64).unwrap();
        txn.commit().unwrap();
    }

    let ctl = SchedCtl::install();
    ctl.pause_label("commit:pre-install", "pruner");
    ctl.pause_label("commit:shards", "blocked");
    ctl.pause("epoch:forced");
    ctl.pause_label("commit:frozen-wait", "blocked");
    std::thread::scope(|s| {
        let pruner = s.spawn(|| {
            sched::set_label(Some("pruner"));
            let mut txn = db.begin(TxnKind::Oltp);
            txn.update(t, c, 0, 1_000).unwrap();
            txn.commit().unwrap()
        });
        // C is in flight: timestamp drawn, parked before the commit
        // section — no quiescent instant will occur on its own.
        ctl.await_parked("commit:pre-install", 1);

        let blocked = s.spawn(|| {
            sched::set_label(Some("blocked"));
            let mut txn = db.begin(TxnKind::Oltp);
            txn.update(t, c, 1, 2_000).unwrap();
            txn.commit().unwrap()
        });
        // B holds its validation shards, pre-allocation.
        ctl.await_parked("commit:shards", 1);

        let db2 = db.clone();
        let reader = s.spawn(move || db2.snapshot_reader().unwrap());
        // The arriving reader escalates to the forced window: the freeze
        // is armed before the `epoch:forced` hit parks it.
        ctl.await_parked("epoch:forced", 1);

        // Release B into the armed freeze. It must shed its shard locks
        // before waiting the freeze out — the parked `commit:frozen-wait`
        // hit sits after the shed, so reaching it proves the handoff.
        ctl.resume("commit:shards");
        ctl.await_parked("commit:frozen-wait", 1);

        // C resumes: takes the commit section, installs, completes, and —
        // 128th commit — prunes across every (now free) validation shard.
        ctl.resume("commit:pre-install");
        pruner.join().unwrap();

        // Drained; the reader cuts its epoch in the forced window and
        // re-admits commits, then B re-locks its shards and commits.
        ctl.resume("epoch:forced");
        ctl.resume("commit:frozen-wait");
        let reader = reader.join().unwrap();
        blocked.join().unwrap();
        assert_eq!(
            reader.get(t, c, 0).unwrap(),
            1_000,
            "the forced epoch covers the drained pruner commit"
        );
        // The epoch was pinned inside the freeze, before B re-entered:
        // B's commit is invisible to the reader (snapshot isolation)…
        assert_eq!(
            reader.get(t, c, 1).unwrap(),
            121,
            "the forced epoch must predate the re-admitted commit"
        );
        // …but fully visible to a post-unfreeze transaction.
        let mut txn = db.begin(TxnKind::Oltp);
        assert_eq!(txn.get(t, c, 1).unwrap(), 2_000);
        txn.commit().unwrap();
    });
    drop(ctl);
}

/// Deterministic conflict repair: A reads row 0 and writes
/// `10 × row0` to row 1; B overwrites row 0 while A is parked at its
/// install latches. Plain `commit()` must abort A; `commit_with_repair`
/// must re-read row 0, recompute, and commit — converting the
/// validation failure into a commit, visible in the stats.
#[test]
fn bounded_conflict_repair_converts_a_pinned_validation_failure() {
    for repair in [false, true] {
        let _g = gate_lock();
        let (db, t, c) = one_col_db(DbConfig::homogeneous_serializable(), 8);

        let ctl = SchedCtl::install();
        ctl.pause_label("commit:latched", "repairer");
        let result = std::thread::scope(|s| {
            let a = s.spawn(|| {
                sched::set_label(Some("repairer"));
                let mut txn = db.begin(TxnKind::Oltp);
                let v = txn.get(t, c, 0).unwrap();
                txn.update(t, c, 1, v * 10).unwrap();
                if repair {
                    txn.commit_with_repair(2, |tx, conflicts| {
                        assert_eq!(conflicts.len(), 1);
                        assert!(conflicts[0].keys.contains(&(t, c, 0)));
                        let fresh = tx.get(t, c, 0)?;
                        tx.update(t, c, 1, fresh * 10)
                    })
                } else {
                    txn.commit()
                }
            });
            ctl.await_parked("commit:latched", 1);
            // B commits an update of A's read set while A holds only its
            // install latch on row 1 (disjoint — no latch conflict).
            let mut b = db.begin(TxnKind::Oltp);
            b.update(t, c, 0, 5).unwrap();
            b.commit().unwrap();
            ctl.resume("commit:latched");
            a.join().unwrap()
        });
        drop(ctl);

        let stats = db.stats();
        if repair {
            result.expect("repair must convert the validation failure");
            assert_eq!(stats.repaired_commits, 1);
            assert_eq!(stats.repair_rounds, 1);
            assert_eq!(stats.aborted_validation, 0);
            assert_eq!(
                dump_col(&db, t, c, 8)[1],
                50,
                "the repaired write must reflect the re-read value"
            );
        } else {
            assert!(
                matches!(
                    result,
                    Err(DbError::Aborted(AbortReason::ValidationFailed { .. }))
                ),
                "without repair the same schedule must abort: {result:?}"
            );
            assert_eq!(stats.repaired_commits, 0);
            assert_eq!(stats.aborted_validation, 1);
            assert_eq!(dump_col(&db, t, c, 8)[1], 1, "A's write must not land");
        }
    }
}

/// The publication/visibility gap: `commit:pre-install` parks a committer
/// A *after* its commit record is published to the validation shards and
/// the shard locks are dropped, but *before* anything installs. Two
/// things must hold in that window:
///
/// 1. A's write is invisible — a fresh reader sees the old value (the
///    watermark, not record publication, gates visibility);
/// 2. A's record already validates against others — a transaction B that
///    read A's target row before the window closes must fail plain
///    serializable validation once A completes, even though B's read
///    never observed an installed effect of A.
///
/// Under a pipeline that published records late (after install) the same
/// schedule would let B commit — textbook lost read validation.
#[test]
fn published_but_uninstalled_commit_validates_but_stays_invisible() {
    for backend in backends() {
        let _g = gate_lock();
        let (db, t, c) = one_col_db(
            DbConfig::homogeneous_serializable().with_backend(backend),
            4,
        );

        let ctl = SchedCtl::install();
        ctl.pause("commit:pre-install");
        let result = std::thread::scope(|s| {
            let a = s.spawn(|| {
                let mut txn = db.begin(TxnKind::Oltp);
                txn.update(t, c, 0, 42).unwrap();
                txn.commit()
            });
            ctl.await_parked("commit:pre-install", 1);

            // (1) Published is not visible: A's record sits in the
            // validation shards, its install latch is still held, and a
            // latch-ignoring reader must get the pre-commit value.
            let mut r = db.begin(TxnKind::Oltp);
            assert_eq!(r.get(t, c, 0).unwrap(), 0, "uninstalled commit leaked");
            r.abort();

            // (2) B reads A's target inside the window...
            let mut b = db.begin(TxnKind::Oltp);
            assert_eq!(b.get(t, c, 0).unwrap(), 0);
            b.update(t, c, 1, 7).unwrap();

            ctl.release("commit:pre-install", 1);
            a.join().unwrap().expect("A must commit");

            // ...and must now fail validation against A's record.
            b.commit()
        });
        drop(ctl);

        assert!(
            matches!(
                result,
                Err(DbError::Aborted(AbortReason::ValidationFailed { .. }))
            ),
            "B read a row A overwrote and must abort, got {result:?}"
        );
        assert_eq!(dump_col(&db, t, c, 4), vec![42, 1, 2, 3]);
    }
}
