//! The vectorized scan kernels against their scalar oracle: property-based
//! bit-identity between the selection-vector path and the
//! `scalar_scan` row-at-a-time baseline (including NaN doubles and
//! dictionary edge codes, on both memory backends and both the snapshot
//! and the versioned processing paths), the zone-map dense-block fast
//! path, the fused count path's no-projection-reads guarantee, and
//! deterministic adaptive conjunct ordering.

use anker_core::{
    AnkerDb, BackendKind, ColumnDef, DbConfig, Dictionary, LogicalType, ScanStats, Schema, TableId,
    TxnKind, Value,
};
use proptest::prelude::*;
use std::sync::Arc;

/// An 11-entry dictionary for the `d` column (codes 0..=10).
fn dict() -> Arc<Dictionary> {
    Arc::new(Dictionary::with_values((0..11).map(|i| format!("v{i}"))))
}

fn backends() -> Vec<BackendKind> {
    let mut b = vec![BackendKind::Sim];
    if cfg!(target_os = "linux") {
        b.push(BackendKind::Os);
    }
    b
}

fn hetero(backend: BackendKind, scalar: bool) -> DbConfig {
    DbConfig::heterogeneous_serializable()
        .with_snapshot_every(1)
        .with_gc_interval(None)
        .with_backend(backend)
        .with_scalar_scan(scalar)
}

/// Words for the Double column: proptest draws indices into a palette
/// that includes every `f64` comparison edge the kernels must agree on.
fn double_palette(sel: u8, base: i64) -> f64 {
    match sel % 8 {
        0 => f64::NAN,
        1 => -0.0,
        2 => 0.0,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 => f64::MIN_POSITIVE,
        _ => base as f64 / 7.0,
    }
}

/// One table with an Int, a Double (NaN-bearing), and a Dict column,
/// filled identically into a scalar-path and a vectorized-path database.
fn twin_dbs(
    backend: BackendKind,
    rows: u32,
    data: &[(i64, u8, u8)],
) -> (AnkerDb, AnkerDb, TableId) {
    let mk = |scalar: bool| {
        let db = AnkerDb::new(hetero(backend, scalar));
        let t = db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("k", LogicalType::Int),
                ColumnDef::new("x", LogicalType::Double),
                ColumnDef::dict("d", dict()),
            ]),
            rows,
        );
        let cell = |i: u32| data[i as usize % data.len()];
        let (k, x, d) = (
            db.schema(t).col("k"),
            db.schema(t).col("x"),
            db.schema(t).col("d"),
        );
        db.fill_column(t, k, (0..rows).map(|i| Value::Int(cell(i).0).encode()))
            .unwrap();
        db.fill_column(
            t,
            x,
            (0..rows).map(|i| Value::Double(double_palette(cell(i).1, cell(i).0)).encode()),
        )
        .unwrap();
        db.fill_column(
            t,
            d,
            (0..rows).map(|i| Value::Dict(cell(i).2 as u32 % 11).encode()),
        )
        .unwrap();
        (db, t)
    };
    let (scalar_db, t) = mk(true);
    let (vector_db, t2) = mk(false);
    assert_eq!(t, t2);
    (scalar_db, vector_db, t)
}

/// Run the same three-conjunct scan on both databases through `run`
/// (count + row enumeration) and demand bit-identical results; returns
/// both stat records for path-shape assertions.
fn check_equivalence(
    backend: BackendKind,
    rows: u32,
    data: &[(i64, u8, u8)],
    lo: i64,
    hi: i64,
    xhi: i64,
    codes: Vec<u32>,
) -> (ScanStats, ScanStats) {
    let (scalar_db, vector_db, t) = twin_dbs(backend, rows, data);
    let run = |db: &AnkerDb| {
        let (k, x, d) = (
            db.schema(t).col("k"),
            db.schema(t).col("x"),
            db.schema(t).col("d"),
        );
        let mut txn = db.begin(TxnKind::Olap);
        let mut seen: Vec<(u32, Vec<u64>)> = Vec::new();
        let scan = txn
            .scan_on(t)
            .range_i64(k, lo.min(hi), lo.max(hi))
            .lt_f64(x, xhi as f64 / 3.0)
            .in_set(d, codes.clone())
            .project(&[x, k]);
        scan.for_each(|row, words| seen.push((row, words.to_vec())))
            .unwrap();
        let (count, cstats) = txn
            .scan_on(t)
            .range_i64(k, lo.min(hi), lo.max(hi))
            .lt_f64(x, xhi as f64 / 3.0)
            .in_set(d, codes.clone())
            .count()
            .unwrap();
        txn.commit().unwrap();
        (seen, count, cstats)
    };
    let (s_rows, s_count, s_stats) = run(&scalar_db);
    let (v_rows, v_count, v_stats) = run(&vector_db);
    assert_eq!(
        s_rows, v_rows,
        "selected rows/words diverged (backend {backend:?})"
    );
    assert_eq!(s_count, v_count, "counts diverged (backend {backend:?})");
    assert_eq!(s_count as usize, s_rows.len());
    // The ablation flag must actually route the paths apart.
    assert_eq!(s_stats.vector_blocks + s_stats.dense_blocks, 0);
    assert_eq!(v_stats.proj_blocks, 0, "count() read projection blocks");
    (s_stats, v_stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kernel and scalar paths select bit-identical rows — including NaN,
    /// ±0, ±inf doubles and out-of-dictionary codes — on the simulated
    /// backend.
    #[test]
    fn kernels_match_scalar_sim(
        rows in 1u32..6_000,
        data in proptest::collection::vec((-60i64..60, any::<u8>(), any::<u8>()), 1..50),
        lo in -60i64..60,
        hi in -60i64..60,
        xhi in -20i64..20,
        codes in proptest::collection::vec(0u32..12, 0..6),
    ) {
        check_equivalence(BackendKind::Sim, rows, &data, lo, hi, xhi, codes);
    }
}

#[cfg(target_os = "linux")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same property on the OS backend, where filters run over the
    /// zero-copy whole-column slices.
    #[test]
    fn kernels_match_scalar_os(
        rows in 1u32..6_000,
        data in proptest::collection::vec((-60i64..60, any::<u8>(), any::<u8>()), 1..50),
        lo in -60i64..60,
        hi in -60i64..60,
        xhi in -20i64..20,
        codes in proptest::collection::vec(0u32..12, 0..6),
    ) {
        check_equivalence(BackendKind::Os, rows, &data, lo, hi, xhi, codes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The versioned (homogeneous MVCC) block loop runs the same kernels
    /// over gathered blocks: scalar and vectorized databases in
    /// homogeneous mode agree row-for-row too.
    #[test]
    fn kernels_match_scalar_versioned_path(
        rows in 1u32..4_000,
        data in proptest::collection::vec((-60i64..60, any::<u8>(), any::<u8>()), 1..50),
        lo in -60i64..60,
        hi in -60i64..60,
    ) {
        let mk = |scalar: bool| {
            let db = AnkerDb::new(
                DbConfig::homogeneous_serializable()
                    .with_gc_interval(None)
                    .with_scalar_scan(scalar),
            );
            let t = db.create_table(
                "t",
                Schema::new(vec![
                    ColumnDef::new("k", LogicalType::Int),
                    ColumnDef::new("x", LogicalType::Double),
                ]),
                rows,
            );
            let cell = |i: u32| data[i as usize % data.len()];
            let k = db.schema(t).col("k");
            let x = db.schema(t).col("x");
            db.fill_column(t, k, (0..rows).map(|i| Value::Int(cell(i).0).encode()))
                .unwrap();
            db.fill_column(
                t,
                x,
                (0..rows).map(|i| Value::Double(double_palette(cell(i).1, cell(i).0)).encode()),
            )
            .unwrap();
            // A versioned overlay on top of the base fill, so the scan
            // gathers through version chains, not just the live arrays.
            let mut w = db.begin(TxnKind::Oltp);
            for r in (0..rows).step_by(97) {
                w.update_value(t, k, r, Value::Int(cell(r).0 ^ 1)).unwrap();
            }
            w.commit().unwrap();
            (db, t, k, x)
        };
        let run = |scalar: bool| {
            let (db, t, k, x) = mk(scalar);
            let mut txn = db.begin(TxnKind::Olap);
            let mut seen: Vec<(u32, Vec<u64>)> = Vec::new();
            txn.scan_on(t)
                .range_i64(k, lo.min(hi), lo.max(hi))
                .range_f64(x, -5.0, 5.0)
                .project(&[k, x])
                .for_each(|row, words| seen.push((row, words.to_vec())))
                .unwrap();
            let (count, stats) = txn
                .scan_on(t)
                .range_i64(k, lo.min(hi), lo.max(hi))
                .range_f64(x, -5.0, 5.0)
                .count()
                .unwrap();
            txn.commit().unwrap();
            (seen, count, stats)
        };
        let (s_rows, s_count, _) = run(true);
        let (v_rows, v_count, v_stats) = run(false);
        prop_assert_eq!(s_rows, v_rows, "versioned-path rows diverged");
        prop_assert_eq!(s_count, v_count);
        prop_assert_eq!(v_stats.proj_blocks, 0u64);
        // No zone maps on live data: blocks vectorize but never go dense.
        prop_assert_eq!(v_stats.dense_blocks, 0u64);
    }
}

/// Zone-map-proven all-match blocks take the dense fast path: no index
/// materialisation, and for count terminals not even a column read. A
/// clustered table where an interior range covers whole blocks exactly
/// exhibits all three block classes at once.
#[test]
fn dense_blocks_skip_index_materialisation() {
    for backend in backends() {
        let rows = 8 * 1024u32;
        let db = AnkerDb::new(hetero(backend, false));
        let t = db.create_table(
            "t",
            Schema::new(vec![ColumnDef::new("k", LogicalType::Int)]),
            rows,
        );
        let k = db.schema(t).col("k");
        // Clustered: block b holds exactly the value range [1024b, 1024b+1023].
        db.fill_column(t, k, (0..rows).map(|i| Value::Int(i as i64).encode()))
            .unwrap();
        let reader = db.snapshot_reader().unwrap();
        // Covers blocks 1..=5 fully, cuts into blocks 0 and 6, prunes 7.
        let (count, stats) = reader.scan(t).range_i64(k, 1000, 7000).count().unwrap();
        assert_eq!(count, 6001);
        assert_eq!(stats.blocks_skipped, 1, "block 7 prunes");
        assert_eq!(stats.dense_blocks, 5, "blocks 1..=5 are all-match");
        assert_eq!(stats.vector_blocks, 2, "blocks 0 and 6 hit the kernels");
        assert_eq!(stats.proj_blocks, 0);

        // The whole-table filter keeps every block dense.
        let (count, stats) = reader
            .scan(t)
            .range_i64(k, i64::MIN, i64::MAX)
            .count()
            .unwrap();
        assert_eq!(count, rows as u64);
        assert_eq!(stats.dense_blocks, 8);
        assert_eq!(stats.vector_blocks, 0);

        // Scalar ablation on the same data: same answer, no kernel blocks.
        let db_s = AnkerDb::new(hetero(backend, true));
        let t_s = db_s.create_table(
            "t",
            Schema::new(vec![ColumnDef::new("k", LogicalType::Int)]),
            rows,
        );
        let k_s = db_s.schema(t_s).col("k");
        db_s.fill_column(t_s, k_s, (0..rows).map(|i| Value::Int(i as i64).encode()))
            .unwrap();
        let reader_s = db_s.snapshot_reader().unwrap();
        let (count_s, stats_s) = reader_s
            .scan(t_s)
            .range_i64(k_s, 1000, 7000)
            .count()
            .unwrap();
        assert_eq!(count_s, 6001);
        assert_eq!(stats_s.vector_blocks + stats_s.dense_blocks, 0);
        assert_eq!(
            stats_s.blocks_skipped, 1,
            "zone-map pruning stays on in the ablation"
        );
    }
}

/// `count()` terminals never touch projection columns or invoke a row
/// callback — on any path — while row terminals with off-filter
/// projections do read them (`proj_blocks` is the witness on the
/// simulated backend, which has no zero-copy slices).
#[test]
fn count_reads_no_projection_blocks() {
    let rows = 4 * 1024u32;
    let db = AnkerDb::new(hetero(BackendKind::Sim, false));
    let t = db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::new("k", LogicalType::Int),
            ColumnDef::new("v", LogicalType::Int),
        ]),
        rows,
    );
    let k = db.schema(t).col("k");
    let v = db.schema(t).col("v");
    db.fill_column(t, k, (0..rows).map(|i| Value::Int(i as i64 % 100).encode()))
        .unwrap();
    db.fill_column(t, v, (0..rows).map(|i| Value::Int(i as i64).encode()))
        .unwrap();

    // Row terminal with an off-filter projection: projection blocks read.
    let reader = db.snapshot_reader().unwrap();
    let (_, fstats) = reader
        .scan(t)
        .range_i64(k, 0, 49)
        .project(&[v])
        .fold(0i64, |a, _, vals| a + vals[0].as_int(), |a, b| a + b)
        .unwrap();
    assert!(
        fstats.proj_blocks > 0,
        "row terminals must fetch off-filter projection blocks"
    );

    // Count terminal — even with a projection configured, and on every
    // path (reader, partitions, in-transaction snapshot, versioned).
    let (n, cstats) = reader
        .scan(t)
        .range_i64(k, 0, 49)
        .project(&[v])
        .count()
        .unwrap();
    assert_eq!(n, 2050);
    assert_eq!(cstats.proj_blocks, 0, "reader count fetched projections");

    for part in reader
        .scan(t)
        .range_i64(k, 0, 49)
        .into_partitions(3)
        .unwrap()
    {
        let (_, pstats) = part.count().unwrap();
        assert_eq!(pstats.proj_blocks, 0, "partition count fetched projections");
    }

    let mut txn = db.begin(TxnKind::Olap);
    let (n_txn, tstats) = txn
        .scan_on(t)
        .range_i64(k, 0, 49)
        .project(&[v])
        .count()
        .unwrap();
    assert_eq!(n_txn, 2050);
    assert_eq!(tstats.proj_blocks, 0, "snapshot count fetched projections");
    txn.commit().unwrap();

    let homo = AnkerDb::new(
        DbConfig::homogeneous_serializable()
            .with_gc_interval(None)
            .with_scalar_scan(false),
    );
    let t2 = homo.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::new("k", LogicalType::Int),
            ColumnDef::new("v", LogicalType::Int),
        ]),
        rows,
    );
    let k2 = homo.schema(t2).col("k");
    homo.fill_column(
        t2,
        k2,
        (0..rows).map(|i| Value::Int(i as i64 % 100).encode()),
    )
    .unwrap();
    let mut vtxn = homo.begin(TxnKind::Olap);
    let (n_v, vstats) = vtxn.scan_on(t2).range_i64(k2, 0, 49).count().unwrap();
    assert_eq!(n_v, 2050);
    assert_eq!(vstats.proj_blocks, 0, "versioned count fetched projections");
    vtxn.commit().unwrap();
}

/// Adaptive ordering promotes the observed-selective conjunct, records
/// per-filter selectivities, and never changes what is selected.
#[test]
fn adaptive_ordering_reorders_and_preserves_results() {
    for backend in backends() {
        let rows = 32 * 1024u32;
        let (scalar_db, vector_db, t) = {
            // Filter 0 (declared first) passes ~everything; filter 1 is
            // highly selective. Values alternate within each block so zone
            // maps can neither prune nor prove all-match.
            let data: Vec<(i64, u8, u8)> = (0..256)
                .map(|i| (i64::from(i % 2 == 0), 6, (i % 3) as u8))
                .collect();
            twin_dbs(backend, rows, &data)
        };
        let run = |db: &AnkerDb| {
            let k = db.schema(t).col("k");
            let d = db.schema(t).col("d");
            let reader = db.snapshot_reader().unwrap();
            // k ∈ {0, 1} everywhere → pass rate 1; d == 1 holds for a
            // third of the rows (and every block holds codes {0, 1, 2},
            // so zone maps neither prune nor prove all-match for it).
            // Declaration order is worst-case on purpose.
            reader
                .scan(t)
                .range_i64(k, 0, 1)
                .dict_eq(d, 1)
                .count()
                .unwrap()
        };
        let (s_count, s_stats) = run(&scalar_db);
        let (v_count, v_stats) = run(&vector_db);
        assert_eq!(s_count, v_count, "adaptive ordering changed the result");
        assert!(v_count > 0 && v_count < rows as u64);
        assert!(
            v_stats.sel_reorders > 0,
            "the selective conjunct was never promoted (backend {backend:?})"
        );
        assert_eq!(s_stats.sel_reorders, 0, "scalar path must not adapt");
        // Selectivity accounting: once promoted, the dict filter sees
        // every block in full (1024 rows in), and the wide range filter
        // only what survives it — visible as rows_in collapsing.
        assert!(v_stats.filter_sel[1].rows_in > 0);
        assert!(v_stats.filter_sel[1].rows_out < v_stats.filter_sel[1].rows_in);
        assert!(
            v_stats.filter_sel[0].rows_in < v_stats.filter_sel[1].rows_in,
            "promoted filter must shield the expensive one"
        );
    }
}

/// `ANKER_SCALAR_SCAN=1` reaches `DbConfig::default` (the builder knob is
/// covered by every twin test above).
#[test]
fn scalar_scan_env_default() {
    // Sub-processes are overkill; assert the documented default directly.
    let cfg = DbConfig::default();
    let env = std::env::var("ANKER_SCALAR_SCAN")
        .map(|v| v == "1")
        .unwrap_or(false);
    assert_eq!(cfg.scalar_scan, env);
}
