//! Integration tests of the detached [`SnapshotReader`] and the
//! morsel-parallel scan executor: the `Send + Sync` contract, epoch
//! pinning against snapshot refreshes and destination recycling, and
//! parallel-vs-sequential equivalence on both memory backends.
//!
//! The thread counts exercised are `{1, 2, 7}` plus whatever
//! `ANKER_SCAN_THREADS` names (CI runs a 4-thread and an 8-thread matrix
//! entry through that knob).

use anker_core::{
    AnkerDb, BackendKind, ColumnDef, DbConfig, DbError, LogicalType, ScanPartition, Schema,
    SnapshotReader, TxnKind, Value,
};
use proptest::prelude::*;

/// The obs registry is process-global, and
/// [`obs_counter_deltas_identical_across_thread_counts`] measures
/// registry *deltas* — so every test in this binary that scans or
/// commits takes this lock, keeping the measured windows free of
/// concurrent increments. (Other test files are other processes and
/// other registries.)
static OBS_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn obs_serial() -> std::sync::MutexGuard<'static, ()> {
    OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// `{1, 2, 7}` ∪ `ANKER_SCAN_THREADS` (the CI matrix knob).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 7];
    if let Ok(v) = std::env::var("ANKER_SCAN_THREADS") {
        let n: usize = v
            .parse()
            .expect("ANKER_SCAN_THREADS must be a thread count");
        if !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

fn backends() -> Vec<BackendKind> {
    let mut b = vec![BackendKind::Sim];
    if cfg!(target_os = "linux") {
        b.push(BackendKind::Os);
    }
    b
}

fn hetero(backend: BackendKind) -> DbConfig {
    DbConfig::heterogeneous_serializable()
        .with_snapshot_every(1)
        .with_gc_interval(None)
        .with_backend(backend)
}

/// `SnapshotReader` and `ScanPartition` are shareable across threads by
/// contract — enforced at compile time.
#[test]
fn reader_and_partitions_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SnapshotReader>();
    assert_send_sync::<ScanPartition>();
}

#[test]
fn homogeneous_mode_refuses_detached_readers() {
    let db = AnkerDb::new(DbConfig::homogeneous_serializable().with_gc_interval(None));
    assert!(matches!(
        db.snapshot_reader(),
        Err(DbError::SnapshotsDisabled)
    ));
}

/// A reader pins its epoch: commits after the reader opened are invisible
/// to it, a fresh reader sees them, and both can be used from other
/// threads.
#[test]
fn reader_pins_a_consistent_epoch_across_commits() {
    let _serial = obs_serial();
    for backend in backends() {
        let db = AnkerDb::new(hetero(backend));
        let t = db.create_table(
            "t",
            Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]),
            4096,
        );
        let v = db.schema(t).col("v");
        db.fill_column(t, v, (0..4096).map(|_| Value::Int(1).encode()))
            .unwrap();

        let old = db.snapshot_reader().unwrap();
        let (sum_before, _) = old
            .scan(t)
            .project(&[v])
            .fold(0i64, |a, _, vals| a + vals[0].as_int(), |a, b| a + b)
            .unwrap();
        assert_eq!(sum_before, 4096);

        let mut w = db.begin(TxnKind::Oltp);
        w.update_value(t, v, 7, Value::Int(100)).unwrap();
        w.commit().unwrap();

        // The pinned reader — even used from another thread — still sees
        // the old value; a fresh reader sees the commit.
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(old.get_value(t, v, 7).unwrap(), Value::Int(1));
            });
        });
        let fresh = db.snapshot_reader().unwrap();
        assert_eq!(fresh.get_value(t, v, 7).unwrap(), Value::Int(100));
        assert!(fresh.epoch_ts() > old.epoch_ts());
    }
}

/// The PR-3 horizon race, now from the detached-reader side: a
/// `SnapshotReader` held across snapshot refreshes **and** a
/// `SpareAreas::take` destination-recycling cycle must keep reading its
/// original epoch bit-for-bit. Before the epoch-pinning refcount, the
/// reader's areas could retire into the recycling pool and be rewired —
/// in place — onto another column's data while the reader still scanned
/// them.
#[test]
fn reader_survives_snapshot_refresh_and_recycling_cycles() {
    let _serial = obs_serial();
    for backend in backends() {
        let rows = 2048u32;
        let mut cfg = hetero(backend);
        cfg.recycle_snapshot_areas = true;
        let db = AnkerDb::new(cfg);
        let t = db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", LogicalType::Int),
                ColumnDef::new("b", LogicalType::Int),
            ]),
            rows,
        );
        let a = db.schema(t).col("a");
        let b = db.schema(t).col("b");
        db.fill_column(t, a, (0..rows).map(|i| Value::Int(i as i64).encode()))
            .unwrap();
        db.fill_column(t, b, (0..rows).map(|i| Value::Int(-(i as i64)).encode()))
            .unwrap();

        // A full snapshot generation cycle *before* the reader exists, so
        // the recycling pool holds areas whose swap timestamp lies below
        // the reader's horizon (those are legitimately recyclable).
        let mut o = db.begin(TxnKind::Olap);
        o.get(t, a, 0).unwrap();
        o.get(t, b, 0).unwrap();
        o.commit().unwrap();
        let mut w = db.begin(TxnKind::Oltp);
        w.update_value(t, a, 0, Value::Int(7_000)).unwrap();
        w.commit().unwrap();

        // The reader under test: pins its epoch, materialises both
        // columns, and records the expected snapshot content.
        let reader = db.snapshot_reader().unwrap();
        let expect_a: Vec<u64> = (0..rows).map(|r| reader.get(t, a, r).unwrap()).collect();
        let expect_b: Vec<u64> = (0..rows).map(|r| reader.get(t, b, r).unwrap()).collect();

        // Churn: writes + fresh OLAP transactions force snapshot
        // refreshes; each refresh parks the previous frozen areas, and
        // each materialisation asks the recycler for a destination —
        // `SpareAreas::take` cycles while the reader lives.
        for round in 0..8i64 {
            let mut w = db.begin(TxnKind::Oltp);
            w.update_value(t, a, 3, Value::Int(10_000 + round)).unwrap();
            w.update_value(t, b, 4, Value::Int(20_000 + round)).unwrap();
            w.commit().unwrap();
            let mut o = db.begin(TxnKind::Olap);
            o.get(t, a, 3).unwrap();
            o.get(t, b, 4).unwrap();
            o.commit().unwrap();
        }

        // Bit-for-bit: single-row reads and a parallel scan both observe
        // the original epoch.
        for r in 0..rows {
            assert_eq!(reader.get(t, a, r).unwrap(), expect_a[r as usize]);
            assert_eq!(reader.get(t, b, r).unwrap(), expect_b[r as usize]);
        }
        let (sum, _) = reader
            .scan(t)
            .project(&[a, b])
            .parallel(4)
            .fold(
                0i64,
                |acc, _, vals| acc + vals[0].as_int() + vals[1].as_int(),
                |x, y| x + y,
            )
            .unwrap();
        let expect_sum: i64 = expect_a
            .iter()
            .chain(&expect_b)
            .map(|&w| Value::decode(w, LogicalType::Int).as_int())
            .sum();
        assert_eq!(sum, expect_sum, "parallel scan diverged from the epoch");
        drop(reader);
    }
}

/// Partitions cover the table disjointly, can be driven from caller
/// threads, and agree with the sequential scan.
#[test]
fn partitions_cover_all_rows_disjointly() {
    let _serial = obs_serial();
    for backend in backends() {
        let rows = 10_000u32;
        let db = AnkerDb::new(hetero(backend));
        let t = db.create_table(
            "t",
            Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]),
            rows,
        );
        let v = db.schema(t).col("v");
        db.fill_column(t, v, (0..rows).map(|i| Value::Int(i as i64).encode()))
            .unwrap();
        let reader = db.snapshot_reader().unwrap();
        let parts = reader
            .scan(t)
            .range_i64(v, 100, 9_000)
            .into_partitions(3)
            .unwrap();
        assert_eq!(parts.len(), 3);
        let mut covered = 0u64;
        for (p, q) in parts.iter().zip(parts.iter().skip(1)) {
            assert_eq!(p.rows().end, q.rows().start, "partitions must abut");
        }
        assert_eq!(parts[0].rows().start, 0);
        assert_eq!(parts.last().unwrap().rows().end, rows);
        // Drive each partition on its own thread; the partition keeps the
        // epoch pinned even after the reader is gone.
        drop(reader);
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .map(|p| s.spawn(move || p.count().unwrap().0))
                .collect();
            for h in handles {
                covered += h.join().unwrap();
            }
        });
        assert_eq!(covered, 9_000 - 100 + 1);
    }
}

/// Build a database with one Int and one Double column from proptest-drawn
/// words, take a reader, and compare `parallel(n)` against the sequential
/// in-transaction scan for count, fold, and the scan counters.
fn check_parallel_matches_sequential(
    backend: BackendKind,
    rows: u32,
    data: &[(i64, i64)],
    lo: i64,
    hi: i64,
) {
    let _serial = obs_serial();
    let db = AnkerDb::new(hetero(backend));
    let t = db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::new("k", LogicalType::Int),
            ColumnDef::new("x", LogicalType::Double),
        ]),
        rows,
    );
    let k = db.schema(t).col("k");
    let x = db.schema(t).col("x");
    db.fill_column(
        t,
        k,
        (0..rows).map(|i| Value::Int(data[i as usize % data.len()].0).encode()),
    )
    .unwrap();
    db.fill_column(
        t,
        x,
        (0..rows).map(|i| Value::Double(data[i as usize % data.len()].1 as f64 / 7.0).encode()),
    )
    .unwrap();
    let (lo, hi) = (lo.min(hi), lo.max(hi));

    // Sequential reference: the in-transaction snapshot scan.
    let mut txn = db.begin(TxnKind::Olap);
    let (seq_sum, seq_stats) = txn
        .scan_on(t)
        .range_i64(k, lo, hi)
        .project(&[k])
        .fold(0i64, |a, _, vals| a.wrapping_add(vals[0].as_int()))
        .unwrap();
    let (seq_count, _) = txn.scan_on(t).range_i64(k, lo, hi).count().unwrap();
    txn.commit().unwrap();

    let reader = db.snapshot_reader().unwrap();
    for n in thread_counts() {
        let (count, cstats) = reader
            .scan(t)
            .range_i64(k, lo, hi)
            .parallel(n)
            .count()
            .unwrap();
        assert_eq!(count, seq_count, "count diverged at {n} threads");
        let (sum, fstats) = reader
            .scan(t)
            .range_i64(k, lo, hi)
            .project(&[k])
            .parallel(n)
            .fold(
                0i64,
                |a, _, vals| a.wrapping_add(vals[0].as_int()),
                i64::wrapping_add,
            )
            .unwrap();
        assert_eq!(sum, seq_sum, "fold diverged at {n} threads");
        // Row-count bookkeeping must agree with the sequential path:
        // same blocks pruned, same rows read, same rows filtered out.
        for (stats, what) in [(cstats, "count"), (fstats, "fold")] {
            assert_eq!(
                stats.blocks_skipped, seq_stats.blocks_skipped,
                "{what} pruning diverged at {n} threads"
            );
            assert_eq!(
                stats.tight_rows, seq_stats.tight_rows,
                "{what} rows read diverged at {n} threads"
            );
            assert_eq!(
                stats.rows_filtered, seq_stats.rows_filtered,
                "{what} rows filtered diverged at {n} threads"
            );
            assert!(stats.threads >= 1 && stats.threads <= n as u64);
            assert!(stats.morsels >= 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random data and predicates, `parallel(n)` fold/count results
    /// and the total `ScanStats` row counts are identical to the
    /// sequential path for n ∈ {1, 2, 7} — simulated backend.
    #[test]
    fn parallel_matches_sequential_sim(
        rows in 1u32..9_000,
        data in proptest::collection::vec((-50i64..50, -70i64..70), 1..40),
        lo in -50i64..50,
        hi in -50i64..50,
    ) {
        check_parallel_matches_sequential(BackendKind::Sim, rows, &data, lo, hi);
    }
}

#[cfg(target_os = "linux")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The same property on the real-OS mmap backend (zero-copy slice
    /// scan path).
    #[test]
    fn parallel_matches_sequential_os(
        rows in 1u32..9_000,
        data in proptest::collection::vec((-50i64..50, -70i64..70), 1..40),
        lo in -50i64..50,
        hi in -50i64..50,
    ) {
        check_parallel_matches_sequential(BackendKind::Os, rows, &data, lo, hi);
    }
}

/// Asking for more partitions than the table has blocks yields empty
/// trailing partitions, which must scan as empty — not crash on the
/// block-alignment invariant.
#[test]
fn surplus_partitions_are_empty_not_panics() {
    let _serial = obs_serial();
    let rows = 1_500u32; // 2 blocks, not block-aligned
    let db = AnkerDb::new(hetero(BackendKind::Sim));
    let t = db.create_table(
        "t",
        Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]),
        rows,
    );
    let v = db.schema(t).col("v");
    db.fill_column(t, v, (0..rows).map(|i| Value::Int(i as i64).encode()))
        .unwrap();
    let reader = db.snapshot_reader().unwrap();
    let parts = reader.scan(t).into_partitions(4).unwrap();
    assert_eq!(parts.len(), 4);
    let mut covered = 0u64;
    for p in &parts {
        covered += p.count().unwrap().0;
    }
    assert_eq!(covered, rows as u64);
    assert!(parts[2].rows().is_empty() && parts[3].rows().is_empty());
}

/// `DbConfig::os_huge_pages` must reach the OS backend and fire
/// `madvise(MADV_HUGEPAGE)` on every wired view — the `OsStats` counter
/// proves it — and scans must issue their `MADV_SEQUENTIAL` hints.
#[cfg(target_os = "linux")]
#[test]
fn huge_page_and_sequential_hints_surface_in_os_stats() {
    let _serial = obs_serial();
    let db = AnkerDb::new(hetero(BackendKind::Os).with_os_huge_pages(true));
    let t = db.create_table(
        "t",
        Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]),
        4096,
    );
    let v = db.schema(t).col("v");
    db.fill_column(t, v, (0..4096).map(|i| Value::Int(i).encode()))
        .unwrap();
    let after_load = db.os_stats().expect("OS backend surfaces stats");
    assert!(
        after_load.huge_page_advices > 0,
        "table allocation must advise MADV_HUGEPAGE"
    );
    let reader = db.snapshot_reader().unwrap();
    let (count, _) = reader
        .scan(t)
        .range_i64(v, 0, 4095)
        .parallel(2)
        .count()
        .unwrap();
    assert_eq!(count, 4096);
    let after_scan = db.os_stats().unwrap();
    assert!(
        after_scan.sequential_advices > 0,
        "the scan must advise MADV_SEQUENTIAL on the frozen area"
    );
    assert!(
        after_scan.huge_page_advices > after_load.huge_page_advices,
        "the vm_snapshot rewire must re-advise the fresh view"
    );
    // The sim backend surfaces no OS stats.
    let sim = AnkerDb::new(hetero(BackendKind::Sim));
    assert!(sim.os_stats().is_none());
}

/// Adaptive conjunct ordering is deterministic by construction: its
/// state resets at every morsel start and morsel boundaries depend only
/// on table size, so not just the fold result (a non-associative `f64`
/// sum, compared bit-for-bit) but **every** kernel counter —
/// vector/dense blocks, reorders, per-filter selectivities, projection
/// reads — must be identical for every thread count.
#[test]
fn kernel_counters_identical_across_thread_counts() {
    let _serial = obs_serial();
    for backend in backends() {
        let rows = 40_000u32;
        let db = AnkerDb::new(hetero(backend));
        let t = db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("k", LogicalType::Int),
                ColumnDef::new("x", LogicalType::Double),
            ]),
            rows,
        );
        let k = db.schema(t).col("k");
        let x = db.schema(t).col("x");
        db.fill_column(t, k, (0..rows).map(|i| Value::Int(i as i64 % 7).encode()))
            .unwrap();
        db.fill_column(
            t,
            x,
            (0..rows).map(|i| Value::Double((i as f64).cos() * 50.0).encode()),
        )
        .unwrap();
        let reader = db.snapshot_reader().unwrap();
        // Declared wide-first (x < 45 passes ~90%, k == 0 passes ~14%) so
        // the adaptive order has something to fix in every morsel.
        let run = |n: usize| {
            let (sum, fstats) = reader
                .scan(t)
                .lt_f64(x, 45.0)
                .range_i64(k, 0, 0)
                .project(&[x])
                .parallel(n)
                .fold(0.0f64, |a, _, vals| a + vals[0].as_double(), |a, b| a + b)
                .unwrap();
            let (count, cstats) = reader
                .scan(t)
                .lt_f64(x, 45.0)
                .range_i64(k, 0, 0)
                .parallel(n)
                .count()
                .unwrap();
            (sum, count, fstats, cstats)
        };
        let (ref_sum, ref_count, ref_fstats, ref_cstats) = run(1);
        assert!(
            ref_fstats.sel_reorders > 0,
            "the selective conjunct must get promoted (backend {backend:?})"
        );
        assert!(ref_fstats.vector_blocks > 0);
        for n in thread_counts() {
            let (sum, count, mut fstats, mut cstats) = run(n);
            assert_eq!(
                sum.to_bits(),
                ref_sum.to_bits(),
                "f64 fold not bit-identical at {n} threads (backend {backend:?})"
            );
            assert_eq!(count, ref_count, "count diverged at {n} threads");
            // Everything except the fan-out width itself must be equal.
            fstats.threads = ref_fstats.threads;
            cstats.threads = ref_cstats.threads;
            assert_eq!(
                fstats, ref_fstats,
                "fold kernel counters diverged at {n} threads (backend {backend:?})"
            );
            assert_eq!(
                cstats, ref_cstats,
                "count kernel counters diverged at {n} threads (backend {backend:?})"
            );
        }
    }
}

/// The obs scan counters are fed from the same deterministic
/// [`ScanStats`](anker_core::ScanStats) that
/// [`kernel_counters_identical_across_thread_counts`] proves
/// thread-count-independent (morsel boundaries are fixed, not
/// work-stealing) — so the registry *delta* an identical scan leaves
/// behind must be bit-identical at every thread count too.
/// (Under `obs-off` the counters compile to no-ops, so the deltas are
/// intentionally all-zero and the test is compiled out.)
#[test]
#[cfg(not(feature = "obs-off"))]
fn obs_counter_deltas_identical_across_thread_counts() {
    let _serial = obs_serial();
    use anker_core::obs;
    const SCAN_COUNTERS: [&str; 8] = [
        "scan_morsels_total",
        "scan_tight_rows_total",
        "scan_checked_rows_total",
        "scan_chain_walks_total",
        "scan_blocks_skipped_total",
        "scan_rows_filtered_total",
        "scan_vector_blocks_total",
        "scan_dense_blocks_total",
    ];
    for backend in backends() {
        let rows = 30_000u32;
        let db = AnkerDb::new(hetero(backend));
        let t = db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("k", LogicalType::Int),
                ColumnDef::new("x", LogicalType::Double),
            ]),
            rows,
        );
        let k = db.schema(t).col("k");
        let x = db.schema(t).col("x");
        db.fill_column(t, k, (0..rows).map(|i| Value::Int(i as i64 % 5).encode()))
            .unwrap();
        db.fill_column(
            t,
            x,
            (0..rows).map(|i| Value::Double((i as f64).sin() * 60.0).encode()),
        )
        .unwrap();
        let reader = db.snapshot_reader().unwrap();
        let run = |n: usize| -> (f64, Vec<u64>, u64) {
            let before = db.metrics();
            let (sum, _) = reader
                .scan(t)
                .lt_f64(x, 30.0)
                .range_i64(k, 0, 1)
                .project(&[x])
                .parallel(n)
                .fold(0.0f64, |a, _, vals| a + vals[0].as_double(), |a, b| a + b)
                .unwrap();
            let after = db.metrics();
            let deltas = SCAN_COUNTERS
                .iter()
                .map(|name| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0))
                .collect();
            let morsel_spans = span_count(&after) - span_count(&before);
            (sum, deltas, morsel_spans)
        };
        let (ref_sum, ref_deltas, ref_spans) = run(1);
        assert!(
            ref_deltas.iter().sum::<u64>() > 0,
            "the reference scan must move the counters (backend {backend:?})"
        );
        // The tracer journals one span per morsel, so the histogram
        // count tracks scan_morsels_total exactly.
        assert_eq!(ref_spans, ref_deltas[0], "one scan_morsel span per morsel");
        for n in thread_counts() {
            let (sum, deltas, spans) = run(n);
            assert_eq!(sum.to_bits(), ref_sum.to_bits());
            assert_eq!(
                deltas, ref_deltas,
                "obs scan-counter deltas diverged at {n} threads (backend {backend:?})"
            );
            assert_eq!(
                spans, ref_spans,
                "scan_morsel_ns span count diverged at {n} threads (backend {backend:?})"
            );
        }
    }

    fn span_count(m: &obs::MetricsSnapshot) -> u64 {
        m.histogram("scan_morsel_ns").map_or(0, |h| h.count())
    }
}

/// Double-typed predicates and projections through the parallel path
/// (`rank` comparisons + zero-copy slices) also agree with the
/// sequential reference.
#[test]
fn parallel_double_predicates_match() {
    let _serial = obs_serial();
    for backend in backends() {
        let rows = 5_000u32;
        let db = AnkerDb::new(hetero(backend));
        let t = db.create_table(
            "t",
            Schema::new(vec![ColumnDef::new("x", LogicalType::Double)]),
            rows,
        );
        let x = db.schema(t).col("x");
        db.fill_column(
            t,
            x,
            (0..rows).map(|i| Value::Double((i as f64).sin() * 100.0).encode()),
        )
        .unwrap();
        let mut txn = db.begin(TxnKind::Olap);
        let (seq, _) = txn.scan_on(t).lt_f64(x, 25.0).count().unwrap();
        txn.commit().unwrap();
        let reader = db.snapshot_reader().unwrap();
        for n in thread_counts() {
            let (par, _) = reader.scan(t).lt_f64(x, 25.0).parallel(n).count().unwrap();
            assert_eq!(par, seq, "lt_f64 count diverged at {n} threads");
        }
    }
}
