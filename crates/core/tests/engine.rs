//! Engine-level tests of AnKerDB: visibility, conflicts, serializability,
//! heterogeneous snapshots, garbage collection, and cross-thread
//! consistency invariants.

use anker_core::{
    AbortReason, AnkerDb, ColumnDef, DbConfig, DbError, LogicalType, Schema, TableId, TxnKind,
};
use anker_storage::ColumnId;

fn small_db(config: DbConfig) -> (AnkerDb, TableId, ColumnId, ColumnId) {
    let db = AnkerDb::new(config.with_gc_interval(None));
    let t = db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::new("a", LogicalType::Int),
            ColumnDef::new("b", LogicalType::Int),
        ]),
        4096,
    );
    let schema = db.schema(t);
    let a = schema.col("a");
    let b = schema.col("b");
    db.fill_column(t, a, 0..4096).unwrap();
    db.fill_column(t, b, (0..4096).map(|i| i * 2)).unwrap();
    (db, t, a, b)
}

#[test]
fn commit_then_read() {
    let (db, t, a, _) = small_db(DbConfig::heterogeneous_serializable());
    let mut w = db.begin(TxnKind::Oltp);
    w.update(t, a, 10, 777).unwrap();
    // Own write visible before commit; shared state untouched.
    assert_eq!(w.get(t, a, 10).unwrap(), 777);
    let mut other = db.begin(TxnKind::Oltp);
    assert_eq!(other.get(t, a, 10).unwrap(), 10);
    other.abort();
    w.commit().unwrap();
    let mut r = db.begin(TxnKind::Oltp);
    assert_eq!(r.get(t, a, 10).unwrap(), 777);
    r.commit().unwrap();
}

#[test]
fn snapshot_isolation_reads_are_stable() {
    let (db, t, a, _) = small_db(DbConfig::homogeneous_snapshot_isolation());
    let mut reader = db.begin(TxnKind::Oltp);
    assert_eq!(reader.get(t, a, 5).unwrap(), 5);
    // A younger transaction commits an update.
    let mut w = db.begin(TxnKind::Oltp);
    w.update(t, a, 5, 500).unwrap();
    w.commit().unwrap();
    // The old reader keeps seeing its snapshot (version chain traversal).
    assert_eq!(reader.get(t, a, 5).unwrap(), 5);
    reader.commit().unwrap();
    // A fresh reader sees the update.
    let mut r2 = db.begin(TxnKind::Oltp);
    assert_eq!(r2.get(t, a, 5).unwrap(), 500);
    r2.commit().unwrap();
}

#[test]
fn write_write_conflict_aborts_second_writer() {
    let (db, t, a, _) = small_db(DbConfig::homogeneous_snapshot_isolation());
    let mut t1 = db.begin(TxnKind::Oltp);
    let mut t2 = db.begin(TxnKind::Oltp);
    t1.update(t, a, 0, 1).unwrap();
    t2.update(t, a, 0, 2).unwrap();
    t1.commit().unwrap();
    let err = t2.commit().unwrap_err();
    assert_eq!(err, DbError::Aborted(AbortReason::WriteWriteConflict));
    assert_eq!(db.stats().aborted_ww, 1);
}

#[test]
fn aborts_discard_local_writes() {
    let (db, t, a, _) = small_db(DbConfig::heterogeneous_serializable());
    let mut w = db.begin(TxnKind::Oltp);
    w.update(t, a, 3, 999).unwrap();
    w.abort();
    let mut r = db.begin(TxnKind::Oltp);
    assert_eq!(r.get(t, a, 3).unwrap(), 3);
    r.commit().unwrap();
    // Dropping without commit aborts too.
    {
        let mut w = db.begin(TxnKind::Oltp);
        w.update(t, a, 3, 111).unwrap();
    }
    let mut r = db.begin(TxnKind::Oltp);
    assert_eq!(r.get(t, a, 3).unwrap(), 3);
    r.commit().unwrap();
}

#[test]
fn olap_transactions_cannot_write() {
    let (db, t, a, _) = small_db(DbConfig::heterogeneous_serializable());
    let mut olap = db.begin(TxnKind::Olap);
    assert_eq!(
        olap.update(t, a, 0, 1).unwrap_err(),
        DbError::ReadOnlyTransaction
    );
    olap.commit().unwrap();
}

/// Write skew: T1 reads a and writes b; T2 reads b and writes a. Under SI
/// both commit (anomaly); under full serializability one must abort.
fn run_write_skew(config: DbConfig) -> (Result<u64, DbError>, Result<u64, DbError>) {
    let (db, t, a, b) = small_db(config);
    let mut t1 = db.begin(TxnKind::Oltp);
    let mut t2 = db.begin(TxnKind::Oltp);
    let ra = t1.get(t, a, 0).unwrap();
    t1.update(t, b, 0, ra + 100).unwrap();
    let rb = t2.get(t, b, 0).unwrap();
    t2.update(t, a, 0, rb + 100).unwrap();
    (t1.commit(), t2.commit())
}

#[test]
fn write_skew_allowed_under_snapshot_isolation() {
    let (r1, r2) = run_write_skew(DbConfig::homogeneous_snapshot_isolation());
    assert!(
        r1.is_ok() && r2.is_ok(),
        "SI permits write skew: {r1:?} {r2:?}"
    );
}

#[test]
fn write_skew_prevented_under_serializability() {
    let (r1, r2) = run_write_skew(DbConfig::homogeneous_serializable());
    assert!(r1.is_ok(), "first committer wins: {r1:?}");
    match r2 {
        Err(DbError::Aborted(AbortReason::ValidationFailed { .. })) => {}
        other => panic!("expected validation abort, got {other:?}"),
    }
}

#[test]
fn range_predicate_validation() {
    let (db, t, a, b) = small_db(DbConfig::homogeneous_serializable());
    // T1 scans rows with a in [0, 50] and writes a summary into b. The
    // pushed-down predicate registers the precision lock automatically.
    let mut t1 = db.begin(TxnKind::Oltp);
    let mut sum = 0u64;
    t1.scan_on(t)
        .range_i64(a, 0, 50)
        .project(&[a])
        .for_each(|_, v| sum += v[0])
        .unwrap();
    // Concurrently, T2 moves a value into that range and commits.
    let mut t2 = db.begin(TxnKind::Oltp);
    t2.update(t, a, 3000, 25).unwrap();
    t2.commit().unwrap();
    // T1's result is stale -> must abort at commit.
    t1.update(t, b, 0, sum).unwrap();
    match t1.commit() {
        Err(DbError::Aborted(AbortReason::ValidationFailed { .. })) => {}
        other => panic!("expected validation abort, got {other:?}"),
    }
    assert_eq!(db.stats().aborted_validation, 1);
}

#[test]
fn unrelated_writes_pass_validation() {
    let (db, t, a, b) = small_db(DbConfig::homogeneous_serializable());
    let mut t1 = db.begin(TxnKind::Oltp);
    t1.scan_on(t)
        .range_i64(a, 0, 50)
        .for_each(|_, _| {})
        .unwrap();
    t1.update(t, b, 1, 1).unwrap();
    // T2 writes far outside T1's predicate range: the auto-registered
    // precision lock is the *range*, not the whole column, so T1 commits.
    let mut t2 = db.begin(TxnKind::Oltp);
    t2.update(t, a, 3000, 999_999).unwrap();
    t2.commit().unwrap();
    t1.commit().expect("no predicate intersection, must commit");
}

#[test]
fn builder_predicate_catches_write_into_scanned_range() {
    // The manual `log_range`/`log_dict_eq` shims are gone; the builder's
    // auto-registered precision lock must provide the same protection.
    let (db, t, a, b) = small_db(DbConfig::homogeneous_serializable());
    let mut t1 = db.begin(TxnKind::Oltp);
    t1.scan_on(t)
        .range_i64(a, 0, 50)
        .for_each(|_, _| {})
        .unwrap();
    let mut t2 = db.begin(TxnKind::Oltp);
    // T2 moves a row's value *into* T1's scanned range: T1's read is no
    // longer repeatable and its commit must fail validation.
    t2.update(t, a, 3000, 25).unwrap();
    t2.commit().unwrap();
    t1.update(t, b, 0, 1).unwrap();
    match t1.commit() {
        Err(DbError::Aborted(AbortReason::ValidationFailed { .. })) => {}
        other => panic!("expected validation abort, got {other:?}"),
    }
}

#[test]
fn hetero_olap_runs_on_snapshot_epoch() {
    let (db, t, a, _) = small_db(DbConfig::heterogeneous_serializable().with_snapshot_every(5));
    // First OLAP arrival creates the first epoch (Figure 1, step 4).
    let sum_col = |olap: &mut anker_core::Txn| {
        let mut sum = 0u64;
        olap.scan_on(t)
            .project(&[a])
            .for_each(|_, v| sum += v[0])
            .unwrap();
        sum
    };
    let mut olap = db.begin(TxnKind::Olap);
    let sum0 = sum_col(&mut olap);
    assert_eq!(sum0, (0..4096u64).sum::<u64>());
    // Concurrent OLTP updates do not disturb the running OLAP txn.
    for i in 0..20 {
        let mut w = db.begin(TxnKind::Oltp);
        w.update(t, a, i, 0).unwrap();
        w.commit().unwrap();
    }
    let sum1 = sum_col(&mut olap);
    assert_eq!(sum1, sum0, "snapshot must be frozen for the OLAP txn");
    olap.commit().unwrap();
    // A new OLAP txn sees a fresher epoch (triggered every 5 commits).
    let mut olap2 = db.begin(TxnKind::Olap);
    let sum2 = sum_col(&mut olap2);
    olap2.commit().unwrap();
    assert!(sum2 < sum0, "later epoch must reflect the zeroed rows");
    assert!(db.stats().epochs_triggered >= 2);
}

#[test]
fn olap_scan_is_tight_on_snapshots() {
    let (db, t, a, _) = small_db(DbConfig::heterogeneous_serializable().with_snapshot_every(1));
    // Build up versions.
    for i in 0..100 {
        let mut w = db.begin(TxnKind::Oltp);
        w.update(t, a, i % 10, i as u64).unwrap();
        w.commit().unwrap();
    }
    let mut olap = db.begin(TxnKind::Olap);
    let stats = olap.scan_on(t).project(&[a]).for_each(|_, _| {}).unwrap();
    olap.commit().unwrap();
    assert_eq!(stats.checked_rows, 0, "snapshot scans never check versions");
    assert_eq!(stats.chain_walks, 0);
    assert_eq!(stats.tight_rows, 4096);
}

#[test]
fn homogeneous_olap_pays_version_checks() {
    let (db, t, a, _) = small_db(DbConfig::homogeneous_serializable());
    // An old reader starts before updates.
    let mut olap = db.begin(TxnKind::Olap);
    for i in 0..100u32 {
        let mut w = db.begin(TxnKind::Oltp);
        w.update(t, a, i * 40, 0).unwrap();
        w.commit().unwrap();
    }
    let mut n = 0u64;
    let stats = olap
        .scan_on(t)
        .project(&[a])
        .for_each(|_, _| n += 1)
        .unwrap();
    olap.commit().unwrap();
    assert_eq!(n, 4096);
    assert!(
        stats.chain_walks >= 100,
        "old reader must traverse chains: {stats:?}"
    );
}

#[test]
fn multi_column_snapshot_consistency() {
    // Two columns are updated together; an OLAP txn must never observe a
    // half-applied pair, even though columns materialise lazily at
    // different moments.
    let (db, t, a, b) = small_db(DbConfig::heterogeneous_serializable().with_snapshot_every(3));
    for round in 1..=50u64 {
        let mut w = db.begin(TxnKind::Oltp);
        // Invariant: b = 2*a for row 7.
        w.update(t, a, 7, round).unwrap();
        w.update(t, b, 7, round * 2).unwrap();
        w.commit().unwrap();
        let mut olap = db.begin(TxnKind::Olap);
        let va = olap.get(t, a, 7).unwrap();
        let vb = olap.get(t, b, 7).unwrap();
        olap.commit().unwrap();
        assert_eq!(vb, va * 2, "epoch exposed inconsistent column pair");
    }
}

#[test]
fn lazy_materialisation_only_touched_columns() {
    let db = AnkerDb::new(
        DbConfig::heterogeneous_serializable()
            .with_snapshot_every(1)
            .with_gc_interval(None),
    );
    let t = db.create_table(
        "wide",
        Schema::new(
            (0..8)
                .map(|i| ColumnDef::new(format!("c{i}"), LogicalType::Int))
                .collect(),
        ),
        1024,
    );
    let c0 = db.schema(t).col("c0");
    // Commits touch only c0; triggers happen every commit.
    for i in 0..10 {
        let mut w = db.begin(TxnKind::Oltp);
        w.update(t, c0, i, 1).unwrap();
        w.commit().unwrap();
    }
    let s = db.stats();
    assert!(
        s.columns_materialized <= 12,
        "only the written column may materialise, got {}",
        s.columns_materialized
    );
}

#[test]
fn epochs_are_retired_and_memory_reclaimed() {
    let (db, t, a, _) = small_db(DbConfig::heterogeneous_serializable().with_snapshot_every(1));
    for i in 0..50 {
        let mut w = db.begin(TxnKind::Oltp);
        w.update(t, a, i, 1).unwrap();
        w.commit().unwrap();
        // Touch each epoch so snapshots materialise.
        let mut olap = db.begin(TxnKind::Olap);
        let _ = olap.get(t, a, 0).unwrap();
        olap.commit().unwrap();
    }
    let s = db.stats();
    assert!(
        s.epochs_retired >= 40,
        "epochs retired: {}",
        s.epochs_retired
    );
    assert!(s.live_epochs <= 3, "live epochs: {}", s.live_epochs);
}

#[test]
fn old_oltp_reader_survives_snapshot_handover() {
    // A pre-snapshot OLTP reader must still find its versions after the
    // chain store was frozen and handed over.
    let (db, t, a, _) = small_db(DbConfig::heterogeneous_serializable().with_snapshot_every(1));
    let mut w = db.begin(TxnKind::Oltp);
    w.update(t, a, 42, 1000).unwrap();
    w.commit().unwrap();
    let mut old_reader = db.begin(TxnKind::Oltp); // sees a[42] = 1000
                                                  // Each commit triggers an epoch; writes to row 42 move old values into
                                                  // chains that are then frozen.
    for v in 1..=5u64 {
        let mut w = db.begin(TxnKind::Oltp);
        w.update(t, a, 42, 1000 + v).unwrap();
        w.commit().unwrap();
    }
    assert_eq!(old_reader.get(t, a, 42).unwrap(), 1000);
    old_reader.commit().unwrap();
}

#[test]
fn homogeneous_gc_collects_versions() {
    let (db, t, a, _) = small_db(DbConfig::homogeneous_serializable());
    for v in 0..200u64 {
        let mut w = db.begin(TxnKind::Oltp);
        w.update(t, a, 0, v).unwrap();
        w.commit().unwrap();
    }
    assert_eq!(db.total_versions(), 200);
    let removed = db.run_gc_once();
    assert_eq!(removed, 200, "no active readers: all versions are garbage");
    assert_eq!(db.total_versions(), 0);
    // With an active old reader, its version must survive.
    let mut reader = db.begin(TxnKind::Oltp);
    let before = reader.get(t, a, 0).unwrap();
    for v in 0..50u64 {
        let mut w = db.begin(TxnKind::Oltp);
        w.update(t, a, 0, 1000 + v).unwrap();
        w.commit().unwrap();
    }
    db.run_gc_once();
    assert_eq!(reader.get(t, a, 0).unwrap(), before);
    reader.commit().unwrap();
}

#[test]
fn snapshot_area_recycling_ablation() {
    let mut cfg = DbConfig::heterogeneous_serializable().with_snapshot_every(1);
    cfg.recycle_snapshot_areas = true;
    let (db, t, a, _) = small_db(cfg);
    for i in 0..30 {
        let mut w = db.begin(TxnKind::Oltp);
        w.update(t, a, i, 1).unwrap();
        w.commit().unwrap();
        let mut olap = db.begin(TxnKind::Olap);
        let _ = olap.get(t, a, 0).unwrap();
        olap.commit().unwrap();
    }
    // Behaviour is identical; areas are recycled internally.
    let mut r = db.begin(TxnKind::Oltp);
    assert_eq!(r.get(t, a, 0).unwrap(), 1);
    r.commit().unwrap();
}

#[test]
fn concurrent_transfers_preserve_invariant() {
    // Bank-style invariant: the sum over column a is constant under
    // concurrent transfers; OLAP scans (snapshot or versioned) must always
    // observe exactly that sum.
    for config in [
        DbConfig::heterogeneous_serializable().with_snapshot_every(50),
        DbConfig::homogeneous_serializable(),
        DbConfig::homogeneous_snapshot_isolation(),
    ] {
        let (db, t, a, _) = small_db(config);
        let expected: u64 = (0..4096u64).sum();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let mut writers = Vec::new();
            for worker in 0..2u64 {
                let db = db.clone();
                writers.push(s.spawn(move || {
                    let mut rng: u64 = 0x9E3779B97F4A7C15 ^ worker;
                    let mut next = move || {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng
                    };
                    let mut done = 0;
                    while done < 300 {
                        let from = (next() % 4096) as u32;
                        let to = (next() % 4096) as u32;
                        if from == to {
                            continue;
                        }
                        let mut txn = db.begin(TxnKind::Oltp);
                        let vf = txn.get(t, a, from).unwrap();
                        let vt = txn.get(t, a, to).unwrap();
                        if vf == 0 {
                            txn.abort();
                            continue;
                        }
                        txn.update(t, a, from, vf - 1).unwrap();
                        txn.update(t, a, to, vt + 1).unwrap();
                        if txn.commit().is_ok() {
                            done += 1;
                        }
                    }
                }));
            }
            let scanner = {
                let db = db.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut scans = 0u64;
                    // `loop`/break-after: at least one scan always runs,
                    // even if the writers finish before this thread is
                    // first scheduled.
                    loop {
                        let mut olap = db.begin(TxnKind::Olap);
                        let mut sum = 0u64;
                        olap.scan_on(t)
                            .project(&[a])
                            .for_each(|_, v| sum += v[0])
                            .unwrap();
                        olap.commit().unwrap();
                        assert_eq!(sum, expected, "scan observed a torn state");
                        scans += 1;
                        if stop.load(std::sync::atomic::Ordering::Acquire) {
                            break;
                        }
                    }
                    scans
                })
            };
            for w in writers {
                w.join().unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
            let scans = scanner.join().unwrap();
            assert!(scans > 0, "scanner never ran");
        });
        let s = db.stats();
        assert!(s.committed >= 600, "commits: {}", s.committed);
    }
}

/// The typed filters agree with a manual re-filtering of a raw scan, on
/// both the snapshot and the versioned path.
#[test]
fn scan_builder_filters_match_manual_filtering() {
    for config in [
        DbConfig::heterogeneous_serializable().with_snapshot_every(5),
        DbConfig::homogeneous_serializable(),
    ] {
        let db = AnkerDb::new(config.with_gc_interval(None));
        let dict = std::sync::Arc::new(anker_storage::Dictionary::with_values([
            "a", "b", "c", "d", "e", "f", "g",
        ]));
        let t = db.create_table(
            "m",
            Schema::new(vec![
                ColumnDef::new("i", LogicalType::Int),
                ColumnDef::new("d", LogicalType::Double),
                ColumnDef::dict("k", dict),
            ]),
            3072,
        );
        let schema = db.schema(t);
        let (i, d, k) = (schema.col("i"), schema.col("d"), schema.col("k"));
        use anker_core::Value;
        db.fill_column(t, i, (0..3072).map(|x| Value::Int(x % 97).encode()))
            .unwrap();
        db.fill_column(
            t,
            d,
            (0..3072).map(|x| Value::Double(x as f64 / 10.0).encode()),
        )
        .unwrap();
        db.fill_column(t, k, (0..3072).map(|x| Value::Dict(x % 7).encode()))
            .unwrap();
        let mut olap = db.begin(TxnKind::Olap);
        // range_i64 + lt_f64 + in_set, conjunctively.
        let mut expected = Vec::new();
        for x in 0..3072u32 {
            let iv = (x % 97) as i64;
            let dv = x as f64 / 10.0;
            let kv = x % 7;
            if (10..=40).contains(&iv) && dv < 150.0 && (kv == 2 || kv == 5) {
                expected.push((x, iv));
            }
        }
        let mut got = Vec::new();
        let stats = olap
            .scan_on(t)
            .range_i64(i, 10, 40)
            .lt_f64(d, 150.0)
            .in_set(k, [2u32, 5])
            .project(&[i])
            .for_each_typed(|row, vals| got.push((row, vals[0].as_int())))
            .unwrap();
        assert_eq!(got, expected);
        assert_eq!(
            stats.rows_filtered,
            3072 - expected.len() as u64 - stats.blocks_skipped * 1024
        );
        // count() agrees, dict_eq alone agrees.
        let (n, _) = olap.scan_on(t).dict_eq(k, 3).count().unwrap();
        assert_eq!(n, (0..3072u32).filter(|x| x % 7 == 3).count() as u64);
        olap.commit().unwrap();
    }
}

/// Zone maps prune whole blocks on the snapshot path when the data is
/// clustered on the filtered column.
#[test]
fn zone_maps_skip_blocks_on_snapshot_scans() {
    let (db, t, a, _) = small_db(DbConfig::heterogeneous_serializable().with_snapshot_every(50));
    // Column a holds 0..4096 in order (loaded by small_db): 4 blocks with
    // disjoint ranges.
    let mut olap = db.begin(TxnKind::Olap);
    let mut sum = 0u64;
    let stats = olap
        .scan_on(t)
        .range_i64(a, 2048, 2100)
        .project(&[a])
        .for_each(|_, v| sum += v[0])
        .unwrap();
    olap.commit().unwrap();
    assert_eq!(sum, (2048..=2100u64).sum::<u64>());
    assert_eq!(stats.blocks_skipped, 3, "blocks 0, 1, 3 cannot match");
    assert_eq!(stats.tight_rows, 1024, "only block 2 was read");
    assert_eq!(stats.rows_filtered, 1024 - 53);
    // The versioned path filters but never prunes (live data has no zone
    // maps).
    let mut oltp = db.begin(TxnKind::Oltp);
    let mut n = 0u64;
    let stats = oltp
        .scan_on(t)
        .range_i64(a, 2048, 2100)
        .for_each(|_, _| n += 1)
        .unwrap();
    oltp.commit().unwrap();
    assert_eq!(n, 53);
    assert_eq!(stats.blocks_skipped, 0);
    assert_eq!(stats.rows_filtered, 4096 - 53);
}

/// Integer range filters compare exactly: values around 2^53, where `f64`
/// rounding collapses neighbours, still filter correctly.
#[test]
fn range_i64_is_exact_beyond_f64_mantissa() {
    let db = AnkerDb::new(DbConfig::heterogeneous_serializable().with_gc_interval(None));
    let t = db.create_table(
        "big",
        Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]),
        4,
    );
    let v = db.schema(t).col("v");
    const BIG: i64 = 1 << 53; // 2^53 and 2^53 + 1 round to the same f64
    use anker_core::Value;
    db.fill_column(
        t,
        v,
        [BIG - 1, BIG, BIG + 1, BIG + 2].map(|x| Value::Int(x).encode()),
    )
    .unwrap();
    let mut olap = db.begin(TxnKind::Olap);
    let mut got = Vec::new();
    olap.scan_on(t)
        .range_i64(v, BIG + 1, i64::MAX)
        .project(&[v])
        .for_each_typed(|_, vals| got.push(vals[0].as_int()))
        .unwrap();
    olap.commit().unwrap();
    assert_eq!(
        got,
        vec![BIG + 1, BIG + 2],
        "2^53 must not leak into [2^53+1, ..]"
    );
}

/// A transaction accumulates the statistics of all its scans.
#[test]
fn txn_accumulates_scan_stats() {
    let (db, t, a, b) = small_db(DbConfig::heterogeneous_serializable());
    let mut olap = db.begin(TxnKind::Olap);
    assert_eq!(olap.scan_stats(), anker_core::ScanStats::default());
    let s1 = olap.scan_on(t).project(&[a]).for_each(|_, _| {}).unwrap();
    let s2 = olap.scan_on(t).project(&[b]).for_each(|_, _| {}).unwrap();
    let total = olap.scan_stats();
    assert_eq!(total.tight_rows, s1.tight_rows + s2.tight_rows);
    olap.commit().unwrap();
}

/// Satellite regression: `total_versions`/`column_versions` count frozen
/// epoch stores too — freezing an epoch must not make versions vanish from
/// the diagnostics.
#[test]
fn version_counts_survive_epoch_freeze() {
    let (db, t, a, _) = small_db(DbConfig::heterogeneous_serializable().with_snapshot_every(1));
    // An old reader (pre-update) keeps the frozen store alive across the
    // hand-over.
    let mut old_reader = db.begin(TxnKind::Oltp);
    let mut w = db.begin(TxnKind::Oltp);
    w.update(t, a, 7, 700).unwrap();
    w.commit().unwrap();
    assert_eq!(db.total_versions(), 1);
    assert_eq!(db.column_versions(t, a), 1);
    // OLAP access materialises the column: the chain store freezes and is
    // handed to the epoch (Figure 1, step 4).
    let mut olap = db.begin(TxnKind::Olap);
    let _ = olap.get(t, a, 7).unwrap();
    olap.commit().unwrap();
    assert_eq!(
        db.column_versions(t, a),
        1,
        "freeze moved the version out of the current store; it must still count"
    );
    assert_eq!(db.total_versions(), 1);
    assert_eq!(old_reader.get(t, a, 7).unwrap(), 7);
    old_reader.commit().unwrap();
}

/// Satellite regression: bulk loads into a table a transaction has
/// observed are rejected instead of silently corrupting visibility. The
/// latch is per table: tables created later can still be loaded.
#[test]
fn fill_column_rejected_after_first_observation() {
    let db = AnkerDb::new(DbConfig::heterogeneous_serializable().with_gc_interval(None));
    let t = db.create_table(
        "early",
        Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]),
        16,
    );
    let v = db.schema(t).col("v");
    db.fill_column(t, v, 0..16).unwrap();
    let mut txn = db.begin(TxnKind::Oltp);
    assert_eq!(txn.get(t, v, 3).unwrap(), 3);
    txn.abort();
    // Even after the observing transaction finished, the load window of
    // this table stays closed.
    assert_eq!(
        db.fill_column(t, v, 0..16).unwrap_err(),
        DbError::LoadAfterBegin
    );
    // A table created after transactions have run is still loadable —
    // nothing can have observed it yet.
    let t2 = db.create_table(
        "late",
        Schema::new(vec![ColumnDef::new("w", LogicalType::Int)]),
        16,
    );
    let w = db.schema(t2).col("w");
    db.fill_column(t2, w, 16..32).unwrap();
    let mut r = db.begin(TxnKind::Oltp);
    assert_eq!(r.get(t2, w, 0).unwrap(), 16);
    // Scans observe too: an OLAP scan over t2 closes its window.
    let mut olap = db.begin(TxnKind::Olap);
    olap.scan_on(t2).project(&[w]).for_each(|_, _| {}).unwrap();
    olap.commit().unwrap();
    assert_eq!(
        db.fill_column(t2, w, 0..16).unwrap_err(),
        DbError::LoadAfterBegin
    );
    r.commit().unwrap();
}

/// Projected-but-unfiltered columns still register full-column reads: a
/// write to such a column must abort the scanning updater.
#[test]
fn projection_columns_keep_full_column_locks() {
    let (db, t, a, b) = small_db(DbConfig::homogeneous_serializable());
    let mut t1 = db.begin(TxnKind::Oltp);
    // Filter on a, project b: b's values feed the result, so any write to
    // b intersects the read set.
    t1.scan_on(t)
        .range_i64(a, 0, 50)
        .project(&[b])
        .for_each(|_, _| {})
        .unwrap();
    let mut t2 = db.begin(TxnKind::Oltp);
    t2.update(t, b, 4000, 1).unwrap();
    t2.commit().unwrap();
    t1.update(t, a, 0, 0).unwrap();
    match t1.commit() {
        Err(DbError::Aborted(AbortReason::ValidationFailed { .. })) => {}
        other => panic!("expected validation abort, got {other:?}"),
    }
}

/// The OS backend (real memfd + mmap memory) must run the whole engine:
/// MVCC visibility, snapshot epochs with zero-copy slice scans, and
/// destination recycling — same assertions as on the simulated kernel.
#[cfg(target_os = "linux")]
#[test]
fn os_backend_runs_the_full_engine() {
    use anker_core::BackendKind;
    let mut cfg = DbConfig::heterogeneous_serializable()
        .with_snapshot_every(4)
        .with_gc_interval(None)
        .with_backend(BackendKind::Os);
    cfg.recycle_snapshot_areas = true;
    let (db, t, a, b) = small_db(cfg);

    // An old OLTP reader pins its snapshot across OLAP-driven swaps.
    let mut old_reader = db.begin(TxnKind::Oltp);
    assert_eq!(old_reader.get(t, a, 5).unwrap(), 5);

    // Interleave writes and OLAP scans across several epochs so areas
    // freeze, retire, and recycle on real memory.
    for round in 0..6u64 {
        for i in 0..8u32 {
            let mut w = db.begin(TxnKind::Oltp);
            w.update(t, a, i, 1_000 * (round + 1) + i as u64).unwrap();
            w.update(t, b, i, 2_000 * (round + 1) + i as u64).unwrap();
            w.commit().unwrap();
        }
        let mut olap = db.begin(TxnKind::Olap);
        let (sum, stats) = olap
            .scan_on(t)
            .range_i64(a, 1_000, i64::MAX)
            .project(&[a])
            .fold(0u64, |acc, _row, vals| acc + vals[0].as_int() as u64)
            .unwrap();
        olap.commit().unwrap();
        assert!(sum >= 8 * 1_000 * (round + 1), "snapshot scan sees commits");
        assert!(stats.tight_rows > 0, "snapshot path was taken");
    }

    // The old reader still sees its own snapshot through the chains.
    assert_eq!(old_reader.get(t, a, 5).unwrap(), 5);
    old_reader.commit().unwrap();
    assert!(db.stats().epochs_triggered > 0);
    assert!(db.stats().columns_materialized > 0);
}
