//! Multi-threaded commit-pipeline stress with a history-checking oracle:
//! N committer threads run M read-compute-write transactions each; every
//! committed transaction's observed reads and applied writes are logged
//! and the whole history is replayed serially in commit-timestamp order
//! (see `tests/common/mod.rs`). A single stale read, lost update or torn
//! install fails the replay.
//!
//! `ANKER_STRESS_THREADS` / `ANKER_STRESS_TXNS` scale the run (CI's
//! `commit-stress` job raises them); the in-tree defaults keep `cargo
//! test` fast on a laptop.

mod common;

use anker_core::{AnkerDb, DbConfig, DurabilityLevel};
use common::{backends, dump_col, one_col_db, one_col_table, run_commit_stress, StressConfig};

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn stress_config(seed: u64) -> StressConfig {
    StressConfig {
        threads: env_or("ANKER_STRESS_THREADS", 4),
        txns_per_thread: env_or("ANKER_STRESS_TXNS", 120),
        rows: 48,
        theta: 0.7,
        max_reads: 3,
        repair_rounds: 2,
        seed,
    }
}

/// Homogeneous serializable — the configuration with the most concurrent
/// machinery live at once: sharded validation, out-of-order lock-free
/// installs, conflict repair, and the background GC thread's freeze/drain
/// window all interleave.
#[test]
fn stress_homogeneous_serializable_with_gc() {
    let cfg = stress_config(0xA11CE);
    let db = AnkerDb::new(
        DbConfig::homogeneous_serializable()
            .with_gc_interval(Some(std::time::Duration::from_millis(10))),
    );
    let (t, c) = one_col_table(&db, cfg.rows);
    let out = run_commit_stress(&db, t, c, &cfg);
    assert!(out.committed > 0);
    db.shutdown();
}

/// Snapshot isolation publishes no commit records and takes no shard
/// locks; the oracle still checks that the final state equals the
/// write-set replay in commit order (reads may legitimately be stale).
#[test]
fn stress_homogeneous_snapshot_isolation() {
    let cfg = stress_config(0xBEEF);
    let (db, t, c) = one_col_db(DbConfig::homogeneous_snapshot_isolation(), cfg.rows);
    let out = run_commit_stress(&db, t, c, &cfg);
    assert!(out.committed > 0);
    assert_eq!(
        out.validation_aborts, 0,
        "snapshot isolation never validates reads"
    );
}

/// Heterogeneous mode on every backend: concurrent commits interleave
/// with snapshot-epoch triggers and lazy column materialisation.
#[test]
fn stress_heterogeneous_with_epoch_triggers() {
    for backend in backends() {
        let mut cfg = stress_config(0xC0FFE);
        cfg.txns_per_thread = cfg.txns_per_thread / 2 + 1;
        let (db, t, c) = one_col_db(
            DbConfig::heterogeneous_serializable()
                .with_snapshot_every(16)
                .with_backend(backend),
            cfg.rows,
        );
        let out = run_commit_stress(&db, t, c, &cfg);
        assert!(out.committed > 0, "backend {backend:?}");
        assert!(
            db.stats().epochs_triggered > 0,
            "the run must have crossed epoch triggers (backend {backend:?})"
        );
    }
}

/// Full pipeline + durability: commits append to the WAL concurrently
/// (file order ≠ timestamp order) under group-commit fsync, then a crash
/// reopen must land on exactly the oracle's final state.
#[test]
fn stress_durable_fsync_recovers_to_oracle_state() {
    let mut cfg = stress_config(0xD15C);
    cfg.txns_per_thread = env_or("ANKER_STRESS_TXNS", 60).min(60);
    let dir = common::tmp_dir("stress-fsync");
    let final_state;
    let (t, c) = {
        let db = AnkerDb::open(
            &dir,
            DbConfig::homogeneous_serializable()
                .with_gc_interval(None)
                .with_durability(DurabilityLevel::Fsync),
        )
        .unwrap();
        let (t, c) = one_col_table(&db, cfg.rows);
        let out = run_commit_stress(&db, t, c, &cfg);
        assert!(out.committed > 0);
        final_state = dump_col(&db, t, c, cfg.rows);
        (t, c)
        // Crash: no shutdown, no final sync beyond each commit's own.
    };
    let db = AnkerDb::open(
        &dir,
        DbConfig::homogeneous_serializable()
            .with_gc_interval(None)
            .with_durability(DurabilityLevel::Fsync),
    )
    .unwrap();
    assert_eq!(
        dump_col(&db, t, c, cfg.rows),
        final_state,
        "every fsync-acknowledged commit must survive the crash"
    );
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// The repair acceptance bar: under forced hot-key contention, bounded
/// conflict repair must convert at least half of the induced validation
/// failures into commits (i.e. repaired outcomes outnumber residual
/// validation aborts), and must actually fire.
#[test]
fn repair_converts_majority_of_validation_failures() {
    let cfg = StressConfig {
        threads: 4,
        txns_per_thread: 150,
        rows: 6, // tiny keyspace: nearly every transaction conflicts
        theta: 0.0,
        max_reads: 2,
        repair_rounds: 4,
        seed: 0x5EED,
    };
    let (db, t, c) = one_col_db(DbConfig::homogeneous_serializable(), cfg.rows);
    let out = run_commit_stress(&db, t, c, &cfg);
    let stats = db.stats();
    assert!(
        stats.repair_rounds > 0,
        "the workload must actually induce validation conflicts"
    );
    assert!(stats.repaired_commits > 0);
    assert!(
        stats.repaired_commits >= stats.aborted_validation,
        "repair must convert at least half of the validation failures \
         (repaired {} vs aborted {})",
        stats.repaired_commits,
        stats.aborted_validation
    );
    assert_eq!(out.validation_aborts as u64, stats.aborted_validation);
}
