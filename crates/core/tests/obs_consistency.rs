//! Integration tests of the `anker-obs` metrics surface under real
//! concurrency: registry snapshots taken *while* writers and scanners
//! run must be internally consistent (every counter and histogram count
//! monotone across successive snapshots), and at quiescence the
//! engine's exactness invariants must hold — the sampled commit-stage
//! chain's counts agree with each other, the scan counters equal the
//! summed per-scan `ScanStats`, and the morsel histogram counts exactly
//! one span per morsel.
//!
//! This file is its own test binary — and therefore its own
//! process-global obs registry — so the arithmetic below cannot be
//! polluted by other test files' scans and commits.

// Under `obs-off` every counter update compiles to a no-op, so the
// registry arithmetic this file asserts is intentionally all-zero.
#![cfg(not(feature = "obs-off"))]

mod common;

use anker_core::obs;
use anker_core::{BackendKind, DbConfig, ScanStats, TxnKind, Value};
use std::sync::atomic::{AtomicBool, Ordering};

/// Metrics whose values must never decrease while the engine runs.
const MONOTONE_COUNTERS: [&str; 7] = [
    "commit_attempts_total",
    "scan_morsels_total",
    "scan_tight_rows_total",
    "snapshot_pages_rewired_total",
    "snapshot_epoch_pins_total",
    "db_committed_total",
    "db_epochs_triggered_total",
];

const MONOTONE_HISTOGRAMS: [&str; 4] = [
    "commit_total_ns",
    "commit_stage_latch_ns",
    "scan_morsel_ns",
    "snapshot_rewire_ns",
];

fn counter(m: &obs::MetricsSnapshot, name: &str) -> u64 {
    m.counter(name).unwrap_or(0)
}

fn hist_count(m: &obs::MetricsSnapshot, name: &str) -> u64 {
    m.histogram(name).map_or(0, |h| h.count())
}

/// Writers, scanners, and a metrics poller in parallel: every snapshot
/// the poller takes must be monotone w.r.t. the previous one, and the
/// quiescent end state must satisfy the engine's exact invariants.
#[test]
fn snapshots_stay_consistent_under_concurrent_load() {
    let rows = 4_096u32;
    let config = DbConfig::heterogeneous_serializable()
        .with_snapshot_every(64)
        .with_backend(BackendKind::Sim);
    let (db, t, c) = common::one_col_db(config, rows);
    let baseline = db.metrics();

    const WRITERS: usize = 3;
    const COMMITS_PER_WRITER: usize = 400;
    const SCANNERS: usize = 2;
    const SCANS_PER_SCANNER: usize = 12;

    let stop = AtomicBool::new(false);
    let mut scan_sums: Vec<ScanStats> = Vec::new();
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let db = &db;
            s.spawn(move || {
                for i in 0..COMMITS_PER_WRITER {
                    let row = ((w * COMMITS_PER_WRITER + i * 7) % rows as usize) as u32;
                    let mut txn = db.begin(TxnKind::Oltp);
                    txn.update_value(t, c, row, Value::Int((w * 1000 + i) as i64))
                        .unwrap();
                    // First-updater-wins aborts are part of the workload;
                    // the registry must count the attempt either way.
                    let _ = txn.commit();
                }
            });
        }
        let scan_handles: Vec<_> = (0..SCANNERS)
            .map(|n| {
                let db = &db;
                s.spawn(move || {
                    let mut merged = ScanStats::default();
                    for _ in 0..SCANS_PER_SCANNER {
                        let reader = db.snapshot_reader().unwrap();
                        let (_, stats) = reader
                            .scan(t)
                            .range_i64(c, 0, i64::MAX)
                            .project(&[c])
                            .parallel(n + 1)
                            .fold(
                                0i64,
                                |a, _, v| a.wrapping_add(v[0].as_int()),
                                |a, b| a.wrapping_add(b),
                            )
                            .unwrap();
                        merged.merge(&stats);
                    }
                    merged
                })
            })
            .collect();
        // The poller: successive snapshots while the engine is hot.
        let poller = s.spawn(|| {
            let mut prev = db.metrics();
            let mut polls = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let cur = db.metrics();
                for name in MONOTONE_COUNTERS {
                    assert!(
                        counter(&cur, name) >= counter(&prev, name),
                        "counter `{name}` went backwards under load"
                    );
                }
                for name in MONOTONE_HISTOGRAMS {
                    assert!(
                        hist_count(&cur, name) >= hist_count(&prev, name),
                        "histogram `{name}` count went backwards under load"
                    );
                }
                prev = cur;
                polls += 1;
                std::thread::yield_now();
            }
            polls
        });
        for h in scan_handles {
            scan_sums.push(h.join().unwrap());
        }
        stop.store(true, Ordering::Relaxed);
        assert!(poller.join().unwrap() > 0, "the poller never sampled");
    });

    let m = db.metrics();

    // Exactness: the attempt counter is unsampled, so it covers every
    // writer commit (plus ww-abort retries and the fill_column load).
    let attempts = counter(&m, "commit_attempts_total");
    assert!(attempts >= (WRITERS * COMMITS_PER_WRITER) as u64);

    // The sampled chain: a sampled attempt records latch + total
    // together, later stages only on the paths that reach them, and no
    // stage can out-count the attempts that entered the pipeline.
    let latch = hist_count(&m, "commit_stage_latch_ns");
    assert_eq!(
        hist_count(&m, "commit_total_ns"),
        latch,
        "commit_total_ns and commit_stage_latch_ns must count the same sampled attempts"
    );
    let mut upper = latch;
    for stage in [
        "commit_stage_validate_ns",
        "commit_stage_wal_ns",
        "commit_stage_install_ns",
        "commit_stage_fsync_ns",
    ] {
        let n = hist_count(&m, stage);
        assert!(
            n <= upper,
            "`{stage}` counts {n} spans but its predecessor only {upper}"
        );
        upper = n;
    }
    assert!(latch <= attempts, "sampling can never exceed the attempts");

    // Scan counters are fed once per completed scan from the same merged
    // `ScanStats` the API returns, so at quiescence the deltas equal the
    // sums the scanner threads observed.
    let mut expect = ScanStats::default();
    for s in &scan_sums {
        expect.merge(s);
    }
    for (name, val) in [
        ("scan_morsels_total", expect.morsels),
        ("scan_tight_rows_total", expect.tight_rows),
        ("scan_blocks_skipped_total", expect.blocks_skipped),
        ("scan_rows_filtered_total", expect.rows_filtered),
    ] {
        assert_eq!(
            counter(&m, name) - counter(&baseline, name),
            val,
            "`{name}` delta diverged from the summed ScanStats"
        );
    }
    // One tracer span per morsel, exactly.
    assert_eq!(
        hist_count(&m, "scan_morsel_ns") - hist_count(&baseline, "scan_morsel_ns"),
        expect.morsels,
        "scan_morsel_ns must record exactly one span per morsel"
    );

    // Pins balance at quiescence: every reader dropped its epoch.
    assert_eq!(
        m.gauge("snapshot_epochs_pinned").unwrap_or(0),
        0,
        "all epoch pins must be released at quiescence"
    );
    assert!(counter(&m, "snapshot_epoch_pins_total") >= (SCANNERS * SCANS_PER_SCANNER) as u64);
}

/// The same consistency contract under the oracle-verified commit-stress
/// driver (`common::run_commit_stress`): a poller races the stress run
/// asserting monotonicity, and at quiescence the registry must agree
/// with the driver's own outcome counts — every committed, ww-aborted,
/// and validation-aborted transaction entered the pipeline as an
/// attempt, and `db_committed_total` moved by exactly the commits the
/// oracle replayed.
#[test]
fn stress_driver_metrics_stay_consistent() {
    let config = DbConfig::heterogeneous_serializable()
        .with_snapshot_every(32)
        .with_backend(BackendKind::Sim);
    let (db, t, c) = common::one_col_db(config, 256);
    let baseline = db.metrics();

    let stop = AtomicBool::new(false);
    let mut outcome = None;
    std::thread::scope(|s| {
        let poller = s.spawn(|| {
            let mut prev = db.metrics();
            while !stop.load(Ordering::Relaxed) {
                let cur = db.metrics();
                for name in MONOTONE_COUNTERS {
                    assert!(
                        counter(&cur, name) >= counter(&prev, name),
                        "counter `{name}` went backwards under stress"
                    );
                }
                for name in MONOTONE_HISTOGRAMS {
                    assert!(
                        hist_count(&cur, name) >= hist_count(&prev, name),
                        "histogram `{name}` count went backwards under stress"
                    );
                }
                prev = cur;
                std::thread::yield_now();
            }
        });
        outcome = Some(common::run_commit_stress(
            &db,
            t,
            c,
            &common::StressConfig {
                threads: 4,
                txns_per_thread: 150,
                rows: 256,
                theta: 0.7,
                max_reads: 3,
                repair_rounds: 1,
                seed: 0xC0FFEE,
            },
        ));
        stop.store(true, Ordering::Relaxed);
        poller.join().unwrap();
    });
    let outcome = outcome.unwrap();

    let m = db.metrics();
    let attempts =
        counter(&m, "commit_attempts_total") - counter(&baseline, "commit_attempts_total");
    // Repair retries re-enter the pipeline, so attempts can exceed the
    // per-transaction outcome sum but never undercut it.
    let outcomes = (outcome.committed + outcome.ww_aborts + outcome.validation_aborts) as u64;
    assert!(
        attempts >= outcomes,
        "attempts {attempts} < driver outcomes {outcomes}"
    );
    assert_eq!(
        counter(&m, "db_committed_total") - counter(&baseline, "db_committed_total"),
        outcome.committed as u64,
        "registry and stress driver disagree on commits"
    );
    assert_eq!(
        hist_count(&m, "commit_total_ns"),
        hist_count(&m, "commit_stage_latch_ns"),
        "sampled chain out of balance after stress"
    );
}

/// `AnkerDb::metrics` folds the legacy stats structs into the registry
/// snapshot; the two surfaces must agree on the shared quantities.
#[test]
fn absorbed_stats_agree_with_their_structs() {
    let config = DbConfig::heterogeneous_serializable()
        .with_snapshot_every(8)
        .with_backend(BackendKind::Sim);
    let (db, t, c) = common::one_col_db(config, 512);
    for i in 0..64u32 {
        let mut txn = db.begin(TxnKind::Oltp);
        txn.update_value(t, c, i % 512, Value::Int(i as i64))
            .unwrap();
        txn.commit().unwrap();
    }
    let mut olap = db.begin(TxnKind::Olap);
    let _ = olap.scan_on(t).count().unwrap();
    olap.commit().unwrap();

    let stats = db.stats();
    let m = db.metrics();
    assert_eq!(counter(&m, "db_committed_total"), stats.committed);
    assert_eq!(
        counter(&m, "db_epochs_triggered_total"),
        stats.epochs_triggered
    );
    assert_eq!(
        m.gauge("db_live_epochs").unwrap_or(-1),
        stats.live_epochs as i64
    );
    // The kernel counters ride along on the simulated backend.
    assert_eq!(
        counter(&m, "kernel_vm_snapshot_calls_total"),
        stats.kernel.vm_snapshot_calls
    );
    // Prometheus rendering carries every absorbed metric too.
    let text = m.render_text();
    for name in ["db_committed_total", "kernel_vm_snapshot_calls_total"] {
        assert!(text.contains(name), "rendered text must list `{name}`");
    }
}
