//! Table state: schema plus per-column storage and MVCC state.

use anker_mvcc::VersionedColumn;
use anker_storage::{ColumnArea, Schema};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Identifier of a table within its database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub u16);

/// Runtime state of one column: the current (OLTP) area — re-pointed on
/// every snapshot materialisation, Figure 1 steps 4/7 — plus the column's
/// MVCC state and the timestamp of its newest committed write.
pub(crate) struct ColumnState {
    pub versioned: VersionedColumn,
    area: RwLock<ColumnArea>,
    /// Commit timestamp of the newest write to this column; a snapshot
    /// materialised now is valid for any epoch with `ts >=` this.
    pub last_mutation_ts: AtomicU64,
    /// Timestamp of the newest epoch this column is materialised for
    /// (fast-path guard: when `>=` the newest epoch's timestamp, the write
    /// path can skip the snapshot manager entirely).
    pub snapshot_ts: AtomicU64,
}

impl ColumnState {
    pub fn new(versioned: VersionedColumn, area: ColumnArea) -> ColumnState {
        ColumnState {
            versioned,
            area: RwLock::new(area),
            last_mutation_ts: AtomicU64::new(0),
            snapshot_ts: AtomicU64::new(0),
        }
    }

    /// A handle to the current most-recent representation. Callers must
    /// re-acquire per operation (never cache across a potential snapshot
    /// swap); the per-row timestamp protocol makes any interleaving safe.
    pub fn current_area(&self) -> ColumnArea {
        self.area.read().clone()
    }

    /// Swap in a fresh area (the `vm_snapshot` duplicate that becomes the
    /// new most-recent representation); returns the previous area, which
    /// becomes the read-only snapshot.
    ///
    /// The frozen area's zone-map cache is dropped at this point: a
    /// summary primed while the area was still the current, writable
    /// representation may predate its last installs, and a snapshot scan
    /// pruning against those stale min/max bounds would silently skip
    /// matching rows. The first predicate scan of the snapshot rebuilds
    /// the map from the now-immutable content.
    pub fn swap_area(&self, fresh: ColumnArea) -> ColumnArea {
        let mut guard = self.area.write();
        let old = std::mem::replace(&mut *guard, fresh);
        old.invalidate_zone_map();
        old
    }

    /// Newest committed write timestamp of this column.
    pub fn last_mutation(&self) -> u64 {
        // ORDERING: Acquire pairs with the commit pipeline's Release store
        // after each install — a materialiser that reads T also sees every
        // install at or before T, so the snapshot it cuts is exact.
        self.last_mutation_ts.load(Ordering::Acquire)
    }
}

/// Runtime state of one table.
pub(crate) struct TableState {
    pub name: String,
    pub schema: Schema,
    pub rows: u32,
    pub cols: Vec<ColumnState>,
    /// Latched when a transaction first resolves this table for data
    /// access; from then on bulk loads are rejected (see
    /// [`crate::AnkerDb::fill_column`]). Per table, so tables created
    /// after transactions have run elsewhere can still be loaded.
    pub observed: AtomicBool,
}

impl TableState {
    pub fn col(&self, idx: usize) -> &ColumnState {
        &self.cols[idx]
    }

    /// Record that a transaction resolved this table (one-shot latch; the
    /// steady state is a read-shared load).
    pub fn mark_observed(&self) {
        if !self.observed.load(Ordering::Relaxed) {
            // ORDERING: Release pairs with the bulk-load path's Acquire
            // check under the commit lock (`fill_column`), which must see
            // the observation before it would overwrite live data.
            self.observed.store(true, Ordering::Release);
        }
    }
}
