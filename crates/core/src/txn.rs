//! Transactions: classification, reads on live or snapshotted data, local
//! writes, and the serialized commit protocol.

use crate::config::ProcessingMode;
use crate::db::AnkerDb;
use crate::error::{AbortReason, DbError, Result};
use crate::snapman::{Epoch, SnapCol};
use crate::table::{TableId, TableState};
use anker_mvcc::{
    ColRef, CommitRecord, IsolationLevel, LocalWrite, ScanStats, Transaction, TxnId, WriteRecord,
    PENDING,
};
use anker_storage::{ColumnId, Value};
use anker_util::FxHashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Transaction classification (§2.2): modifying, short-running transactions
/// are OLTP; long-running read-only analytics are OLAP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    /// Runs on the most recent representation; may write.
    Oltp,
    /// Read-only by contract; in heterogeneous mode it runs entirely on the
    /// newest snapshot epoch and never checks version chains.
    Olap,
}

/// A running transaction. Obtain with [`AnkerDb::begin`]; finish with
/// [`Txn::commit`] or [`Txn::abort`] (dropping aborts implicitly).
///
/// Reads go through [`Txn::get`]/[`Txn::get_value`] for single rows and
/// through the [`crate::ScanBuilder`] obtained from [`Txn::scan_on`] for
/// table scans with pushed-down predicates.
pub struct Txn {
    pub(crate) db: AnkerDb,
    pub(crate) inner: Transaction,
    kind: TxnKind,
    /// Pinned snapshot epoch (heterogeneous OLAP only).
    pub(crate) epoch: Option<Arc<Epoch>>,
    snap_cache: FxHashMap<(u16, u16), Arc<SnapCol>>,
    /// Per-transaction cache of resolved table states: avoids re-taking the
    /// tables RwLock on every operation (a measurable cache-line ping-pong
    /// between cores on the OLTP hot path).
    table_cache: Vec<Option<Arc<TableState>>>,
    /// Running total of all scan statistics this transaction produced.
    pub(crate) scan_stats: ScanStats,
    active_token: Option<anker_mvcc::ActiveToken>,
    finished: bool,
}

impl std::fmt::Debug for Txn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("id", &self.inner.id())
            .field("kind", &self.kind)
            .field("start_ts", &self.inner.start_ts())
            .finish()
    }
}

impl Txn {
    pub(crate) fn begin(db: AnkerDb, kind: TxnKind) -> Txn {
        let heterogeneous = db.inner.config.mode == ProcessingMode::Heterogeneous;
        let epoch = if heterogeneous && kind == TxnKind::Olap {
            Some(db.pin_current_epoch())
        } else {
            None
        };
        let start_ts = match &epoch {
            Some(e) => e.ts,
            None => db.inner.oracle.start_ts(),
        };
        let active_token = db.inner.active.register(start_ts);
        static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let id = TxnId(NEXT_ID.fetch_add(1, Ordering::Relaxed));
        Txn {
            db,
            inner: Transaction::begin(id, start_ts),
            kind,
            epoch,
            snap_cache: FxHashMap::default(),
            table_cache: Vec::new(),
            scan_stats: ScanStats::default(),
            active_token: Some(active_token),
            finished: false,
        }
    }

    /// Resolve (and cache) a table's state for the rest of this
    /// transaction. Tables are append-only registered, so the cache cannot
    /// go stale.
    pub(crate) fn table(&mut self, table: TableId) -> Arc<TableState> {
        let idx = table.0 as usize;
        if idx >= self.table_cache.len() {
            self.table_cache.resize(idx + 1, None);
        }
        if let Some(t) = &self.table_cache[idx] {
            return Arc::clone(t);
        }
        let state = self.db.table_state(table);
        // This table's data is now part of a transaction's footprint: close
        // its bulk-load window (see `AnkerDb::fill_column`).
        state.mark_observed();
        self.table_cache[idx] = Some(Arc::clone(&state));
        state
    }

    /// The transaction's classification.
    pub fn kind(&self) -> TxnKind {
        self.kind
    }

    /// The snapshot timestamp all reads observe. For heterogeneous OLAP
    /// transactions this is the epoch timestamp — slightly stale but
    /// serializable at that point (§2.2).
    pub fn start_ts(&self) -> u64 {
        self.inner.start_ts()
    }

    pub(crate) fn colref(table: TableId, col: ColumnId) -> ColRef {
        ColRef::new(table.0, col.0 as u16)
    }

    pub(crate) fn serializable_updater(&self) -> bool {
        self.kind == TxnKind::Oltp && self.db.inner.config.isolation == IsolationLevel::Serializable
    }

    /// The snapshot column for `(table, col)`, materialising it on first
    /// access (§2.2.2 lazy materialisation; shared slow path with
    /// [`crate::SnapshotReader`] in `snapman::resolve_snap_col`).
    pub(crate) fn snapshot_col(&mut self, table: TableId, col: ColumnId) -> Result<Arc<SnapCol>> {
        let key = (table.0, col.0 as u16);
        if let Some(sc) = self.snap_cache.get(&key) {
            return Ok(Arc::clone(sc));
        }
        let epoch = self.epoch.as_ref().expect("snapshot access without epoch");
        let sc = crate::snapman::resolve_snap_col(&self.db, epoch, table, col)?;
        self.snap_cache.insert(key, Arc::clone(&sc));
        Ok(sc)
    }

    /// Read the raw word of `(table, col, row)` under this transaction's
    /// visibility.
    pub fn get(&mut self, table: TableId, col: ColumnId, row: u32) -> Result<u64> {
        let cref = Self::colref(table, col);
        if let Some(own) = self.inner.own_write(cref, row) {
            return Ok(own);
        }
        if self.epoch.is_some() {
            // Heterogeneous OLAP: read the frozen snapshot in place — no
            // timestamps, no chains.
            let sc = self.snapshot_col(table, col)?;
            return Ok(sc.area().get(row)?);
        }
        let state = self.table(table);
        let cs = state.col(col.0);
        let area = cs.current_area();
        let v = cs.versioned.read(&area, row, self.inner.start_ts())?;
        if self.serializable_updater() {
            self.inner.log_row_read(cref, row);
        }
        Ok(v)
    }

    /// Typed read.
    pub fn get_value(&mut self, table: TableId, col: ColumnId, row: u32) -> Result<Value> {
        let ty = self.table(table).schema.def(col).ty;
        Ok(Value::decode(self.get(table, col, row)?, ty))
    }

    /// Buffer an update of `(table, col, row)` to `word`. Nothing shared is
    /// touched until commit; aborts are free.
    pub fn update(&mut self, table: TableId, col: ColumnId, row: u32, word: u64) -> Result<()> {
        if self.kind == TxnKind::Olap {
            return Err(DbError::ReadOnlyTransaction);
        }
        let cref = Self::colref(table, col);
        if self.db.inner.config.isolation == IsolationLevel::Serializable {
            // The update's target row is part of the read footprint.
            self.inner.log_row_read(cref, row);
        }
        self.inner.write(cref, row, word);
        Ok(())
    }

    /// Typed update.
    pub fn update_value(
        &mut self,
        table: TableId,
        col: ColumnId,
        row: u32,
        value: Value,
    ) -> Result<()> {
        self.update(table, col, row, value.encode())
    }

    /// Start building a scan over `table`: chain typed predicates and a
    /// projection on the returned [`crate::ScanBuilder`], then finish with
    /// one of its terminal methods. Predicates are pushed down into the
    /// block loops of both scan paths and are automatically converted into
    /// precision locks for serializable updaters — no manual
    /// `log_range`/`log_dict_eq` calls needed.
    ///
    /// ```
    /// # use anker_core::{AnkerDb, ColumnDef, DbConfig, LogicalType, Schema, TxnKind, Value};
    /// # let db = AnkerDb::new(DbConfig::default());
    /// # let t = db.create_table(
    /// #     "x", Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]), 8);
    /// # let v = db.schema(t).col("v");
    /// # db.fill_column(t, v, (0..8).map(|i| Value::Int(i).encode())).unwrap();
    /// let mut olap = db.begin(TxnKind::Olap);
    /// let (sum, _stats) = olap
    ///     .scan_on(t)
    ///     .range_i64(v, 2, 5)
    ///     .project(&[v])
    ///     .fold(0i64, |acc, _row, vals| acc + vals[0].as_int())
    ///     .unwrap();
    /// assert_eq!(sum, 2 + 3 + 4 + 5);
    /// ```
    pub fn scan_on(&mut self, table: TableId) -> crate::scan::ScanBuilder<'_> {
        crate::scan::ScanBuilder::new(self, table)
    }

    /// Running total of the scan statistics of every scan this transaction
    /// executed (each terminal scan method also returns its own
    /// [`ScanStats`]).
    pub fn scan_stats(&self) -> ScanStats {
        self.scan_stats
    }

    /// Commit. Read-only transactions commit without validation (they are
    /// serializable at their snapshot point); updaters go through the
    /// serialized commit section: write-write check, read-set validation
    /// (serializable mode), snapshot-pending materialisation, install,
    /// epoch trigger.
    pub fn commit(mut self) -> Result<u64> {
        if self.finished {
            return Err(DbError::AlreadyFinished);
        }
        self.finished = true;
        let db = self.db.clone();
        let start_ts = self.inner.start_ts();

        if self.inner.writes().is_empty() {
            self.release();
            db.inner
                .stats
                .committed_read_only
                .fetch_add(1, Ordering::Relaxed);
            return Ok(start_ts);
        }

        let writes: Vec<LocalWrite> = self.inner.writes().to_vec();
        let mut cs = db.lock_commit();

        // Write-write conflicts: first-updater-wins (§2.1).
        for w in &writes {
            let state = self.table(TableId(w.col.table));
            let ts = state.col(w.col.col as usize).versioned.last_write_ts(w.row) & !PENDING;
            if ts > start_ts {
                drop(cs);
                self.release();
                db.inner.stats.aborted_ww.fetch_add(1, Ordering::Relaxed);
                return Err(DbError::Aborted(AbortReason::WriteWriteConflict));
            }
        }
        // Read-set validation via precision locking (§2.1).
        if db.inner.config.isolation == IsolationLevel::Serializable {
            if let Err(conflicting) = db.inner.recent.validate(start_ts, self.inner.predicates()) {
                drop(cs);
                self.release();
                db.inner
                    .stats
                    .aborted_validation
                    .fetch_add(1, Ordering::Relaxed);
                return Err(DbError::Aborted(AbortReason::ValidationFailed {
                    conflicting_commit: conflicting,
                }));
            }
        }

        let commit_ts = db.inner.oracle.begin_commit();
        let heterogeneous = db.inner.config.mode == ProcessingMode::Heterogeneous;

        // Write-ahead logging (redo rule: the record must exist before
        // any of its effects can). The append runs inside the serialized
        // commit section, so WAL order equals commit-timestamp order; the
        // fsync — if the durability level demands one — happens *after*
        // the lock drops, where group commit batches it with concurrent
        // committers. An append failure aborts cleanly here: nothing has
        // installed yet.
        let mut wal_pending = None;
        if let Some(d) = db.inner.dura.get() {
            if d.level != anker_dura::DurabilityLevel::Off {
                let rec = anker_dura::WalRecord::Commit {
                    commit_ts,
                    writes: writes
                        .iter()
                        .map(|w| anker_dura::WalWrite {
                            table: w.col.table,
                            col: w.col.col,
                            row: w.row,
                            word: w.new_word,
                        })
                        .collect(),
                };
                match d.wal.append(&rec) {
                    Ok(lsn) => {
                        d.commits_since_ckpt.fetch_add(1, Ordering::Relaxed);
                        if d.level == anker_dura::DurabilityLevel::Fsync {
                            wal_pending = Some((Arc::clone(d), lsn));
                        }
                    }
                    Err(e) => {
                        drop(cs);
                        self.release();
                        return Err(e.into());
                    }
                }
            }
        }

        // Settle the snapshot state of every column we are about to write
        // (§2.2.2): pinned epochs missing the column get it materialised
        // now; unpinned ones are damage-marked (see SnapshotManager).
        if heterogeneous {
            let mut seen: Vec<(u16, u16)> = Vec::with_capacity(writes.len());
            for w in &writes {
                let key = (w.col.table, w.col.col);
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                let state = self.table(TableId(key.0));
                // Fast path: the column is already settled (materialised or
                // damage-marked) for the newest epoch.
                let newest = db.inner.snapman.newest_ts.load(Ordering::Acquire);
                if newest == 0
                    || state
                        .col(key.1 as usize)
                        .snapshot_ts
                        .load(Ordering::Acquire)
                        >= newest
                {
                    continue;
                }
                db.inner
                    .snapman
                    .note_write(&mut cs, &state, key.0, key.1, commit_ts)?;
            }
        }

        // Install.
        let mut records = Vec::with_capacity(writes.len());
        for w in &writes {
            let state = self.table(TableId(w.col.table));
            let col = state.col(w.col.col as usize);
            let area = col.current_area();
            let old = col.versioned.install(&area, w.row, w.new_word, commit_ts)?;
            col.last_mutation_ts.store(commit_ts, Ordering::Release);
            records.push(WriteRecord {
                col: w.col,
                row: w.row,
                old,
                new: w.new_word,
            });
        }
        db.inner.oracle.complete_commit(commit_ts);
        if db.inner.config.isolation == IsolationLevel::Serializable {
            db.inner.recent.push(CommitRecord {
                commit_ts,
                writes: records,
            });
        }

        // Snapshot trigger every n commits (§5.1(3)).
        cs.commits_since_snapshot += 1;
        cs.commits_since_prune += 1;
        if heterogeneous && cs.commits_since_snapshot >= db.inner.config.snapshot_every_commits {
            cs.commits_since_snapshot = 0;
            db.inner.snapman.trigger_epoch(&mut cs, commit_ts);
            if db.inner.config.eager_materialization {
                // §2.2.2's rejected eager alternative, kept as an ablation:
                // snapshot every column of every table right away.
                let tables: Vec<_> = db.inner.tables.read().clone();
                for (tid, state) in tables.iter().enumerate() {
                    for cid in 0..state.cols.len() {
                        db.inner.snapman.materialize_column(
                            &mut cs, state, tid as u16, cid as u16, commit_ts,
                        )?;
                    }
                }
            }
        }
        // Periodic housekeeping: prune the recently-committed list and
        // retire frozen chain stores behind the active horizon. In
        // heterogeneous mode the snapshot hand-over is the garbage
        // collector — but an analytics-free phase takes no snapshots, so a
        // bounded fallback keeps chains from growing without limit (a case
        // the paper does not discuss).
        if cs.commits_since_prune >= 128 {
            cs.commits_since_prune = 0;
            let min = db.inner.active.min_active_or(commit_ts);
            db.inner.recent.prune(min);
            db.inner.snapman.graveyard.drain(min);
            /// Versions one column may accumulate before the fallback GC
            /// trims its current chain store.
            const HETERO_CHAIN_CAP: u64 = 65_536;
            for t in db.inner.tables.read().iter() {
                for c in &t.cols {
                    c.versioned.release_frozen(min);
                    if heterogeneous
                        && c.versioned.current_store().version_count() > HETERO_CHAIN_CAP
                    {
                        c.versioned.gc(min);
                    }
                }
            }
        }
        drop(cs);
        // Group-commit fsync, off the serialized section: one leader's
        // fdatasync covers every record appended before it started, so
        // concurrent committers share syncs instead of queueing them.
        if let Some((dura, lsn)) = wal_pending {
            // An fsync failure after install cannot be rolled back (the
            // writes are visible) and must not be reported as success
            // (the WAL page cache state is unknowable after a failed
            // sync) — fail stop is the only honest option.
            dura.wal
                .sync_to(lsn)
                .expect("WAL fsync failed; cannot guarantee durability of an applied commit");
        }
        self.release();
        db.inner.stats.committed.fetch_add(1, Ordering::Relaxed);
        Ok(commit_ts)
    }

    /// Abort, discarding all local writes (free by construction).
    pub fn abort(mut self) {
        self.finished = true;
        self.release();
    }

    fn release(&mut self) {
        if let Some(token) = self.active_token.take() {
            self.db.inner.active.deregister(token);
        }
        if let Some(e) = self.epoch.take() {
            self.db.inner.snapman.unpin(&e);
        }
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            self.finished = true;
            self.release();
        }
    }
}
