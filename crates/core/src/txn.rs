//! Transactions: classification, reads on live or snapshotted data, local
//! writes, and the serialized commit protocol.

use crate::config::ProcessingMode;
use crate::db::AnkerDb;
use crate::error::{AbortReason, DbError, Result};
use crate::snapman::{Epoch, SnapCol};
use crate::table::{TableId, TableState};
use anker_mvcc::{
    ColRef, CommitRecord, IsolationLevel, LocalWrite, ScanStats, Transaction, TxnId, WriteRecord,
};
use anker_storage::{ColumnId, Value};
use anker_util::lockcheck::{self, classes};
use anker_util::{sched, FxHashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One conflicting commit reported to a [`Txn::commit_with_repair`]
/// round: the offender's commit timestamp and exactly the keys whose
/// writes intersected this transaction's read predicates — the keys the
/// repair closure should re-read (nothing else changed underneath it).
#[derive(Debug, Clone)]
pub struct RepairConflict {
    /// The conflicting commit's timestamp.
    pub commit_ts: u64,
    /// The intersecting keys, as `(table, column, row)`.
    pub keys: Vec<(TableId, ColumnId, u32)>,
}

/// Why one pipeline commit attempt did not go through.
enum AttemptError {
    /// Unrecoverable engine error (I/O, bounds).
    Hard(DbError),
    /// First-updater-wins write-write conflict: never repairable.
    WwConflict,
    /// Read-set validation failed against these committed transactions.
    Validation(Vec<RepairConflict>),
}

/// Transaction classification (§2.2): modifying, short-running transactions
/// are OLTP; long-running read-only analytics are OLAP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    /// Runs on the most recent representation; may write.
    Oltp,
    /// Read-only by contract; in heterogeneous mode it runs entirely on the
    /// newest snapshot epoch and never checks version chains.
    Olap,
}

/// A running transaction. Obtain with [`AnkerDb::begin`]; finish with
/// [`Txn::commit`] or [`Txn::abort`] (dropping aborts implicitly).
///
/// Reads go through [`Txn::get`]/[`Txn::get_value`] for single rows and
/// through the [`crate::ScanBuilder`] obtained from [`Txn::scan_on`] for
/// table scans with pushed-down predicates.
pub struct Txn {
    pub(crate) db: AnkerDb,
    pub(crate) inner: Transaction,
    kind: TxnKind,
    /// Pinned snapshot epoch (heterogeneous OLAP only).
    pub(crate) epoch: Option<Arc<Epoch>>,
    snap_cache: FxHashMap<(u16, u16), Arc<SnapCol>>,
    /// Per-transaction cache of resolved table states: avoids re-taking the
    /// tables RwLock on every operation (a measurable cache-line ping-pong
    /// between cores on the OLTP hot path).
    table_cache: Vec<Option<Arc<TableState>>>,
    /// Running total of all scan statistics this transaction produced.
    pub(crate) scan_stats: ScanStats,
    active_token: Option<anker_mvcc::ActiveToken>,
    finished: bool,
}

impl std::fmt::Debug for Txn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("id", &self.inner.id())
            .field("kind", &self.kind)
            .field("start_ts", &self.inner.start_ts())
            .finish()
    }
}

impl Txn {
    pub(crate) fn begin(db: AnkerDb, kind: TxnKind) -> Txn {
        let heterogeneous = db.inner.config.mode == ProcessingMode::Heterogeneous;
        let epoch = if heterogeneous && kind == TxnKind::Olap {
            Some(db.pin_current_epoch())
        } else {
            None
        };
        let start_ts = match &epoch {
            Some(e) => e.ts,
            None => db.inner.oracle.start_ts(),
        };
        let active_token = db.inner.active.register(start_ts);
        static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let id = TxnId(NEXT_ID.fetch_add(1, Ordering::Relaxed));
        Txn {
            db,
            inner: Transaction::begin(id, start_ts),
            kind,
            epoch,
            snap_cache: FxHashMap::default(),
            table_cache: Vec::new(),
            scan_stats: ScanStats::default(),
            active_token: Some(active_token),
            finished: false,
        }
    }

    /// Resolve (and cache) a table's state for the rest of this
    /// transaction. Tables are append-only registered, so the cache cannot
    /// go stale.
    pub(crate) fn table(&mut self, table: TableId) -> Arc<TableState> {
        let idx = table.0 as usize;
        if idx >= self.table_cache.len() {
            self.table_cache.resize(idx + 1, None);
        }
        if let Some(t) = &self.table_cache[idx] {
            return Arc::clone(t);
        }
        let state = self.db.table_state(table);
        // This table's data is now part of a transaction's footprint: close
        // its bulk-load window (see `AnkerDb::fill_column`).
        state.mark_observed();
        self.table_cache[idx] = Some(Arc::clone(&state));
        state
    }

    /// The transaction's classification.
    pub fn kind(&self) -> TxnKind {
        self.kind
    }

    /// The snapshot timestamp all reads observe. For heterogeneous OLAP
    /// transactions this is the epoch timestamp — slightly stale but
    /// serializable at that point (§2.2).
    pub fn start_ts(&self) -> u64 {
        self.inner.start_ts()
    }

    pub(crate) fn colref(table: TableId, col: ColumnId) -> ColRef {
        ColRef::new(table.0, col.0 as u16)
    }

    pub(crate) fn serializable_updater(&self) -> bool {
        self.kind == TxnKind::Oltp && self.db.inner.config.isolation == IsolationLevel::Serializable
    }

    /// The snapshot column for `(table, col)`, materialising it on first
    /// access (§2.2.2 lazy materialisation; shared slow path with
    /// [`crate::SnapshotReader`] in `snapman::resolve_snap_col`).
    pub(crate) fn snapshot_col(&mut self, table: TableId, col: ColumnId) -> Result<Arc<SnapCol>> {
        let key = (table.0, col.0 as u16);
        if let Some(sc) = self.snap_cache.get(&key) {
            return Ok(Arc::clone(sc));
        }
        let epoch = self.epoch.as_ref().expect("snapshot access without epoch");
        let sc = crate::snapman::resolve_snap_col(&self.db, epoch, table, col)?;
        self.snap_cache.insert(key, Arc::clone(&sc));
        Ok(sc)
    }

    /// Read the raw word of `(table, col, row)` under this transaction's
    /// visibility.
    pub fn get(&mut self, table: TableId, col: ColumnId, row: u32) -> Result<u64> {
        let cref = Self::colref(table, col);
        if let Some(own) = self.inner.own_write(cref, row) {
            return Ok(own);
        }
        if self.epoch.is_some() {
            // Heterogeneous OLAP: read the frozen snapshot in place — no
            // timestamps, no chains.
            let sc = self.snapshot_col(table, col)?;
            return Ok(sc.area().get(row)?);
        }
        let state = self.table(table);
        let cs = state.col(col.0);
        let area = cs.current_area();
        let v = cs.versioned.read(&area, row, self.inner.start_ts())?;
        if self.serializable_updater() {
            self.inner.log_row_read(cref, row);
        }
        Ok(v)
    }

    /// Typed read.
    pub fn get_value(&mut self, table: TableId, col: ColumnId, row: u32) -> Result<Value> {
        let ty = self.table(table).schema.def(col).ty;
        Ok(Value::decode(self.get(table, col, row)?, ty))
    }

    /// Buffer an update of `(table, col, row)` to `word`. Nothing shared is
    /// touched until commit; aborts are free.
    pub fn update(&mut self, table: TableId, col: ColumnId, row: u32, word: u64) -> Result<()> {
        if self.kind == TxnKind::Olap {
            return Err(DbError::ReadOnlyTransaction);
        }
        let cref = Self::colref(table, col);
        if self.db.inner.config.isolation == IsolationLevel::Serializable {
            // The update's target row is part of the read footprint.
            self.inner.log_row_read(cref, row);
        }
        self.inner.write(cref, row, word);
        Ok(())
    }

    /// Typed update.
    pub fn update_value(
        &mut self,
        table: TableId,
        col: ColumnId,
        row: u32,
        value: Value,
    ) -> Result<()> {
        self.update(table, col, row, value.encode())
    }

    /// Start building a scan over `table`: chain typed predicates and a
    /// projection on the returned [`crate::ScanBuilder`], then finish with
    /// one of its terminal methods. Predicates are pushed down into the
    /// block loops of both scan paths and are automatically converted into
    /// precision locks for serializable updaters — no manual
    /// `log_range`/`log_dict_eq` calls needed.
    ///
    /// ```
    /// # use anker_core::{AnkerDb, ColumnDef, DbConfig, LogicalType, Schema, TxnKind, Value};
    /// # let db = AnkerDb::new(DbConfig::default());
    /// # let t = db.create_table(
    /// #     "x", Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]), 8);
    /// # let v = db.schema(t).col("v");
    /// # db.fill_column(t, v, (0..8).map(|i| Value::Int(i).encode())).unwrap();
    /// let mut olap = db.begin(TxnKind::Olap);
    /// let (sum, _stats) = olap
    ///     .scan_on(t)
    ///     .range_i64(v, 2, 5)
    ///     .project(&[v])
    ///     .fold(0i64, |acc, _row, vals| acc + vals[0].as_int())
    ///     .unwrap();
    /// assert_eq!(sum, 2 + 3 + 4 + 5);
    /// ```
    pub fn scan_on(&mut self, table: TableId) -> crate::scan::ScanBuilder<'_> {
        crate::scan::ScanBuilder::new(self, table)
    }

    /// Running total of the scan statistics of every scan this transaction
    /// executed (each terminal scan method also returns its own
    /// [`ScanStats`]).
    pub fn scan_stats(&self) -> ScanStats {
        self.scan_stats
    }

    /// Commit. Read-only transactions commit without validation (they are
    /// serializable at their snapshot point); updaters go through the
    /// concurrent commit pipeline (see `DESIGN.md`, "Commit pipeline"):
    ///
    /// 1. latch every write row in ascending `(col, row)` order and check
    ///    write-write conflicts (first-updater-wins);
    /// 2. lock the validation shards covering the write and predicate
    ///    tables (ascending — the two sorted phases make concurrent
    ///    committers deadlock-free);
    /// 3. draw the commit timestamp and validate the read set against the
    ///    locked shards (serializable mode);
    /// 4. append the WAL record (carrying a `(commit_ts, seq)` pair — file
    ///    order is *not* timestamp order) and publish the commit record to
    ///    the write shards;
    /// 5. release the shards and install the latched rows — out of
    ///    timestamp order relative to other committers; readers are gated
    ///    by the stable-timestamp watermark, which only advances once
    ///    every older commit has fully installed;
    /// 6. group-commit fsync outside all locks.
    ///
    /// Equivalent to [`Txn::commit_with_repair`] with zero repair rounds.
    pub fn commit(self) -> Result<u64> {
        self.commit_with_repair(0, |_, _| Ok(()))
    }

    /// Commit with bounded conflict repair: when read-set validation fails,
    /// instead of aborting, wait until every conflicting commit is fully
    /// installed, advance the snapshot to the youngest conflicting commit,
    /// and hand the conflicting keys to `repair`, which re-reads them and
    /// rewrites the transaction's updates; then revalidate. At most
    /// `max_rounds` rounds; after that the transaction aborts with the
    /// usual [`AbortReason::ValidationFailed`]. Write-write conflicts are
    /// never repaired (first-updater-wins is the paper's §2.1 contract),
    /// and an error from `repair` aborts immediately with that error.
    ///
    /// The caller's closure must recompute its writes from the re-read
    /// values — the engine cannot know the transaction's logic. Typical
    /// shape:
    ///
    /// ```ignore
    /// txn.commit_with_repair(3, |t, conflicts| {
    ///     for c in conflicts {
    ///         for &(table, col, row) in &c.keys {
    ///             let fresh = t.get(table, col, row)?; // new snapshot
    ///             t.update(table, col, row, recompute(fresh))?;
    ///         }
    ///     }
    ///     Ok(())
    /// })
    /// ```
    pub fn commit_with_repair<F>(mut self, max_rounds: u32, mut repair: F) -> Result<u64>
    where
        F: FnMut(&mut Txn, &[RepairConflict]) -> Result<()>,
    {
        if self.finished {
            return Err(DbError::AlreadyFinished);
        }
        self.finished = true;
        let db = self.db.clone();

        if self.inner.writes().is_empty() {
            let start_ts = self.inner.start_ts();
            self.release();
            db.inner
                .stats
                .committed_read_only
                .fetch_add(1, Ordering::Relaxed);
            return Ok(start_ts);
        }

        let mut rounds = 0u32;
        loop {
            match self.commit_attempt() {
                Ok(commit_ts) => {
                    self.release();
                    db.inner.stats.committed.fetch_add(1, Ordering::Relaxed);
                    if rounds > 0 {
                        db.inner
                            .stats
                            .repaired_commits
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(commit_ts);
                }
                Err(AttemptError::WwConflict) => {
                    self.release();
                    db.inner.stats.aborted_ww.fetch_add(1, Ordering::Relaxed);
                    return Err(DbError::Aborted(AbortReason::WriteWriteConflict));
                }
                Err(AttemptError::Validation(conflicts)) => {
                    if rounds >= max_rounds {
                        self.release();
                        db.inner
                            .stats
                            .aborted_validation
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(DbError::Aborted(AbortReason::ValidationFailed {
                            conflicting_commit: conflicts[0].commit_ts,
                        }));
                    }
                    rounds += 1;
                    db.inner.stats.repair_rounds.fetch_add(1, Ordering::Relaxed);
                    sched::hit("repair:conflict");
                    // Wait for the watermark to cover the youngest
                    // conflicting commit (conflicts come in ascending ts
                    // order), then advance the snapshot to exactly that
                    // timestamp — never to the current watermark, which
                    // may already have run past a commit that published
                    // after our shard locks dropped. Such a commit would
                    // then sit at-or-below the new snapshot, escaping the
                    // next round's validation even though this round's
                    // repair never re-read its keys. `target` is safe on
                    // both sides: every conflictor of this round has
                    // ts <= target, so the repair reads see its writes
                    // once the watermark covers it; and any intersecting
                    // commit published after our shard locks dropped drew
                    // its timestamp after our aborted one — above target —
                    // so the next round's validation still scans it.
                    let target = conflicts.last().map(|c| c.commit_ts).unwrap_or(0);
                    let mut spins = 0u32;
                    while db.inner.oracle.last_completed() < target {
                        spins += 1;
                        if spins.is_multiple_of(64) {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    self.inner.advance_snapshot(target);
                    if let Err(e) = repair(&mut self, &conflicts) {
                        self.release();
                        return Err(e);
                    }
                }
                Err(AttemptError::Hard(e)) => {
                    self.release();
                    return Err(e);
                }
            }
        }
    }

    /// Release every install latch in `latched` without installing
    /// (abort path).
    fn unlatch_rows(&mut self, latched: &[(LocalWrite, u64, u64)]) {
        for (w, old_ts, _) in latched {
            let state = self.table(TableId(w.col.table));
            state
                .col(w.col.col as usize)
                .versioned
                .unlock_row(w.row, *old_ts);
        }
    }

    /// One pass through the commit pipeline (stages 1–6 of [`Txn::commit`]).
    fn commit_attempt(&mut self) -> std::result::Result<u64, AttemptError> {
        let db = self.db.clone();
        let start_ts = self.inner.start_ts();
        let serializable = db.inner.config.isolation == IsolationLevel::Serializable;
        let heterogeneous = db.inner.config.mode == ProcessingMode::Heterogeneous;

        // Tracing: one span per pipeline stage, chained with
        // `span_switch` so adjacent stages share a single clock read.
        // The whole chain — stages and the end-to-end `commit_total_ns`
        // histogram derived from it — is *sampled* (see
        // [`COMMIT_SAMPLE_SHIFT`]); only the attempt counter is exact.
        // A sampled attempt records every stage plus the total, so at
        // quiescence `commit_total_ns.count == commit_stage_latch_ns.count`
        // exactly. Every exit path below closes the open token (checked
        // by anker-lint's span-leak pass) via `record_commit_total`.
        obs::counter!(
            "commit_attempts_total",
            "Commit-pipeline entries, including ww/validation-aborted and repair-retried attempts"
        )
        .inc();
        let mut obs_tok =
            obs::span_begin_sampled(obs::stage!("commit_stage_latch"), COMMIT_SAMPLE_SHIFT);

        // Stage 1 — install latches. All write rows latch in ascending
        // (col, row) order *before* any shard lock; the global sort order
        // makes concurrent committers deadlock-free, and each latch
        // freezes the row's (ts, value) pair for the write-write check,
        // the commit record, and the eventual install.
        let mut writes: Vec<LocalWrite> = self.inner.writes().to_vec();
        writes.sort_unstable_by_key(|w| (w.col, w.row));
        let mut latched: Vec<(LocalWrite, u64, u64)> = Vec::with_capacity(writes.len());
        // Lock-order witness tokens for the row latches (the latches are
        // hand-rolled CAS words, so the lockcheck wrappers cannot cover
        // them). The key mirrors the sort order above, so the ordered-class
        // strictly-ascending rule checks exactly the deadlock-freedom
        // argument. On the abort returns below the vector unwinds with the
        // frame, matching `unlatch_rows`.
        let mut latch_witness: Vec<lockcheck::Held> = Vec::with_capacity(writes.len());
        for w in &writes {
            let state = self.table(TableId(w.col.table));
            let col = state.col(w.col.col as usize);
            let area = col.current_area();
            let witness = lockcheck::acquire(
                &classes::INSTALL_LATCH,
                ((w.col.table as u64) << 48) | ((w.col.col as u64) << 32) | w.row as u64,
            );
            match col.versioned.lock_row(&area, w.row) {
                Ok((old_ts, old_word)) => {
                    if old_ts > start_ts {
                        // First-updater-wins (§2.1).
                        col.versioned.unlock_row(w.row, old_ts);
                        self.unlatch_rows(&latched);
                        record_commit_total(obs_tok);
                        return Err(AttemptError::WwConflict);
                    }
                    latched.push((*w, old_ts, old_word));
                    latch_witness.push(witness);
                }
                Err(e) => {
                    self.unlatch_rows(&latched);
                    record_commit_total(obs_tok);
                    return Err(AttemptError::Hard(e.into()));
                }
            }
        }
        sched::hit("commit:latched");
        obs_tok = obs::span_switch(obs_tok, obs::stage!("commit_stage_validate"));

        // Stage 2 — validation-shard locks (ascending), covering the
        // tables written and the tables the read predicates touch.
        // Snapshot isolation skips validation and publishes no commit
        // records, so it takes no shard locks at all.
        let shard_tables: Vec<u16> = if serializable {
            writes
                .iter()
                .map(|w| w.col.table)
                .chain(self.inner.predicates().tables())
                .collect()
        } else {
            Vec::new()
        };
        let mut guards = serializable.then(|| db.inner.recent.lock_tables(&shard_tables));
        sched::hit("commit:shards");

        // Stage 3 — commit timestamp, allocated while holding the full
        // shard set: two committers sharing any shard serialize around
        // allocation, so per-shard record order stays timestamp order.
        // When a freezer parks allocation (a forced epoch or a GC window),
        // the shard locks MUST drop before waiting it out: an in-flight
        // committer may need them (publish, the periodic prune) before the
        // freezer's drain can complete, so blocking here while holding
        // them closes a cycle — committer waits on unfreeze, freezer waits
        // on drain, drain waits on this committer's shards. Re-locking is
        // sound because validation (stage 4) runs against the re-acquired
        // shard state; only the row latches ride across the wait, and no
        // committer past allocation ever takes a new row latch.
        let commit_ts = loop {
            if let Some(ts) = db.inner.oracle.try_begin_commit() {
                break ts;
            }
            drop(guards.take());
            sched::hit("commit:frozen-wait");
            db.inner.oracle.wait_unfrozen();
            guards = serializable.then(|| db.inner.recent.lock_tables(&shard_tables));
        };
        sched::hit("commit:validate");

        // Stage 4 — read-set validation via precision locking (§2.1),
        // against exactly the locked shards.
        if let Some(g) = &guards {
            let conflicts = g.conflicts(start_ts, self.inner.predicates());
            if !conflicts.is_empty() {
                db.inner.oracle.abort_commit(commit_ts);
                drop(guards);
                self.unlatch_rows(&latched);
                record_commit_total(obs_tok);
                return Err(AttemptError::Validation(
                    conflicts
                        .into_iter()
                        .map(|c| RepairConflict {
                            commit_ts: c.commit_ts,
                            keys: c
                                .keys
                                .into_iter()
                                .map(|(col, row)| {
                                    (TableId(col.table), ColumnId(col.col as usize), row)
                                })
                                .collect(),
                        })
                        .collect(),
                ));
            }
        }

        // Stage 5 — write-ahead logging (redo rule: the record must exist
        // before any of its effects can). Only the shard locks are held —
        // concurrent committers with disjoint footprints append in
        // whatever order they reach the log, so the record carries a
        // `(commit_ts, seq)` pair and recovery sorts. An append failure
        // still aborts cleanly: nothing has installed yet.
        obs_tok = obs::span_switch(obs_tok, obs::stage!("commit_stage_wal"));
        let mut wal_pending = None;
        if let Some(d) = db.inner.dura.get() {
            if d.level != anker_dura::DurabilityLevel::Off {
                let rec = anker_dura::WalRecord::Commit {
                    commit_ts,
                    seq: d.next_seq.fetch_add(1, Ordering::Relaxed),
                    writes: writes
                        .iter()
                        .map(|w| anker_dura::WalWrite {
                            table: w.col.table,
                            col: w.col.col,
                            row: w.row,
                            word: w.new_word,
                        })
                        .collect(),
                };
                match d.wal.append(&rec) {
                    Ok(lsn) => {
                        d.commits_since_ckpt.fetch_add(1, Ordering::Relaxed);
                        if d.level == anker_dura::DurabilityLevel::Fsync {
                            wal_pending = Some((Arc::clone(d), lsn));
                        }
                    }
                    Err(e) => {
                        db.inner.oracle.abort_commit(commit_ts);
                        drop(guards);
                        self.unlatch_rows(&latched);
                        record_commit_total(obs_tok);
                        return Err(AttemptError::Hard(e.into()));
                    }
                }
            }
        }
        sched::hit("commit:logged");
        obs_tok = obs::span_switch(obs_tok, obs::stage!("commit_stage_install"));

        // Publish the commit record to the write-table shards, then let
        // the shards go — validation by others proceeds while we install.
        // The record uses the latched old values: they are exact (the
        // latch froze them) and the record must be visible to validators
        // before our installs are (conservative, never the reverse).
        if let Some(g) = &mut guards {
            g.push(CommitRecord {
                commit_ts,
                writes: latched
                    .iter()
                    .map(|(w, _, old_word)| WriteRecord {
                        col: w.col,
                        row: w.row,
                        old: *old_word,
                        new: w.new_word,
                    })
                    .collect(),
            });
        }
        drop(guards);
        sched::hit("commit:pre-install");

        // Stage 6 — install. From here the commit is published (logged
        // and validated against); a failure cannot roll back, so it is
        // fail-stop. Heterogeneous mode installs inside the commit
        // section (snapshot materialisation must see a quiescent column);
        // homogeneous mode installs lock-free under the row latches.
        if heterogeneous {
            let mut cs = db.lock_commit();
            // Settle the snapshot state of every column we are about to
            // write (§2.2.2): pinned epochs missing the column get it
            // materialised now; unpinned ones are damage-marked.
            let mut seen: Vec<(u16, u16)> = Vec::with_capacity(latched.len());
            for (w, _, _) in &latched {
                let key = (w.col.table, w.col.col);
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                let state = self.table(TableId(key.0));
                // Fast path: the column is already settled (materialised
                // or damage-marked) for the newest epoch.
                // ORDERING: both Acquire loads pair with the snapshot
                // manager's Release stores (`trigger_epoch`, `note_write`)
                // so a settled marker implies the epoch state it claims.
                let newest = db.inner.snapman.newest_ts.load(Ordering::Acquire);
                if newest == 0
                    || state
                        .col(key.1 as usize)
                        .snapshot_ts
                        .load(Ordering::Acquire)
                        >= newest
                {
                    continue;
                }
                // PANIC-OK: fail-stop — the commit record is already
                // durable, so a half-installed commit cannot be rolled
                // back; dying with the install span open is designed.
                db.inner
                    .snapman
                    .note_write(&mut cs, &state, key.0, key.1, commit_ts)
                    .expect("snapshot materialisation failed mid-commit");
            }
            for (w, old_ts, old_word) in &latched {
                let state = self.table(TableId(w.col.table));
                let col = state.col(w.col.col as usize);
                // Re-resolve the area *after* note_write: materialisation
                // swaps the column area (contents identical, so the
                // latched old value stays exact).
                let area = col.current_area();
                // PANIC-OK: fail-stop after the durable commit record.
                col.versioned
                    .install_locked(&area, w.row, *old_ts, *old_word, w.new_word, commit_ts)
                    .expect("install failed after the commit was logged");
                // ORDERING: Release pairs with the materialisation path's
                // reads — a snapshot that sees this mutation timestamp
                // also sees the installed value.
                col.last_mutation_ts.store(commit_ts, Ordering::Release);
            }
            // Every install above released its row latch.
            latch_witness.clear();
            sched::hit("commit:installed");
            db.inner.oracle.complete_commit(commit_ts);

            // Snapshot trigger every n commits (§5.1(3)) — but only at a
            // commit-quiescent point: with out-of-order installs the live
            // columns match the watermark exactly only when nothing is in
            // flight. A skipped trigger retries on the next commit (the
            // counter is not reset), or an arriving OLAP forces one
            // through `pin_current_epoch`.
            cs.commits_since_snapshot += 1;
            cs.commits_since_prune += 1;
            if cs.commits_since_snapshot >= db.inner.config.snapshot_every_commits
                && db.inner.oracle.drained()
            {
                cs.commits_since_snapshot = 0;
                let now = db.inner.oracle.last_completed();
                db.inner.snapman.trigger_epoch(&mut cs, now);
                if db.inner.config.eager_materialization {
                    // §2.2.2's rejected eager alternative, kept as an
                    // ablation: snapshot every column right away.
                    // PANIC-OK: fail-stop after the durable commit record.
                    let tables: Vec<_> = db.inner.tables.read().clone();
                    for (tid, state) in tables.iter().enumerate() {
                        for cid in 0..state.cols.len() {
                            db.inner
                                .snapman
                                .materialize_column(&mut cs, state, tid as u16, cid as u16, now)
                                .expect("eager materialisation failed mid-commit");
                        }
                    }
                }
            }
            // Periodic housekeeping: prune the recently-committed list
            // and retire frozen chain stores behind the active horizon.
            // The snapshot hand-over is the garbage collector here — but
            // an analytics-free phase takes no snapshots, so a bounded
            // fallback keeps chains from growing without limit (a case
            // the paper does not discuss). The chain GC is safe without a
            // commit freeze: every heterogeneous install runs under the
            // commit section we hold.
            if cs.commits_since_prune >= 128 {
                cs.commits_since_prune = 0;
                let min = db.inner.active.min_active_or(commit_ts);
                db.inner.recent.prune(min);
                db.inner.snapman.graveyard.drain(min);
                /// Versions one column may accumulate before the fallback
                /// GC trims its current chain store.
                const HETERO_CHAIN_CAP: u64 = 65_536;
                for t in db.inner.tables.read().iter() {
                    for c in &t.cols {
                        c.versioned.release_frozen(min);
                        if c.versioned.current_store().version_count() > HETERO_CHAIN_CAP {
                            c.versioned.gc(min);
                        }
                    }
                }
            }
            drop(cs);
        } else {
            // Homogeneous: installs are fully concurrent — the row
            // latches are the only synchronisation.
            for (w, old_ts, old_word) in &latched {
                let state = self.table(TableId(w.col.table));
                let col = state.col(w.col.col as usize);
                let area = col.current_area();
                // PANIC-OK: fail-stop after the durable commit record.
                col.versioned
                    .install_locked(&area, w.row, *old_ts, *old_word, w.new_word, commit_ts)
                    .expect("install failed after the commit was logged");
                // ORDERING: Release, same pairing as the heterogeneous arm.
                col.last_mutation_ts.store(commit_ts, Ordering::Release);
            }
            // Every install above released its row latch.
            latch_witness.clear();
            sched::hit("commit:installed");
            db.inner.oracle.complete_commit(commit_ts);

            // Periodic housekeeping, cadenced by an atomic tick (the
            // install path holds no lock to keep a counter under); the
            // threshold-crossing committer takes the commit section just
            // for the prune.
            let tick = db.inner.prune_tick.fetch_add(1, Ordering::Relaxed) + 1;
            if tick.is_multiple_of(128) {
                let _cs = db.lock_commit();
                let min = db
                    .inner
                    .active
                    .min_active_or(db.inner.oracle.last_completed());
                db.inner.recent.prune(min);
                db.inner.snapman.graveyard.drain(min);
                for t in db.inner.tables.read().iter() {
                    for c in &t.cols {
                        c.versioned.release_frozen(min);
                    }
                }
            }
        }

        // Stage 7 — group-commit fsync, outside every lock and latch: one
        // leader's fdatasync covers every record appended before it
        // started, so concurrent committers share syncs instead of
        // queueing them.
        if let Some((dura, lsn)) = wal_pending {
            let obs_tok = obs::span_switch(obs_tok, obs::stage!("commit_stage_fsync"));
            sched::hit("commit:pre-fsync");
            // An fsync failure after install cannot be rolled back (the
            // writes are visible) and must not be reported as success
            // (the WAL page cache state is unknowable after a failed
            // sync) — fail stop is the only honest option.
            // PANIC-OK: fail-stop by design; the process dies with the
            // span open and the journal is diagnostic-only.
            dura.wal
                .sync_to(lsn)
                .expect("WAL fsync failed; cannot guarantee durability of an applied commit");
            record_commit_total(obs_tok);
        } else {
            record_commit_total(obs_tok);
        }
        Ok(commit_ts)
    }

    /// Abort, discarding all local writes (free by construction).
    pub fn abort(mut self) {
        self.finished = true;
        self.release();
    }

    fn release(&mut self) {
        if let Some(token) = self.active_token.take() {
            self.db.inner.active.deregister(token);
        }
        if let Some(e) = self.epoch.take() {
            self.db.inner.snapman.unpin(&e);
        }
    }
}

/// Commit tracing samples 1-in-2^5 attempts per thread: the pipeline is
/// sub-microsecond, so even two clock reads plus a histogram record on
/// *every* attempt measurably tax the commit itself (the unsampled
/// variants cost 10–30% — measured by `repro_obs --overhead`, recorded
/// in `BENCH_obs_overhead.json`). An unsampled attempt pays one counter
/// increment and one thread-local tick; a sampled attempt records every
/// stage, the end-to-end total, and the journal events, keeping the
/// distributions statistically faithful while `commit_attempts_total`
/// stays exact.
const COMMIT_SAMPLE_SHIFT: u32 = 5;

/// Close the stage chain and record the end-to-end attempt duration.
/// All exit paths feed this, so on a sampled attempt the total is always
/// recorded alongside the stages — at quiescence
/// `commit_total_ns.count == commit_stage_latch_ns.count` exactly.
#[inline]
fn record_commit_total(tok: obs::SpanToken) {
    let t0 = tok.start_ns();
    let end = obs::span_end(tok);
    if end == 0 {
        // Attempt not sampled (or `obs-off`): nothing was timed.
        return;
    }
    obs::histogram!(
        "commit_total_ns",
        "End-to-end nanoseconds per sampled commit-pipeline attempt, across every exit path"
    )
    .record(end.saturating_sub(t0));
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            self.finished = true;
            self.release();
        }
    }
}
