//! The metric manifest: force-register every metric the engine can emit.
//!
//! Registration is lazy (a metric exists once its call site first runs),
//! so a metrics listing taken from a partial run would silently omit
//! whatever that run didn't exercise — the fsync stage without
//! durability, recycling counters without spare areas, and so on.
//! [`obs_register_all`] touches every registration site's name up front;
//! `repro_obs --audit` calls it **before** its workload so the helps
//! below are the canonical metadata `METRICS.md` is generated from (the
//! registry is first-wins), and the CI clean-diff gate on that file turns
//! any rename or drift into a build failure.
//!
//! Keep the name/help pairs byte-identical to the instrumentation sites
//! (grep for `obs::counter!`/`obs::gauge!`/`obs::histogram!` and
//! `obs::stage!`/`obs::span!` across `core`, `dura`, and `mvcc`).
//! Metrics absorbed from legacy stats structs (`db_*`, `kernel_*`,
//! `os_*`, `wal_*`) are not listed here — [`crate::AnkerDb::metrics`]
//! folds them in with their own helps.

/// Register every engine metric with the global `obs` registry (idempotent).
pub fn obs_register_all() {
    // Span-derived stage histograms (one `<stage>_ns` per `obs::stage!` /
    // `obs::span!` site).
    const STAGES: [&str; 10] = [
        "commit_stage_latch_ns",
        "commit_stage_validate_ns",
        "commit_stage_wal_ns",
        "commit_stage_install_ns",
        "commit_stage_fsync_ns",
        "gc_pass_ns",
        "scan_morsel_ns",
        "snapshot_materialize_ns",
        "snapshot_rewire_ns",
        "wal_fsync_ns",
    ];
    for s in STAGES {
        obs::register_histogram(s, obs::STAGE_HELP);
    }

    // Commit pipeline (crates/core/src/txn.rs).
    obs::counter!(
        "commit_attempts_total",
        "Commit-pipeline entries, including ww/validation-aborted and repair-retried attempts"
    );
    obs::histogram!(
        "commit_total_ns",
        "End-to-end nanoseconds per sampled commit-pipeline attempt, across every exit path"
    );

    // Snapshot lifecycle (crates/core/src/snapman.rs).
    obs::counter!(
        "snapshot_pages_rewired_total",
        "Pages remapped by vm_snapshot when freezing a column into an epoch"
    );
    obs::counter!(
        "snapshot_areas_recycled_total",
        "vm_snapshot calls that reused a parked destination area (§4.1.3)"
    );
    obs::counter!(
        "snapshot_spare_parked_total",
        "Retired snapshot areas parked for vm_snapshot destination recycling"
    );
    obs::counter!(
        "snapshot_graveyard_unmapped_total",
        "Retired snapshot areas unmapped once the active-transaction horizon passed them"
    );
    obs::counter!(
        "snapshot_epoch_pins_total",
        "OLAP epoch pins taken (newest-fresh and explicit pins combined)"
    );
    obs::gauge!(
        "snapshot_epochs_pinned",
        "OLAP pins currently held across all live epochs"
    );

    // Scans (crates/core/src/scan.rs).
    obs::counter!("scan_morsels_total", "Morsels processed across all scans");
    obs::counter!(
        "scan_tight_rows_total",
        "Rows delivered through the tight (unchecked) scan path"
    );
    obs::counter!(
        "scan_checked_rows_total",
        "Rows that went through per-row visibility checks"
    );
    obs::counter!(
        "scan_chain_walks_total",
        "Rows whose value came from a version-chain walk"
    );
    obs::counter!(
        "scan_blocks_skipped_total",
        "Blocks pruned wholesale by zone maps"
    );
    obs::counter!(
        "scan_rows_filtered_total",
        "Rows read and then eliminated by pushed-down predicates"
    );
    obs::counter!(
        "scan_vector_blocks_total",
        "Blocks filtered through the selection-vector kernels"
    );
    obs::counter!(
        "scan_dense_blocks_total",
        "Blocks the zone maps proved all-match (no selection vector)"
    );

    // Version-chain GC (crates/mvcc/src/version.rs).
    obs::counter!(
        "mvcc_versions_pruned_total",
        "Chain versions reclaimed by GC passes across all columns"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn manifest_registers_every_listed_metric() {
        super::obs_register_all();
        let s = obs::snapshot();
        for name in [
            "commit_stage_fsync_ns",
            "commit_total_ns",
            "snapshot_rewire_ns",
            "wal_fsync_ns",
            "mvcc_versions_pruned_total",
        ] {
            assert!(
                s.iter().any(|m| m.name == name),
                "manifest did not register `{name}`"
            );
        }
        // Idempotent: a second call must not panic on kind clashes.
        super::obs_register_all();
    }
}
