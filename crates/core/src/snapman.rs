//! The snapshot manager: epoch triggering, lazy column-granular
//! materialisation, pinning, and retirement (paper §2.2.2–§2.2.3, §5.1(3)).
//!
//! * A **trigger** (every *n* commits) only registers an epoch timestamp —
//!   no snapshotting happens (§2.2.2 "only a timestamp for that snapshot is
//!   logged").
//! * A column is **materialised** for an epoch by the first post-trigger
//!   *write* to it (inside the commit section, before the write installs) or
//!   by the first OLAP *access* — whichever comes first. Either way the
//!   column's content still equals its state at the epoch timestamp, so all
//!   columns of an epoch are consistent with one single point in time even
//!   though they materialise at different wall-clock moments.
//! * Columns never touched and never read are never materialised (§2.2.2).
//! * One `vm_snapshot` can serve several epochs: if no write happened
//!   between two triggers, both epochs share the same frozen area.
//! * OLAP transactions **pin** the newest epoch; an epoch that is no longer
//!   newest and has no pins is retired, unmapping its areas — which, with
//!   the chain hand-over in [`anker_mvcc::VersionedColumn`], is the paper's
//!   implicit garbage collection.
//!
//! Locking: everything that materialises or triggers runs inside the
//! database's serialized commit section (the `&mut CommitState` parameter
//! is the capability token); pin/unpin only takes the epoch list mutex.

use crate::db::CommitState;
use crate::table::{ColumnState, TableState};
use anker_mvcc::ActiveTxns;
use anker_storage::ColumnArea;
use anker_util::lockcheck::{self, classes};
use anker_util::FxHashMap;
use anker_vmem::VmBackend;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A materialised snapshot column. On retirement the area is *not*
/// unmapped immediately: an OLTP reader may have acquired the area handle
/// just before the snapshot swap and still be reading through it (such
/// reads are correct — the per-row timestamp protocol routes it to chains
/// for anything newer — but unmapping under it would fault). Instead the
/// area is parked in the [`Graveyard`] tagged with its swap timestamp and
/// unmapped once the active-transaction horizon passes it.
pub(crate) struct SnapCol {
    area: ColumnArea,
    /// `last_completed` at the moment this area stopped being the current
    /// representation; any transaction still holding a stale handle has
    /// `start_ts <= swap_ts`.
    swap_ts: u64,
    graveyard: Arc<Graveyard>,
    /// When recycling is on, retirement parks the area for reuse instead.
    spare: Option<Arc<SpareAreas>>,
}

impl SnapCol {
    pub fn area(&self) -> &ColumnArea {
        &self.area
    }
}

impl Drop for SnapCol {
    fn drop(&mut self) {
        if let Some(spare) = &self.spare {
            spare.park(self.swap_ts, self.area.clone());
        } else {
            self.graveyard.park(self.swap_ts, self.area.clone());
        }
    }
}

/// Retired snapshot areas awaiting a safe point to unmap.
#[derive(Default)]
pub(crate) struct Graveyard {
    pending: Mutex<Vec<(u64, ColumnArea)>>,
}

impl Graveyard {
    fn park(&self, swap_ts: u64, area: ColumnArea) {
        self.pending.lock().push((swap_ts, area));
    }

    /// Unmap every parked area whose swap timestamp is strictly below the
    /// oldest active transaction's start timestamp: no live transaction can
    /// hold a handle to it any more.
    pub fn drain(&self, min_active_start: u64) {
        let mut pending = self.pending.lock();
        let before = pending.len();
        pending.retain(|(swap_ts, area)| {
            if *swap_ts < min_active_start {
                // Unmapping can only fail on address errors, which would be
                // an internal bug; areas are never partially unmapped.
                let _ = area.clone().unmap();
                false
            } else {
                true
            }
        });
        let unmapped = (before - pending.len()) as u64;
        if unmapped > 0 {
            obs::counter!(
                "snapshot_graveyard_unmapped_total",
                "Retired snapshot areas unmapped once the active-transaction horizon passed them"
            )
            .add(unmapped);
        }
    }

    /// Number of areas awaiting unmap (diagnostics).
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.pending.lock().len()
    }
}

/// Parking lot of still-mapped, retired snapshot areas for `vm_snapshot`
/// destination recycling (§4.1.3), keyed by mapped size and tagged with the
/// swap timestamp (a recycled destination is overwritten in place, which is
/// as hazardous for stale readers as unmapping — the same horizon applies).
#[derive(Default)]
pub(crate) struct SpareAreas {
    by_size: Mutex<FxHashMap<u64, Vec<(u64, ColumnArea)>>>,
}

impl SpareAreas {
    fn park(&self, swap_ts: u64, area: ColumnArea) {
        obs::counter!(
            "snapshot_spare_parked_total",
            "Retired snapshot areas parked for vm_snapshot destination recycling"
        )
        .inc();
        self.by_size
            .lock()
            .entry(area.mapped_bytes())
            .or_default()
            .push((swap_ts, area));
    }

    /// Take a parked area of `bytes` that is safe to overwrite in place:
    /// its swap timestamp must lie strictly below the **oldest active
    /// transaction's start timestamp** — the same horizon
    /// [`Graveyard::drain`] applies before unmapping. Gating on anything
    /// later (e.g. the current commit timestamp) recycles areas that a
    /// stale reader still holds a handle to, silently feeding it another
    /// column's bytes.
    fn take(&self, bytes: u64, min_active_start: u64) -> Option<ColumnArea> {
        let mut map = self.by_size.lock();
        let pool = map.get_mut(&bytes)?;
        let idx = pool.iter().position(|(ts, _)| *ts < min_active_start)?;
        Some(pool.swap_remove(idx).1)
    }
}

/// One snapshot epoch.
pub(crate) struct Epoch {
    /// The single point in time all of this epoch's columns represent.
    pub ts: u64,
    cols: lockcheck::Mutex<FxHashMap<(u16, u16), Arc<SnapCol>>>,
    pins: AtomicU64,
    /// True once any column was written *without* being materialised for
    /// this epoch (because nobody was reading it): the epoch can no longer
    /// guarantee a consistent multi-column view and must not be pinned.
    damaged: std::sync::atomic::AtomicBool,
}

impl Epoch {
    /// The materialised snapshot column for `(table, col)`, if present.
    pub fn col(&self, key: (u16, u16)) -> Option<Arc<SnapCol>> {
        self.cols.lock().get(&key).cloned()
    }

    /// Current pin count (OLAP transactions running on this epoch).
    #[allow(dead_code)]
    pub fn pins(&self) -> u64 {
        // ORDERING: Acquire pairs with the AcqRel pin/unpin RMWs so an
        // observer of the count also sees the pinner's prior work.
        self.pins.load(Ordering::Acquire)
    }

    /// Whether a write bypassed this epoch (see field docs).
    pub fn is_damaged(&self) -> bool {
        // ORDERING: Acquire pairs with `note_write`'s Release store, so a
        // reader that sees the damage also sees the write that caused it.
        self.damaged.load(Ordering::Acquire)
    }
}

/// Snapshot-manager statistics (all monotonic).
#[derive(Debug, Default)]
pub(crate) struct SnapStats {
    pub epochs_triggered: AtomicU64,
    pub epochs_retired: AtomicU64,
    pub columns_materialized: AtomicU64,
}

pub(crate) struct SnapshotManager {
    backend: Arc<dyn VmBackend>,
    /// The active-transaction registry, for the destination-recycling
    /// horizon (see [`SpareAreas::take`]).
    active: Arc<ActiveTxns>,
    /// Live epochs in ascending timestamp order; the last one is newest.
    epochs: lockcheck::Mutex<Vec<Arc<Epoch>>>,
    /// Timestamp of the newest epoch (0 = none). Lock-free mirror for the
    /// commit path's materialisation fast-path check.
    pub newest_ts: AtomicU64,
    pub graveyard: Arc<Graveyard>,
    spare: Option<Arc<SpareAreas>>,
    pub stats: SnapStats,
}

impl SnapshotManager {
    pub fn new(
        backend: Arc<dyn VmBackend>,
        active: Arc<ActiveTxns>,
        recycle: bool,
    ) -> SnapshotManager {
        SnapshotManager {
            backend,
            active,
            epochs: lockcheck::Mutex::new(&classes::SNAP_EPOCHS, 0, Vec::new()),
            newest_ts: AtomicU64::new(0),
            graveyard: Arc::<Graveyard>::default(),
            spare: recycle.then(Arc::<SpareAreas>::default),
            stats: SnapStats::default(),
        }
    }

    /// The newest epoch, if any.
    #[allow(dead_code)]
    pub fn newest(&self) -> Option<Arc<Epoch>> {
        self.epochs.lock().last().cloned()
    }

    /// Register a new epoch at `ts` (commit section only) and retire
    /// superseded, unpinned epochs.
    pub fn trigger_epoch(&self, _cs: &mut CommitState, ts: u64) -> Arc<Epoch> {
        let epoch = Arc::new(Epoch {
            ts,
            // Ordered by epoch timestamp: the only place two epochs' column
            // maps could nest is an ascending walk of the epoch list.
            cols: lockcheck::Mutex::new(&classes::SNAP_EPOCH_COLS, ts, FxHashMap::default()),
            pins: AtomicU64::new(0),
            damaged: std::sync::atomic::AtomicBool::new(false),
        });
        let mut epochs = self.epochs.lock();
        debug_assert!(epochs.last().map(|e| e.ts <= ts).unwrap_or(true));
        epochs.push(Arc::clone(&epoch));
        // ORDERING: Release pairs with the Acquire load in `note_write`'s
        // fast-path marker — seeing the new timestamp implies the epoch is
        // already in the list.
        self.newest_ts.store(ts, Ordering::Release);
        self.stats.epochs_triggered.fetch_add(1, Ordering::Relaxed);
        self.retire_locked(&mut epochs);
        epoch
    }

    /// Pin the newest epoch if it can still serve a new OLAP transaction:
    /// it must be undamaged (no write bypassed it) and at most
    /// `max_age_commits` commits behind `now_ts` (the paper's freshness
    /// bound: a snapshot at least every *n* commits). Returns `None` when a
    /// fresh epoch must be created instead.
    ///
    /// Pinning and damage-marking both happen under the epoch-list mutex,
    /// so a writer either sees the pin (and materialises for the epoch) or
    /// the reader sees the damage (and asks for a fresh epoch).
    pub fn pin_newest_fresh(&self, now_ts: u64, max_age_commits: u64) -> Option<Arc<Epoch>> {
        let epochs = self.epochs.lock();
        let newest = epochs.last()?;
        if newest.is_damaged() || now_ts.saturating_sub(newest.ts) > max_age_commits {
            return None;
        }
        // ORDERING: AcqRel — the pin must be a full synchronization point
        // with `unpin`/`retire_locked` so a retirer that reads 0 sees
        // everything every past pinner did, and a pinner sees the epoch
        // fully published.
        newest.pins.fetch_add(1, Ordering::AcqRel);
        note_epoch_pin();
        Some(Arc::clone(newest))
    }

    /// Pin a specific epoch (used for a just-created epoch while the
    /// creating thread still holds the commit lock, so no write can damage
    /// it in between).
    pub fn pin_epoch(&self, epoch: &Arc<Epoch>) {
        let _order = self.epochs.lock();
        // ORDERING: AcqRel, same pin protocol as `pin_newest_fresh`.
        epoch.pins.fetch_add(1, Ordering::AcqRel);
        note_epoch_pin();
    }

    /// Unpin an epoch (OLAP transaction end); retires it if superseded and
    /// now unpinned.
    pub fn unpin(&self, epoch: &Arc<Epoch>) {
        // ORDERING: AcqRel — the Release half publishes this reader's last
        // accesses before the count drops (so retirement cannot unmap under
        // it); the Acquire half orders the retire scan below after the
        // decrement.
        let prev = epoch.pins.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "unpin without pin");
        obs::gauge!(
            "snapshot_epochs_pinned",
            "OLAP pins currently held across all live epochs"
        )
        .dec();
        let mut epochs = self.epochs.lock();
        self.retire_locked(&mut epochs);
    }

    /// Drop every epoch that is superseded and unpinned. The newest epoch
    /// always stays (it serves the next OLAP arrival).
    fn retire_locked(&self, epochs: &mut Vec<Arc<Epoch>>) {
        let n = epochs.len();
        if n <= 1 {
            return;
        }
        let mut retired = 0u64;
        // ORDERING: Acquire pairs with `unpin`'s AcqRel decrement — a zero
        // count means every reader's accesses happened-before this drop.
        for i in (0..n - 1).rev() {
            if epochs[i].pins.load(Ordering::Acquire) == 0 {
                // Dropping the epoch drops its SnapCol arcs; the last arc
                // unmaps (or parks) each area.
                epochs.remove(i);
                retired += 1;
            }
        }
        if retired > 0 {
            self.stats
                .epochs_retired
                .fetch_add(retired, Ordering::Relaxed);
        }
    }

    /// Number of live epochs.
    pub fn live_epochs(&self) -> usize {
        self.epochs.lock().len()
    }

    /// Handle an imminent write to `(table_id, col_id)` (commit section
    /// only, *before* the write installs): every **pinned** epoch missing
    /// the column gets it materialised now (an active reader may still ask
    /// for it); unpinned epochs are damage-marked instead — nobody is
    /// reading them, so paying `vm_snapshot` + copy-on-write for them would
    /// tax pure OLTP throughput for nothing (the paper's Figure 8 shows
    /// heterogeneous OLTP throughput matching homogeneous, which rules out
    /// unconditional write-triggered materialisation).
    pub fn note_write(
        &self,
        cs: &mut CommitState,
        table: &TableState,
        table_id: u16,
        col_id: u16,
        now_ts: u64,
    ) -> anker_vmem::Result<()> {
        let key = (table_id, col_id);
        let to_materialize = {
            let epochs = self.epochs.lock();
            let mut need = false;
            for e in epochs.iter() {
                if e.cols.lock().contains_key(&key) {
                    continue;
                }
                // ORDERING: the pin Acquire pairs with the AcqRel pin RMWs
                // (a seen pin implies the reader is fully registered); the
                // damage Release pairs with `is_damaged`'s Acquire.
                if e.pins.load(Ordering::Acquire) > 0 {
                    need = true;
                } else {
                    e.damaged.store(true, Ordering::Release);
                }
            }
            need
        };
        if to_materialize {
            self.materialize_column(cs, table, table_id, col_id, now_ts)?;
        }
        // Fast-path marker: this column is settled for the current newest
        // epoch (either materialised or the epoch is damaged).
        // ORDERING: the Acquire load pairs with `trigger_epoch`'s Release;
        // the Release store pairs with the commit path's Acquire check of
        // `snapshot_ts`, which must also see the settled epoch state.
        table
            .col(col_id as usize)
            .snapshot_ts
            .store(self.newest_ts.load(Ordering::Acquire), Ordering::Release);
        Ok(())
    }

    /// Materialise `(table_id, col_id)` for every live epoch that misses it
    /// and can still consistently receive it (commit section only). Called
    /// by [`SnapshotManager::note_write`] for pinned epochs and by the OLAP
    /// read path on first access.
    ///
    /// Returns the snapshot column now registered for the **newest** such
    /// epoch.
    pub fn materialize_column(
        &self,
        _cs: &mut CommitState,
        table: &TableState,
        table_id: u16,
        col_id: u16,
        now_ts: u64,
    ) -> anker_vmem::Result<Option<Arc<SnapCol>>> {
        let epochs: Vec<Arc<Epoch>> = self.epochs.lock().clone();
        if epochs.is_empty() {
            return Ok(None);
        }
        let key = (table_id, col_id);
        let col: &ColumnState = table.col(col_id as usize);
        let last_mutation = col.last_mutation();
        // Which live epochs miss this column and may still take it? A
        // damaged epoch is only served columns whose state still matches
        // its timestamp (pinned readers may have started before the damage;
        // their columns of interest must satisfy the invariant below).
        let missing: Vec<&Arc<Epoch>> = epochs
            .iter()
            .filter(|e| last_mutation <= e.ts && !e.cols.lock().contains_key(&key))
            .collect();
        if missing.is_empty() {
            return Ok(epochs.iter().rev().find_map(|e| e.col(key)));
        }
        // Only actual materialisation work is spanned — the cache-hit early
        // returns above are the fast path and would drown the distribution.
        let _obs_mat = obs::span!("snapshot_materialize");
        // One vm_snapshot serves all missing epochs: the column's state has
        // not changed since before the oldest of them.
        let cur = col.current_area();
        let bytes = cur.mapped_bytes();
        // §4.1.3 destination recycling is gated on the *active-transaction
        // horizon*, not on `now_ts`: a stale reader that grabbed the area
        // handle just before an earlier swap may still be reading through
        // it, and overwriting the area in place is as hazardous for it as
        // unmapping (same rule as `Graveyard::drain`).
        let recycle_horizon = self.active.min_active_or(now_ts);
        let dst = self
            .spare
            .as_ref()
            .and_then(|s| s.take(bytes, recycle_horizon));
        let recycled = dst.is_some();
        // The rewiring itself (the kernel remap) gets its own stage so the
        // report can split "vm_snapshot µs" out of the materialise total.
        let obs_rw = obs::span_begin(obs::stage!("snapshot_rewire"));
        let rewired = self
            .backend
            .vm_snapshot(dst.map(|a| a.addr()), cur.addr(), bytes);
        obs::span_end(obs_rw);
        let fresh_addr = rewired?;
        obs::counter!(
            "snapshot_pages_rewired_total",
            "Pages remapped by vm_snapshot when freezing a column into an epoch"
        )
        .add(bytes.div_ceil(self.backend.page_size()));
        if recycled {
            obs::counter!(
                "snapshot_areas_recycled_total",
                "vm_snapshot calls that reused a parked destination area (§4.1.3)"
            )
            .inc();
        }
        // The duplicate becomes the new most-recent representation; the old
        // area freezes into the snapshot (Figure 1, step 4).
        let fresh = ColumnArea::from_raw_on(Arc::clone(&self.backend), fresh_addr, cur.rows());
        let old = col.swap_area(fresh);
        // Hand the version chains over (they serve pre-epoch OLTP readers
        // until the active horizon passes the newest epoch timestamp).
        let newest_missing_ts = missing.iter().map(|e| e.ts).max().expect("nonempty");
        col.versioned.freeze_epoch(newest_missing_ts);
        let snap = Arc::new(SnapCol {
            area: old,
            swap_ts: now_ts,
            graveyard: Arc::clone(&self.graveyard),
            spare: self.spare.clone(),
        });
        for e in missing {
            e.cols.lock().insert(key, Arc::clone(&snap));
        }
        // ORDERING: Release pairs with the commit fast-path's Acquire load
        // of `snapshot_ts` — seeing the timestamp implies the snapshot
        // column is registered in every missing epoch above.
        col.snapshot_ts.store(newest_missing_ts, Ordering::Release);
        self.stats
            .columns_materialized
            .fetch_add(1, Ordering::Relaxed);
        Ok(Some(snap))
    }
}

/// Pin accounting shared by [`SnapshotManager::pin_newest_fresh`] and
/// [`SnapshotManager::pin_epoch`]; the matching gauge decrement lives in
/// [`SnapshotManager::unpin`].
#[inline]
fn note_epoch_pin() {
    obs::counter!(
        "snapshot_epoch_pins_total",
        "OLAP epoch pins taken (newest-fresh and explicit pins combined)"
    )
    .inc();
    obs::gauge!(
        "snapshot_epochs_pinned",
        "OLAP pins currently held across all live epochs"
    )
    .inc();
}

/// Resolve the snapshot column of `(table, col)` for `epoch`,
/// materialising it under the commit lock on first access (§2.2.2 lazy
/// materialisation). The shared slow path behind both the per-transaction
/// cache ([`crate::Txn`]) and the per-reader cache
/// ([`crate::SnapshotReader`]): the double-checked lookup means the hot
/// path is one epoch-map probe and the commit lock is taken at most once
/// per (epoch, column) across the whole system.
pub(crate) fn resolve_snap_col(
    db: &crate::db::AnkerDb,
    epoch: &Arc<Epoch>,
    table: crate::table::TableId,
    col: anker_storage::ColumnId,
) -> crate::error::Result<Arc<SnapCol>> {
    let key = (table.0, col.0 as u16);
    // The epoch read path bypasses `Txn::table`, but it observes the
    // table's data all the same: close its bulk-load window.
    let state = db.table_state(table);
    state.mark_observed();
    if let Some(sc) = epoch.col(key) {
        return Ok(sc);
    }
    // First access: materialise under the commit lock.
    let mut cs = db.lock_commit();
    if let Some(sc) = epoch.col(key) {
        return Ok(sc);
    }
    let now = db.inner.oracle.last_completed();
    db.inner
        .snapman
        .materialize_column(&mut cs, &state, table.0, col.0 as u16, now)?
        .expect("live epoch exists");
    Ok(epoch.col(key).expect("column just materialised"))
}

#[cfg(test)]
mod tests {
    use crate::config::DbConfig;
    use crate::db::AnkerDb;
    use crate::table::TableId;
    use crate::txn::TxnKind;
    use anker_mvcc::BLOCK_ROWS;
    use anker_storage::{ColumnDef, ColumnId, LogicalType, Schema, Value};

    fn two_column_db(rows: u32) -> (AnkerDb, TableId, ColumnId, ColumnId) {
        let mut cfg = DbConfig::heterogeneous_serializable()
            .with_snapshot_every(1)
            .with_gc_interval(None);
        cfg.recycle_snapshot_areas = true;
        let db = AnkerDb::new(cfg);
        let t = db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", LogicalType::Int),
                ColumnDef::new("b", LogicalType::Int),
            ]),
            rows,
        );
        let a = db.schema(t).col("a");
        let b = db.schema(t).col("b");
        db.fill_column(t, a, (0..rows).map(|_| Value::Int(10).encode()))
            .unwrap();
        db.fill_column(t, b, (0..rows).map(|_| Value::Int(100).encode()))
            .unwrap();
        (db, t, a, b)
    }

    /// §4.1.3 destination recycling must be gated on the oldest *active
    /// transaction*, not on the current commit timestamp: a reader that
    /// acquired a column-area handle just before the snapshot swap may
    /// still be reading through it long after the swap, and recycling the
    /// area rewires it — in place — onto a *different column's* data.
    ///
    /// Pre-fix (`SpareAreas::take` gated on `now_ts`), the stale handle
    /// below observes column `b`'s values through what used to be column
    /// `a`'s area; with the horizon fix the parked area is left alone
    /// while any transaction that could hold its handle is still active.
    #[test]
    fn recycling_waits_for_the_active_transaction_horizon() {
        let (db, t, a, b) = two_column_db(512);

        // A long-running OLTP transaction grabs a handle to column `a`'s
        // current area — exactly what the read path does between
        // `current_area()` and the versioned read.
        let t_stale = db.begin(TxnKind::Oltp);
        let stale_area = db.table_state(t).col(a.0).current_area();

        // An OLAP transaction materialises column `a` for epoch E1: `a`'s
        // area is swapped and the old area (our stale handle) freezes into
        // the snapshot.
        let mut o1 = db.begin(TxnKind::Olap);
        assert_eq!(o1.get_value(t, a, 0).unwrap(), Value::Int(10));
        o1.commit().unwrap();

        // A write to `b` commits: it triggers epoch E2, which retires the
        // unpinned E1 and parks the frozen area in the recycling pool.
        let mut w = db.begin(TxnKind::Oltp);
        w.update_value(t, b, 0, Value::Int(200)).unwrap();
        w.commit().unwrap();

        // A second OLAP transaction materialises column `b` for E2. The
        // recycler now sees a parked area of the right size; `t_stale`
        // (started before the swap) still holds its handle, so taking it
        // would overwrite memory a live reader is looking at.
        let mut o2 = db.begin(TxnKind::Olap);
        assert_eq!(o2.get_value(t, b, 0).unwrap(), Value::Int(200));
        o2.commit().unwrap();

        // The stale handle must keep seeing column `a`'s frozen content.
        assert_eq!(
            stale_area.get(0).unwrap(),
            Value::Int(10).encode(),
            "recycled area was overwritten under an active reader"
        );
        drop(t_stale);
    }

    /// A zone map primed while an area was still the current, writable
    /// representation must never prune a snapshot scan after the area
    /// freezes: `swap_area` drops the cached summary.
    #[test]
    fn zone_map_primed_before_a_write_never_misprunes_after_freeze() {
        let db = AnkerDb::new(
            DbConfig::heterogeneous_serializable()
                .with_snapshot_every(1)
                .with_gc_interval(None),
        );
        let t = db.create_table(
            "t",
            Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]),
            64,
        );
        let v = db.schema(t).col("v");
        db.fill_column(t, v, (0..64).map(|i| Value::Int(i).encode()))
            .unwrap();

        // Prime a summary on the *current* area (max = 63).
        let zm = db
            .table_state(t)
            .col(v.0)
            .current_area()
            .zone_map(LogicalType::Int, BLOCK_ROWS)
            .unwrap();
        assert_eq!(zm.block_range(0), (0.0, 63.0));

        // A committed write moves a value far outside the primed bounds.
        let mut w = db.begin(TxnKind::Oltp);
        w.update_value(t, v, 3, Value::Int(1_000)).unwrap();
        w.commit().unwrap();

        // The OLAP scan below materialises the column: the written area
        // freezes into the snapshot. Its zone map must reflect the write,
        // or the only matching block gets pruned and the row vanishes.
        let mut olap = db.begin(TxnKind::Olap);
        let (count, stats) = olap.scan_on(t).range_i64(v, 900, 1_100).count().unwrap();
        olap.commit().unwrap();
        assert_eq!(stats.blocks_skipped, 0, "stale zone map pruned the block");
        assert_eq!(count, 1, "the updated row must be found");
    }
}
