//! # anker-core — AnKerDB
//!
//! A main-memory, column-oriented transaction processing system that
//! reintroduces **heterogeneous processing** on top of MVCC, after the
//! SIGMOD'18 paper *"Accelerating Analytical Processing in MVCC using
//! Fine-Granular High-Frequency Virtual Snapshotting"*:
//!
//! * Short-running, modifying **OLTP** transactions run under MVCC on the
//!   most recent representation of every column.
//! * Long-running, read-only **OLAP** transactions run on **virtual column
//!   snapshots** created at high frequency with the custom `vm_snapshot`
//!   system call (simulated in [`anker_vmem`]); they scan frozen columns in
//!   tight loops with zero timestamp or version-chain checks.
//! * Snapshots are **column granular** and **lazy**: a trigger every *n*
//!   commits registers only a timestamp; a column materialises on its first
//!   post-trigger write or first OLAP access. Version chains are handed
//!   over with the snapshot and dropped wholesale when it retires —
//!   garbage collection for free.
//! * The same engine runs in **homogeneous** mode (snapshots disabled, a GC
//!   thread pruning chains) under snapshot isolation or full
//!   serializability, reproducing the paper's three evaluated
//!   configurations (§5.1).
//!
//! Start with [`AnkerDb::new`], create tables, then [`AnkerDb::begin`]
//! transactions classified as [`TxnKind::Oltp`] or [`TxnKind::Olap`].
//!
//! ## Example
//!
//! ```
//! use anker_core::{AnkerDb, ColumnDef, DbConfig, LogicalType, Schema, TxnKind, Value};
//!
//! let db = AnkerDb::new(DbConfig::heterogeneous_serializable().with_snapshot_every(100));
//! let table = db.create_table(
//!     "accounts",
//!     Schema::new(vec![ColumnDef::new("balance", LogicalType::Int)]),
//!     1000,
//! );
//! let balance = db.schema(table).col("balance");
//! db.fill_column(table, balance, (0..1000).map(|_| Value::Int(10).encode())).unwrap();
//!
//! // OLTP: short read-modify-write under MVCC.
//! let mut txn = db.begin(TxnKind::Oltp);
//! txn.update_value(table, balance, 3, Value::Int(25)).unwrap();
//! txn.commit().unwrap();
//!
//! // OLAP: tight-loop aggregation over a virtual column snapshot, with the
//! // predicate pushed down into the scan (and auto-registered as a
//! // precision lock for serializable updaters).
//! let mut olap = db.begin(TxnKind::Olap);
//! let (total, _stats) = olap
//!     .scan_on(table)
//!     .range_i64(balance, 11, i64::MAX)
//!     .project(&[balance])
//!     .fold(0i64, |acc, _row, vals| acc + vals[0].as_int())
//!     .unwrap();
//! olap.commit().unwrap();
//! assert_eq!(total, 25);
//! ```

pub mod config;
pub mod db;
pub mod durability;
pub mod error;
pub(crate) mod kernels;
pub mod obs_manifest;
pub mod reader;
pub mod scan;
pub mod snapman;
pub mod table;
pub mod txn;

pub use config::{BackendKind, DbConfig, ProcessingMode};
pub use db::{AnkerDb, CommitState, DbStatsSnapshot};
pub use durability::RecoveryReport;
pub use error::{AbortReason, DbError, Result};
pub use obs_manifest::obs_register_all;
pub use reader::SnapshotReader;
pub use scan::{ReaderScanBuilder, ScanBuilder, ScanPartition};
pub use table::TableId;
pub use txn::{RepairConflict, Txn, TxnKind};

// Re-export the pieces users need to talk to the API.
pub use anker_dura::{DurabilityLevel, WalStatsSnapshot};
pub use anker_mvcc::{FilterSel, IsolationLevel, ScanStats, TRACKED_FILTERS};
pub use anker_storage::{ColumnDef, ColumnId, Dictionary, LogicalType, Schema, Value};
pub use anker_vmem::{KernelStats, OsStatsSnapshot};

/// The observability crate, re-exported so `AnkerDb::metrics` callers can
/// name [`obs::MetricsSnapshot`] and the render functions without adding
/// a dependency of their own.
pub use obs;
