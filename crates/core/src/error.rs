//! Error and abort types of the database layer.

use std::fmt;

/// Why a transaction aborted. Aborts are normal outcomes under optimistic
/// concurrency control, not failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// First-updater-wins: another transaction committed a write to the
    /// same row after this transaction started (§2.1, "write-write
    /// conflicts are detected at commit time").
    WriteWriteConflict,
    /// Precision-locking validation failed: a recently committed write
    /// intersects this transaction's read predicates (§2.1). Carries the
    /// offending commit timestamp.
    ValidationFailed { conflicting_commit: u64 },
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::WriteWriteConflict => write!(f, "write-write conflict"),
            AbortReason::ValidationFailed { conflicting_commit } => {
                write!(
                    f,
                    "read-set validation failed against commit {conflicting_commit}"
                )
            }
        }
    }
}

/// Errors of the database layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// The transaction had to abort (see [`AbortReason`]).
    Aborted(AbortReason),
    /// A write was attempted through a read-only (OLAP) transaction.
    ReadOnlyTransaction,
    /// A memory error from the simulated kernel (indicates a bug or
    /// resource exhaustion, not a recoverable condition).
    Vm(anker_vmem::VmError),
    /// The transaction was already finished (committed or aborted).
    AlreadyFinished,
    /// [`crate::AnkerDb::fill_column`] was called after the first
    /// transaction had begun. Bulk loading bypasses versioning (load
    /// timestamp 0), so a load racing live transactions would corrupt
    /// visibility silently; the engine rejects it instead.
    LoadAfterBegin,
    /// A [`crate::SnapshotReader`] was requested from a homogeneous-mode
    /// database: there are no snapshot epochs to pin. Detached readers
    /// exist only in heterogeneous processing mode.
    SnapshotsDisabled,
    /// A durability operation failed: WAL I/O, a corrupt log or
    /// checkpoint file beyond the tolerated torn tail, or a recovery
    /// record inconsistent with the rebuilt catalog.
    Dura(anker_dura::DuraError),
    /// A durability operation ([`crate::AnkerDb::checkpoint`], WAL
    /// statistics) was requested but the database has no durability
    /// directory configured.
    DurabilityDisabled,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Aborted(r) => write!(f, "transaction aborted: {r}"),
            DbError::ReadOnlyTransaction => {
                write!(f, "write attempted in a read-only (OLAP) transaction")
            }
            DbError::Vm(e) => write!(f, "memory subsystem error: {e}"),
            DbError::AlreadyFinished => write!(f, "transaction already finished"),
            DbError::LoadAfterBegin => {
                write!(
                    f,
                    "fill_column is a load-time operation: it must complete \
                     before the first transaction begins"
                )
            }
            DbError::SnapshotsDisabled => {
                write!(
                    f,
                    "snapshot readers require heterogeneous processing mode \
                     (homogeneous databases take no snapshot epochs)"
                )
            }
            DbError::Dura(e) => write!(f, "durability error: {e}"),
            DbError::DurabilityDisabled => {
                write!(
                    f,
                    "no durability directory configured \
                     (set DbConfig::durability_dir or use AnkerDb::open)"
                )
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<anker_vmem::VmError> for DbError {
    fn from(e: anker_vmem::VmError) -> DbError {
        DbError::Vm(e)
    }
}

impl From<anker_dura::DuraError> for DbError {
    fn from(e: anker_dura::DuraError) -> DbError {
        DbError::Dura(e)
    }
}

/// Result alias of the database layer.
pub type Result<T> = std::result::Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DbError::Aborted(AbortReason::ValidationFailed {
            conflicting_commit: 9,
        });
        assert!(e.to_string().contains("commit 9"));
        assert!(DbError::ReadOnlyTransaction
            .to_string()
            .contains("read-only"));
    }

    #[test]
    fn vm_errors_convert() {
        let e: DbError = anker_vmem::VmError::OutOfMemory.into();
        assert!(matches!(e, DbError::Vm(anker_vmem::VmError::OutOfMemory)));
    }
}
