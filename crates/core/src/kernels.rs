//! Vectorized scan kernels: column-at-a-time predicate evaluation over
//! 1024-row blocks through reusable **selection vectors**, with
//! monomorphized, branch-free inner loops and deterministic **adaptive
//! conjunct ordering**.
//!
//! The paper makes analytical scans cheap by scanning frozen snapshot
//! columns without version checks; this module removes the remaining
//! per-tuple interpretation cost. Instead of calling a `matches(word)`
//! dispatch once per row per filter, each filter runs as one
//! *kernel* over a whole block:
//!
//! * the **first** kernel of a block consumes the raw column block and
//!   produces a selection vector (`u32` row offsets within the block);
//! * every **later** kernel refines the selection in place, touching only
//!   the still-selected lanes of its own column;
//! * a block whose zone map proves *all-match* for every filter never
//!   materialises indices at all — the selection stays **dense**
//!   ([`SelVec::is_dense`]), the fused count path adds the block's row
//!   count without reading any column data, and emission walks `0..n`
//!   directly ([`ScanStats::dense_blocks`]).
//!
//! The inner loops are written branch-free (`out[m] = i; m += pred as
//! usize`) so LLVM can flatten them to straight-line compare/select code;
//! each [`FilterKind`] gets its own monomorphized instantiation of the
//! generic loop via [`SelVec::apply`]'s closure parameter.
//!
//! **Adaptive ordering** ([`AdaptiveOrder`]) re-ranks the conjuncts
//! cheapest-and-most-selective-first from observed pass rates, re-deciding
//! only at block boundaries and only from *completed* blocks of the
//! current work range. Order never affects which rows a conjunction
//! selects (filters are exact and intersective) and the per-range state
//! resets at every morsel start, so results, fold accumulators, and even
//! the kernel counters are bit-identical across thread counts — morsel
//! boundaries depend only on table size.
//!
//! The scalar escape hatch (`ANKER_SCALAR_SCAN=1`, or
//! [`crate::DbConfig::scalar_scan`]) reverts the block loops to the
//! pre-vectorized row-at-a-time dispatch for ablation runs; kernel and
//! scalar paths are property-tested equivalent (`tests/vector_scan.rs`).

use anker_mvcc::{Pred, ScanStats, Transaction, TRACKED_FILTERS};
use anker_storage::{rank, ColumnId, LogicalType};

/// Integer bounds within `±2^52` convert to `f64` exactly *and* sit where
/// an integer-valued rank equal to them can only have come from that very
/// integer (the rounding error of `v as f64` stays below 1 there). Used
/// by the all-match test, which — unlike pruning — needs the implication
/// in the strict direction.
fn exact_i64(x: i64) -> bool {
    const EXACT: i64 = 1 << 52;
    (-EXACT..=EXACT).contains(&x)
}

/// One compiled per-column filter.
#[derive(Debug, Clone)]
pub(crate) enum FilterKind {
    /// `lo <= value <= hi` on the decoded `i64` of an Int or Date column.
    /// Compared exactly — no `f64` rank — so values beyond the 53-bit
    /// mantissa filter correctly.
    RangeI { lo: i64, hi: i64 },
    /// `lo <= rank(value)` and `rank(value) <= hi` (or `< hi` when
    /// `hi_exclusive`) on a Double column.
    Range {
        lo: f64,
        hi: f64,
        hi_exclusive: bool,
    },
    /// Dictionary code equality.
    DictEq(u32),
    /// Dictionary code set membership.
    InSet(Vec<u32>),
}

#[derive(Debug, Clone)]
pub(crate) struct Filter {
    pub(crate) col: ColumnId,
    pub(crate) ty: LogicalType,
    pub(crate) kind: FilterKind,
}

impl Filter {
    /// Row-at-a-time evaluation — the scalar baseline the
    /// `ANKER_SCALAR_SCAN=1` ablation runs, and the oracle the kernel
    /// equivalence proptests compare against.
    #[inline]
    pub(crate) fn matches(&self, word: u64) -> bool {
        match &self.kind {
            FilterKind::RangeI { lo, hi } => {
                let v = word as i64;
                v >= *lo && v <= *hi
            }
            FilterKind::Range {
                lo,
                hi,
                hi_exclusive,
            } => {
                let r = rank(word, self.ty);
                r >= *lo && if *hi_exclusive { r < *hi } else { r <= *hi }
            }
            FilterKind::DictEq(code) => word as u32 == *code,
            FilterKind::InSet(codes) => codes.contains(&(word as u32)),
        }
    }

    /// Vectorized evaluation: refine `sel` against this filter's column
    /// block `words` (`words[i]` is the word of block-local row `i`).
    /// Each arm hands [`SelVec::apply`] its own closure, so every filter
    /// kind gets a monomorphized, branch-free kernel instantiation.
    #[inline]
    pub(crate) fn apply_kernel(&self, words: &[u64], sel: &mut SelVec) {
        match &self.kind {
            FilterKind::RangeI { lo, hi } => {
                let (lo, hi) = (*lo, *hi);
                sel.apply(words, move |w| {
                    let v = w as i64;
                    (v >= lo) & (v <= hi)
                });
            }
            FilterKind::Range {
                lo,
                hi,
                hi_exclusive: false,
            } => {
                let (lo, hi) = (*lo, *hi);
                sel.apply(words, move |w| {
                    let r = f64::from_bits(w);
                    (r >= lo) & (r <= hi)
                });
            }
            FilterKind::Range {
                lo,
                hi,
                hi_exclusive: true,
            } => {
                let (lo, hi) = (*lo, *hi);
                sel.apply(words, move |w| {
                    let r = f64::from_bits(w);
                    (r >= lo) & (r < hi)
                });
            }
            FilterKind::DictEq(code) => {
                let code = *code;
                sel.apply(words, move |w| w as u32 == code);
            }
            FilterKind::InSet(codes) => {
                let codes: &[u32] = codes;
                sel.apply(words, move |w| {
                    let c = w as u32;
                    codes.iter().fold(false, |acc, &x| acc | (x == c))
                });
            }
        }
    }

    /// Fused count kernel: popcount this filter over a still-dense
    /// selection without materialising indices ([`SelVec::count_only`]).
    /// Used by the count terminals for the final remaining conjunct of a
    /// block — after it only the selected-row *count* is observable, so
    /// the indices need never exist. Same monomorphized predicates as
    /// [`Filter::apply_kernel`].
    #[inline]
    pub(crate) fn count_kernel(&self, words: &[u64], sel: &mut SelVec) {
        match &self.kind {
            FilterKind::RangeI { lo, hi } => {
                let (lo, hi) = (*lo, *hi);
                sel.count_only(words, move |w| {
                    let v = w as i64;
                    (v >= lo) & (v <= hi)
                });
            }
            FilterKind::Range {
                lo,
                hi,
                hi_exclusive: false,
            } => {
                let (lo, hi) = (*lo, *hi);
                sel.count_only(words, move |w| {
                    let r = f64::from_bits(w);
                    (r >= lo) & (r <= hi)
                });
            }
            FilterKind::Range {
                lo,
                hi,
                hi_exclusive: true,
            } => {
                let (lo, hi) = (*lo, *hi);
                sel.count_only(words, move |w| {
                    let r = f64::from_bits(w);
                    (r >= lo) & (r < hi)
                });
            }
            FilterKind::DictEq(code) => {
                let code = *code;
                sel.count_only(words, move |w| w as u32 == code);
            }
            FilterKind::InSet(codes) => {
                let codes: &[u32] = codes;
                sel.count_only(words, move |w| {
                    let c = w as u32;
                    codes.iter().fold(false, |acc, &x| acc | (x == c))
                });
            }
        }
    }

    /// Can any value in a block with rank range `[min, max]` match?
    ///
    /// Zone maps store `f64` ranks, so integer bounds compare through
    /// their rounded images here. That stays conservative: rounding is
    /// monotone, so `max_rank < round(lo)` implies every value in the
    /// block is exactly `< lo` (and symmetrically for the upper bound) —
    /// a block is only pruned when no value can match exactly.
    pub(crate) fn block_can_match(&self, min: f64, max: f64) -> bool {
        match &self.kind {
            FilterKind::RangeI { lo, hi } => max >= *lo as f64 && min <= *hi as f64,
            FilterKind::Range {
                lo,
                hi,
                hi_exclusive,
            } => max >= *lo && if *hi_exclusive { min < *hi } else { min <= *hi },
            FilterKind::DictEq(code) => {
                let c = *code as f64;
                c >= min && c <= max
            }
            FilterKind::InSet(codes) => codes.iter().any(|&c| {
                let c = c as f64;
                c >= min && c <= max
            }),
        }
    }

    /// Must **every** value in a block with rank range `[min, max]` match?
    /// The dense-block fast path: when this holds for all filters the
    /// block's selection stays dense and the filter columns are not read.
    ///
    /// Strictly conservative in the opposite direction from
    /// [`Filter::block_can_match`]: `false` never breaks correctness, it
    /// only misses the fast path. Because ranks round monotonically, a
    /// rank strictly above `rank(lo)` implies the value is above `lo`;
    /// rank *equality* with a bound only proves the value equals the
    /// bound when the bound is exactly representable and small enough
    /// that nothing else rounds onto it ([`exact_i64`]). NaN-containing
    /// double blocks are summarised as `(-inf, +inf)` and therefore never
    /// all-match.
    pub(crate) fn block_all_match(&self, min: f64, max: f64) -> bool {
        match &self.kind {
            FilterKind::RangeI { lo, hi } => {
                let (lo_f, hi_f) = (*lo as f64, *hi as f64);
                (min > lo_f || (min == lo_f && exact_i64(*lo)))
                    && (max < hi_f || (max == hi_f && exact_i64(*hi)))
            }
            FilterKind::Range {
                lo,
                hi,
                hi_exclusive,
            } => {
                // The `(-inf, +inf)` summary is how zone maps flag a
                // NaN-holding block — indistinguishable from a genuine
                // all-infinite block, so neither may take the fast path
                // (NaN matches no range filter).
                !(min == f64::NEG_INFINITY && max == f64::INFINITY)
                    && min >= *lo
                    && if *hi_exclusive { max < *hi } else { max <= *hi }
            }
            FilterKind::DictEq(code) => {
                let c = *code as f64;
                min == c && max == c
            }
            FilterKind::InSet(codes) => {
                // Codes are u32 → exact in f64, so a single-valued block
                // all-matches iff that one code is in the set.
                min == max
                    && min >= 0.0
                    && min <= u32::MAX as f64
                    && min.fract() == 0.0
                    && codes.contains(&(min as u32))
            }
        }
    }

    /// Register the precision locks equivalent to this filter. Bounds are
    /// only ever widened — exclusive bounds become inclusive, and integer
    /// bounds beyond the 53-bit mantissa are padded by one ULP against
    /// `f64` rounding — strictly conservative, never under-locking.
    pub(crate) fn log_preds(&self, col: anker_mvcc::ColRef, txn: &mut Transaction) {
        match &self.kind {
            FilterKind::RangeI { lo, hi } => txn.log_predicate(Pred::Range {
                col,
                ty: self.ty,
                lo: (*lo as f64).next_down(),
                hi: (*hi as f64).next_up(),
            }),
            FilterKind::Range { lo, hi, .. } => txn.log_predicate(Pred::Range {
                col,
                ty: self.ty,
                lo: *lo,
                hi: *hi,
            }),
            FilterKind::DictEq(code) => txn.log_predicate(Pred::DictEq { col, code: *code }),
            FilterKind::InSet(codes) => {
                for &code in codes {
                    txn.log_predicate(Pred::DictEq { col, code });
                }
            }
        }
    }

    /// Static cost weight of one kernel invocation per row, for the
    /// adaptive rank. Comparisons are near-uniform; only set membership
    /// grows with the set.
    fn cost_weight(&self) -> f64 {
        match &self.kind {
            FilterKind::RangeI { .. } | FilterKind::Range { .. } => 1.0,
            FilterKind::DictEq(_) => 0.75,
            FilterKind::InSet(codes) => 1.0 + codes.len() as f64 * 0.25,
        }
    }
}

/// A reusable selection vector over one 1024-row block: either **dense**
/// (`0..n`, nothing materialised) or a strictly ascending list of
/// block-local row offsets. Ascending order is a contract — it is what
/// keeps emission (and therefore `f64` fold accumulation) in row order,
/// bit-identical to the scalar path.
pub(crate) struct SelVec {
    idx: Vec<u32>,
    n: u32,
    dense: bool,
}

impl SelVec {
    /// A selection sized for blocks of up to `block_rows` rows.
    pub(crate) fn new(block_rows: u32) -> SelVec {
        SelVec {
            idx: vec![0u32; block_rows as usize],
            n: 0,
            dense: true,
        }
    }

    /// Reset to the dense all-selected state over `n` rows.
    #[inline]
    pub(crate) fn reset_dense(&mut self, n: u32) {
        debug_assert!(n as usize <= self.idx.len());
        self.n = n;
        self.dense = true;
    }

    /// Selected-row count (the popcount the fused count path sums).
    #[inline]
    pub(crate) fn len(&self) -> u32 {
        self.n
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Still the dense `0..n` fast path (no indices materialised)?
    #[inline]
    pub(crate) fn is_dense(&self) -> bool {
        self.dense
    }

    /// The materialised indices, or `None` while dense (iterate `0..len`).
    #[inline]
    pub(crate) fn as_indices(&self) -> Option<&[u32]> {
        if self.dense {
            None
        } else {
            Some(&self.idx[..self.n as usize])
        }
    }

    /// Refine the selection with predicate `p` over `words` (indexed by
    /// block-local row). The first non-dense application materialises the
    /// indices; later ones compact in place (the write cursor never
    /// overtakes the read cursor). Both loops are branch-free so each
    /// monomorphized instantiation compiles to straight-line
    /// compare/accumulate code.
    #[inline]
    pub(crate) fn apply(&mut self, words: &[u64], p: impl Fn(u64) -> bool) {
        if self.dense {
            let words = &words[..self.n as usize];
            let out = &mut self.idx[..];
            let mut m = 0usize;
            for (i, &w) in words.iter().enumerate() {
                out[m] = i as u32;
                m += p(w) as usize;
            }
            self.n = m as u32;
            self.dense = false;
        } else {
            let mut m = 0usize;
            for r in 0..self.n as usize {
                let i = self.idx[r];
                self.idx[m] = i;
                m += p(words[i as usize]) as usize;
            }
            self.n = m as u32;
        }
    }

    /// Count `p`-matching rows of a dense selection **without**
    /// materialising indices — the popcount kernel the fused count path
    /// uses when a single conjunct remains. A plain predicate-sum loop,
    /// which LLVM autovectorizes outright.
    #[inline]
    pub(crate) fn count_only(&mut self, words: &[u64], p: impl Fn(u64) -> bool) {
        debug_assert!(self.dense);
        let words = &words[..self.n as usize];
        let m: u32 = words.iter().map(|&w| p(w) as u32).sum();
        self.n = m;
        // The indices were never written; the selection is no longer
        // enumerable, which the count path never needs.
        self.dense = false;
    }

    /// Scalar-baseline refinement: materialise and filter row-at-a-time
    /// through the branchy `matches` dispatch (the pre-vectorized loop).
    pub(crate) fn retain_scalar(&mut self, words: &[u64], flt: &Filter) {
        if self.dense {
            for i in 0..self.n {
                self.idx[i as usize] = i;
            }
            self.dense = false;
        }
        let mut m = 0usize;
        for r in 0..self.n as usize {
            let i = self.idx[r];
            if flt.matches(words[i as usize]) {
                self.idx[m] = i;
                m += 1;
            }
        }
        self.n = m as u32;
    }
}

/// Deterministic adaptive conjunct ordering: rank filters
/// cheapest-and-most-selective-first from the pass rates observed in the
/// **completed** blocks of the current work range, re-deciding only at
/// block boundaries.
///
/// Determinism rule: state resets at every [`AdaptiveOrder::begin_range`]
/// (one call per morsel / per sequential scan), so the order used for any
/// given block is a pure function of (table content, morsel boundaries,
/// block index) — never of thread count or scheduling. Combined with
/// exact intersective filters (any order selects the same rows) this
/// keeps results *and* counters bit-identical across fan-outs.
pub(crate) struct AdaptiveOrder {
    /// Evaluation order (indices into the filter list).
    order: Vec<u32>,
    /// Rows offered to each filter in this range, by declaration index.
    rows_in: Vec<u64>,
    /// Rows that passed each filter in this range.
    rows_out: Vec<u64>,
    /// Static per-row cost weights.
    cost: Vec<f64>,
}

impl AdaptiveOrder {
    pub(crate) fn new(filters: &[Filter]) -> AdaptiveOrder {
        AdaptiveOrder {
            order: (0..filters.len() as u32).collect(),
            rows_in: vec![0; filters.len()],
            rows_out: vec![0; filters.len()],
            cost: filters.iter().map(Filter::cost_weight).collect(),
        }
    }

    /// Reset to declaration order with no observations — called at the
    /// start of every work range (the determinism boundary).
    pub(crate) fn begin_range(&mut self) {
        for (i, o) in self.order.iter_mut().enumerate() {
            *o = i as u32;
        }
        self.rows_in.fill(0);
        self.rows_out.fill(0);
    }

    /// Current evaluation order.
    #[inline]
    pub(crate) fn order(&self) -> &[u32] {
        &self.order
    }

    /// Record one filter's block outcome (also feeds
    /// [`ScanStats::filter_sel`] for the first [`TRACKED_FILTERS`]
    /// conjuncts).
    #[inline]
    pub(crate) fn record(&mut self, fi: usize, rows_in: u64, rows_out: u64, stats: &mut ScanStats) {
        self.rows_in[fi] += rows_in;
        self.rows_out[fi] += rows_out;
        if fi < TRACKED_FILTERS {
            stats.filter_sel[fi].rows_in += rows_in;
            stats.filter_sel[fi].rows_out += rows_out;
        }
    }

    /// Re-decide the order from the range's accumulated stats — called at
    /// a block boundary (a fixed, thread-count-independent point). Bumps
    /// `stats.sel_reorders` when the order actually changes. Unobserved
    /// filters keep a neutral pass rate of 1 so they sink behind anything
    /// observed to be selective; ties keep declaration order (sort is
    /// stable, key falls back to the index).
    pub(crate) fn end_block(&mut self, stats: &mut ScanStats) {
        if self.order.len() < 2 {
            return;
        }
        let key = |fi: u32| -> f64 {
            let (inn, out) = (self.rows_in[fi as usize], self.rows_out[fi as usize]);
            let pass = if inn == 0 {
                1.0
            } else {
                out as f64 / inn as f64
            };
            pass * self.cost[fi as usize]
        };
        let before = self.order.clone();
        self.order.sort_by(|&a, &b| {
            key(a)
                .partial_cmp(&key(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        if self.order != before {
            stats.sel_reorders += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(kind: FilterKind, ty: LogicalType) -> Filter {
        Filter {
            col: ColumnId(0),
            ty,
            kind,
        }
    }

    #[test]
    fn selvec_dense_apply_and_refine() {
        let mut sel = SelVec::new(8);
        sel.reset_dense(8);
        assert!(sel.is_dense());
        assert_eq!(sel.len(), 8);
        let words: Vec<u64> = (0..8).collect();
        sel.apply(&words, |w| w % 2 == 0); // 0 2 4 6
        assert_eq!(sel.as_indices(), Some(&[0u32, 2, 4, 6][..]));
        sel.apply(&words, |w| w > 2); // refine → 4 6
        assert_eq!(sel.as_indices(), Some(&[4u32, 6][..]));
        sel.reset_dense(5);
        assert!(sel.is_dense());
        assert!(sel.as_indices().is_none());
    }

    #[test]
    fn selvec_count_only_popcounts() {
        let mut sel = SelVec::new(16);
        sel.reset_dense(10);
        let words: Vec<u64> = (0..10).collect();
        sel.count_only(&words, |w| w >= 7);
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn kernels_agree_with_scalar_dispatch() {
        let words: Vec<u64> = vec![
            5u64,
            (-3i64) as u64,
            i64::MAX as u64,
            f64::NAN.to_bits(),
            (-0.0f64).to_bits(),
            0.5f64.to_bits(),
            7,
            u32::MAX as u64,
        ];
        let filters = [
            f(FilterKind::RangeI { lo: -3, hi: 7 }, LogicalType::Int),
            f(
                FilterKind::Range {
                    lo: -1.0,
                    hi: 0.5,
                    hi_exclusive: false,
                },
                LogicalType::Double,
            ),
            f(
                FilterKind::Range {
                    lo: f64::NEG_INFINITY,
                    hi: 0.5,
                    hi_exclusive: true,
                },
                LogicalType::Double,
            ),
            f(FilterKind::DictEq(7), LogicalType::Dict),
            f(FilterKind::InSet(vec![5, 7]), LogicalType::Dict),
            f(FilterKind::InSet(vec![]), LogicalType::Dict),
        ];
        for flt in &filters {
            let scalar: Vec<u32> = (0..words.len() as u32)
                .filter(|&i| flt.matches(words[i as usize]))
                .collect();
            let mut sel = SelVec::new(words.len() as u32);
            sel.reset_dense(words.len() as u32);
            flt.apply_kernel(&words, &mut sel);
            assert_eq!(sel.as_indices(), Some(&scalar[..]), "kind {:?}", flt.kind);
        }
    }

    #[test]
    fn all_match_is_conservative_at_inexact_integer_bounds() {
        // 2^53 + 1 is not exactly representable; equality with the
        // rounded bound must not claim all-match.
        let lo = (1i64 << 53) + 1;
        let flt = f(FilterKind::RangeI { lo, hi: i64::MAX }, LogicalType::Int);
        let r = lo as f64; // rounded image
        assert!(!flt.block_all_match(r, r + 4.0));
        // Strictly inside the (rounded) bound is fine.
        assert!(flt.block_all_match(r + 3.0, r + 4.0));
        // Small bounds take the equality arm.
        let flt = f(FilterKind::RangeI { lo: 10, hi: 20 }, LogicalType::Int);
        assert!(flt.block_all_match(10.0, 20.0));
        assert!(!flt.block_all_match(9.0, 20.0));
    }

    #[test]
    fn nan_blocks_never_all_match() {
        // Zone maps summarise NaN-holding blocks as (-inf, +inf).
        let flt = f(
            FilterKind::Range {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
                hi_exclusive: false,
            },
            LogicalType::Double,
        );
        assert!(!flt.block_all_match(f64::NEG_INFINITY, f64::INFINITY));
    }

    #[test]
    fn adaptive_order_moves_selective_filter_first_and_is_resettable() {
        let filters = [
            f(FilterKind::RangeI { lo: 0, hi: 100 }, LogicalType::Int),
            f(
                FilterKind::Range {
                    lo: 0.0,
                    hi: 1.0,
                    hi_exclusive: false,
                },
                LogicalType::Double,
            ),
        ];
        let mut ord = AdaptiveOrder::new(&filters);
        let mut stats = ScanStats::default();
        ord.begin_range();
        assert_eq!(ord.order(), &[0, 1]);
        // Filter 0 passes everything, filter 1 kills everything.
        ord.record(0, 1024, 1024, &mut stats);
        ord.record(1, 1024, 0, &mut stats);
        ord.end_block(&mut stats);
        assert_eq!(ord.order(), &[1, 0]);
        assert_eq!(stats.sel_reorders, 1);
        assert_eq!(stats.filter_sel[0].rows_in, 1024);
        assert_eq!(stats.filter_sel[1].rows_out, 0);
        // The reset restores declaration order — the determinism boundary.
        ord.begin_range();
        assert_eq!(ord.order(), &[0, 1]);
    }
}
