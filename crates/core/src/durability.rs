//! Engine-side durability: WAL attachment, crash recovery, and
//! snapshot-consistent checkpointing.
//!
//! The on-disk formats and fsync discipline live in [`anker_dura`]; this
//! module decides *what* gets logged and how a directory turns back into a
//! running engine:
//!
//! * **Logging** — `create_table` appends a catalog record under the
//!   table-registry lock, `fill_column` appends bounded load chunks under
//!   the commit lock, and every committed write set is appended while the
//!   committer still holds its validation-shard locks, *before* its
//!   writes install (redo rule: a record can exist without its effects,
//!   never the reverse). Different committers hold different shard sets,
//!   so file order is **not** timestamp order: each commit record carries
//!   a `(commit_ts, seq)` pair and recovery sorts buffered commits by it.
//!   Group commit batches the fsyncs after all locks are released.
//! * **Checkpointing** — [`crate::AnkerDb::checkpoint`] pins a frozen
//!   snapshot epoch through a [`crate::SnapshotReader`] and streams every
//!   column's frozen area to a versioned checkpoint file. Frozen areas
//!   are immutable by construction, so the checkpointer needs no
//!   quiescence: commits keep flowing while it writes (their writes
//!   materialise the pinned epoch's columns first, exactly as for any
//!   other reader). On the OS backend the stream is zero-copy through
//!   [`anker_storage::ColumnArea::as_slice`]; the simulated kernel goes
//!   through `read_block_into`.
//! * **Recovery** — [`crate::AnkerDb::open`] loads the newest complete
//!   checkpoint (catalog, dictionaries, column words), replays the WAL
//!   tail (skipping records the checkpoint covers), fast-forwards the
//!   timestamp oracle past the last durable commit, and repairs any torn
//!   WAL tail before appending new records.
//!
//! Recovered data re-enters the engine as *load-timestamp-0* state: the
//! words are bit-identical, version chains start empty (no pre-crash
//! reader can exist any more), and the oracle continues strictly after
//! the last durable commit so redo ordering holds across generations.
//!
//! **Dictionary caveat**: dictionary contents are snapshot into catalog
//! records and checkpoints. Codes interned *after* the newest catalog
//! record or checkpoint recover as codes without strings until the next
//! checkpoint; workloads that only pick existing values (the paper's §5.2
//! rule, and everything in `anker-tpch`) are unaffected.

use crate::db::AnkerDb;
use crate::error::{DbError, Result};
use crate::table::{TableId, TableState};
use anker_dura::{
    checkpoint, replay_dir, ColumnMeta, DuraError, DurabilityLevel, TableMeta, Wal, WalRecord,
    WalStatsSnapshot, WalWrite, TY_DATE, TY_DICT, TY_DOUBLE, TY_INT,
};
use anker_storage::{ColumnDef, Dictionary, LogicalType, Schema};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Words per [`WalRecord::FillColumn`] chunk (512 KiB of payload).
pub(crate) const FILL_CHUNK_WORDS: usize = 64 * 1024;

/// How many complete checkpoint files to keep after a successful new one.
const KEEP_CHECKPOINTS: usize = 2;

/// The durability subsystem of one database: the WAL handle, the level
/// commits honour, and checkpoint bookkeeping.
pub(crate) struct DuraState {
    pub wal: Wal,
    pub level: DurabilityLevel,
    pub dir: PathBuf,
    /// Commits logged since the last completed checkpoint (the background
    /// checkpointer skips idle passes).
    pub commits_since_ckpt: AtomicU64,
    /// Serializes checkpoints (manual calls vs the background thread).
    pub ckpt_mx: Mutex<()>,
    /// Append sequence numbers for [`WalRecord::Commit`]: the concurrent
    /// commit pipeline appends records out of timestamp order, so each
    /// carries `(commit_ts, seq)` and recovery sorts before applying.
    /// Resumes past the largest sequence number found in the log.
    pub next_seq: AtomicU64,
}

/// What recovery found when a durable database booted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Timestamp of the checkpoint the boot started from (0 = none).
    pub checkpoint_ts: u64,
    /// Tables restored (checkpoint + replayed creations).
    pub tables: u64,
    /// Commit records re-applied from the WAL tail.
    pub commits_replayed: u64,
    /// The newest durable commit timestamp (checkpoint or WAL).
    pub last_commit_ts: u64,
    /// True when the WAL ended in a torn record (the crash tore the tail;
    /// recovery stopped at the last complete commit and repaired the
    /// file).
    pub torn_tail: bool,
}

fn ty_code(ty: LogicalType) -> u8 {
    match ty {
        LogicalType::Int => TY_INT,
        LogicalType::Double => TY_DOUBLE,
        LogicalType::Date => TY_DATE,
        LogicalType::Dict => TY_DICT,
    }
}

fn ty_of(code: u8) -> Result<LogicalType> {
    Ok(match code {
        TY_INT => LogicalType::Int,
        TY_DOUBLE => LogicalType::Double,
        TY_DATE => LogicalType::Date,
        TY_DICT => LogicalType::Dict,
        other => {
            return Err(DuraError::Corrupt(format!("unknown column type code {other}")).into())
        }
    })
}

/// Snapshot a table's definition for the log or a checkpoint catalog
/// (dictionaries by value, in code order).
pub(crate) fn table_meta(state: &TableState) -> TableMeta {
    let cols = state
        .schema
        .iter()
        .map(|(_, def)| ColumnMeta {
            name: def.name.clone(),
            ty: ty_code(def.ty),
            dict_values: def
                .dict
                .as_ref()
                .map(|d| d.codes().map(|c| d.value(c).to_string()).collect()),
        })
        .collect();
    TableMeta {
        name: state.name.clone(),
        rows: state.rows,
        cols,
    }
}

/// The WAL record describing a table creation.
pub(crate) fn create_record(table: u16, state: &TableState) -> WalRecord {
    WalRecord::CreateTable {
        table,
        meta: table_meta(state),
    }
}

fn schema_of(meta: &TableMeta) -> Result<Schema> {
    let mut defs = Vec::with_capacity(meta.cols.len());
    for c in &meta.cols {
        let ty = ty_of(c.ty)?;
        defs.push(match (&c.dict_values, ty) {
            (Some(values), LogicalType::Dict) => ColumnDef::dict(
                c.name.clone(),
                Arc::new(Dictionary::with_values(values.iter().map(|s| s.as_str()))),
            ),
            (None, ty) => ColumnDef::new(c.name.clone(), ty),
            _ => {
                return Err(DuraError::Corrupt(format!(
                    "column {:?}: dictionary marker and type disagree",
                    c.name
                ))
                .into())
            }
        });
    }
    Ok(Schema::new(defs))
}

/// Recover the state of the durability directory into the freshly built
/// (empty, not-yet-serving) database and attach the WAL. Called once from
/// boot, before any background thread or transaction exists.
pub(crate) fn boot_durable(db: &AnkerDb) -> Result<()> {
    let dir = db
        .config()
        .durability_dir
        .clone()
        .expect("boot_durable without a directory");
    let mut report = RecoveryReport::default();

    // 1. Newest complete checkpoint, if any.
    let ckpt = checkpoint::load_newest(&dir)?;
    let ckpt_ts = ckpt.as_ref().map(|c| c.ts).unwrap_or(0);
    let ckpt_tables = ckpt.as_ref().map(|c| c.tables.len()).unwrap_or(0);
    if let Some(data) = ckpt {
        for (meta, cols) in data.tables.iter().zip(&data.cols) {
            let schema = schema_of(meta)?;
            let id = db.create_table_internal(meta.name.clone(), schema, meta.rows, false);
            let state = db.table_state(id);
            for (cid, words) in cols.iter().enumerate() {
                if words.len() as u64 != meta.rows as u64 {
                    return Err(DuraError::Corrupt(format!(
                        "checkpoint column {}/{} has {} words for {} rows",
                        meta.name,
                        meta.cols[cid].name,
                        words.len(),
                        meta.rows
                    ))
                    .into());
                }
                state.col(cid).current_area().fill(words.iter().copied())?;
            }
        }
        report.checkpoint_ts = data.ts;
        report.last_commit_ts = data.ts;
    }

    // 2. Replay the WAL tail. Catalog and load records apply in file
    // order; records covered by the checkpoint — catalog and loads of
    // checkpointed tables, commits at or below its timestamp — are
    // skipped. Commit records may sit in the file out of timestamp order
    // (the concurrent commit pipeline appends under per-shard locks, not
    // a global one), so they are buffered here, sorted by
    // `(commit_ts, seq)`, and re-applied as plain word stores after the
    // scan — the redo order is the timestamp order, not the file order.
    let mut commits: Vec<(u64, u64, Vec<WalWrite>)> = Vec::new();
    let mut max_seq = 0u64;
    let summary = replay_dir(&dir, |rec| {
        let corrupt = |msg: String| -> DuraError { DuraError::Corrupt(msg) };
        match rec {
            WalRecord::CreateTable { table, meta } => {
                let existing = db.inner.tables.read().len();
                if (table as usize) < existing {
                    return Ok(()); // covered by the checkpoint
                }
                if table as usize != existing {
                    return Err(corrupt(format!(
                        "create record for table {table} but only {existing} tables exist"
                    )));
                }
                let schema = schema_of(&meta).map_err(to_dura)?;
                db.create_table_internal(meta.name, schema, meta.rows, false);
                Ok(())
            }
            WalRecord::FillColumn {
                table,
                col,
                start_row,
                words,
            } => {
                if (table as usize) < ckpt_tables {
                    return Ok(()); // the checkpoint's column data includes it
                }
                let state = checked_table(db, table).map_err(to_dura)?;
                if col as usize >= state.cols.len()
                    || start_row as u64 + words.len() as u64 > state.rows as u64
                {
                    return Err(corrupt(format!(
                        "fill record out of bounds for table {table}"
                    )));
                }
                let area = state.col(col as usize).current_area();
                for (i, w) in words.iter().enumerate() {
                    area.set(start_row + i as u32, *w).map_err(vm_to_dura)?;
                }
                Ok(())
            }
            WalRecord::Commit {
                commit_ts,
                seq,
                writes,
            } => {
                max_seq = max_seq.max(seq);
                if commit_ts <= ckpt_ts {
                    return Ok(()); // covered by the checkpoint
                }
                // Bounds-check against the catalog as recovered so far
                // (every table a commit touches was created earlier in
                // file order), but defer the stores until the scan ends
                // and the commits can apply in timestamp order.
                for w in &writes {
                    let state = checked_table(db, w.table).map_err(to_dura)?;
                    if w.col as usize >= state.cols.len() || w.row >= state.rows {
                        return Err(corrupt(format!(
                            "commit {commit_ts} writes out of bounds ({},{},{})",
                            w.table, w.col, w.row
                        )));
                    }
                }
                commits.push((commit_ts, seq, writes));
                Ok(())
            }
        }
    })?;
    commits.sort_unstable_by_key(|&(ts, seq, _)| (ts, seq));
    for (_, _, writes) in &commits {
        for w in writes {
            let state = checked_table(db, w.table)?;
            state
                .col(w.col as usize)
                .current_area()
                .set(w.row, w.word)
                .map_err(vm_to_dura)?;
        }
    }
    report.commits_replayed = summary.commits;
    report.torn_tail = summary.torn_tail;
    report.last_commit_ts = report.last_commit_ts.max(summary.last_commit_ts);
    report.tables = db.inner.tables.read().len() as u64;

    // 3. The oracle resumes strictly after every durable commit, so new
    // commit timestamps extend the redo order instead of colliding with
    // it.
    db.inner.oracle.advance_to(report.last_commit_ts);

    // 4. Attach the log for new appends (this also repairs a torn tail).
    let wal = Wal::open(&dir)?;
    let state = Arc::new(DuraState {
        wal,
        level: db.config().durability,
        dir,
        commits_since_ckpt: AtomicU64::new(0),
        ckpt_mx: Mutex::new(()),
        next_seq: AtomicU64::new(max_seq + 1),
    });
    db.inner
        .dura
        .set(state)
        .unwrap_or_else(|_| unreachable!("durability attached twice"));
    *db.inner.recovery.lock() = Some(report);
    Ok(())
}

fn to_dura(e: DbError) -> DuraError {
    match e {
        DbError::Dura(d) => d,
        other => DuraError::Corrupt(other.to_string()),
    }
}

fn vm_to_dura(e: anker_vmem::VmError) -> DuraError {
    DuraError::Corrupt(format!("replay store failed: {e}"))
}

fn checked_table(db: &AnkerDb, table: u16) -> Result<Arc<TableState>> {
    let tables = db.inner.tables.read();
    tables.get(table as usize).cloned().ok_or_else(|| {
        DuraError::Corrupt(format!("record references unknown table {table}")).into()
    })
}

impl AnkerDb {
    /// What recovery found at boot: `None` for a fresh directory or a
    /// non-durable database, the [`RecoveryReport`] otherwise.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        *self.inner.recovery.lock()
    }

    /// Point-in-time WAL counters (`None` without a durability
    /// directory). `commit_records / syncs` is the group-commit batching
    /// factor.
    pub fn wal_stats(&self) -> Option<WalStatsSnapshot> {
        self.inner.dura.get().map(|d| d.wal.stats())
    }

    /// Write a checkpoint **now** and truncate the WAL up to its epoch
    /// timestamp. Returns that timestamp.
    ///
    /// The checkpointer pins the newest frozen snapshot epoch through a
    /// [`crate::SnapshotReader`] and streams every column's frozen area
    /// to a versioned `ckpt-<ts>.ckpt` file — entirely off the commit
    /// path. Concurrent updaters never wait on checkpoint I/O: their only
    /// interaction is the ordinary epoch-materialisation step every
    /// pinned reader implies. Requires heterogeneous processing mode
    /// (the snapshot epochs *are* the consistency mechanism) and a
    /// durability directory.
    ///
    /// Taking a checkpoint closes the bulk-load window of every existing
    /// table, exactly as a transaction touching it would
    /// (see [`AnkerDb::fill_column`]).
    pub fn checkpoint(&self) -> Result<u64> {
        let dura = self
            .inner
            .dura
            .get()
            .cloned()
            .ok_or(DbError::DurabilityDisabled)?;
        let _one_at_a_time = dura.ckpt_mx.lock();
        // Pin the epoch the image will represent. Everything the reader
        // resolves from here on is frozen at `ckpt_ts`.
        let reader = self.snapshot_reader()?;
        let ckpt_ts = reader.epoch_ts();
        // Rotate the WAL *before* snapshotting the catalog: every record
        // in a closed segment now provably describes a table this
        // catalog contains (or a commit whose timestamp keeps the
        // segment alive), which is what makes deleting covered segments
        // safe.
        dura.wal.rotate()?;
        // Catalog snapshot under the commit lock: a fixed table list, and
        // every listed table's load window closes so no bulk load can
        // race the column streams below.
        let tables: Vec<Arc<TableState>> = {
            let _cs = self.lock_commit();
            let tables = self.inner.tables.read().clone();
            for t in &tables {
                t.mark_observed();
            }
            tables
        };
        let metas: Vec<TableMeta> = tables.iter().map(|t| table_meta(t)).collect();
        let mut writer = checkpoint::CheckpointWriter::create(&dura.dir, ckpt_ts, &metas)?;
        let mut buf = vec![0u64; FILL_CHUNK_WORDS];
        for (tid, state) in tables.iter().enumerate() {
            for cid in 0..state.cols.len() {
                let sc = reader.snap_col(TableId(tid as u16), anker_storage::ColumnId(cid))?;
                let area = sc.area();
                area.advise_sequential();
                // SAFETY(provenance: reader, area): the area is a frozen
                // snapshot column and the reader's epoch pin keeps it
                // mapped and unrecycled for the whole stream.
                if let Some(slice) = unsafe { area.as_slice() } {
                    writer.write_words(slice)?; // zero-copy (OS backend)
                } else {
                    let rows = area.rows();
                    let mut start = 0u32;
                    while start < rows {
                        let n = (buf.len() as u32).min(rows - start);
                        area.read_block_into(start, n, &mut buf)?;
                        writer.write_words(&buf[..n as usize])?;
                        start += n;
                    }
                }
            }
        }
        writer.finish()?;
        dura.commits_since_ckpt.store(0, Ordering::Relaxed);
        // The image is durable: drop WAL segments it covers and stale
        // checkpoints.
        dura.wal.delete_covered(ckpt_ts)?;
        checkpoint::prune(&dura.dir, KEEP_CHECKPOINTS)?;
        Ok(ckpt_ts)
    }
}
