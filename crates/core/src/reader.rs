//! Detached snapshot readers: `Send + Sync` read handles onto one frozen
//! snapshot epoch, independent of any transaction.
//!
//! A [`SnapshotReader`] is the paper's OLAP fleet made explicit (§5.3–§5.4
//! run N analytical threads against the snapshot while updaters commit):
//! it pins an epoch **by refcount** at creation and holds that pin until
//! dropped, so the snapshot manager keeps every area of the epoch — and
//! the spare-area recycling pool — untouchable for as long as the reader
//! lives, across any number of snapshot refreshes and
//! destination-recycling cycles in between. On top of the pin, the reader
//! registers in the active-transaction table at the epoch timestamp, which
//! keeps the graveyard/recycling horizons conservative for areas retired
//! *around* its lifetime.
//!
//! **Isolation contract.** A reader is snapshot-isolation-only, full stop:
//! every read observes the single consistent point in time of its epoch
//! (`epoch_ts`), writes are impossible by construction, and nothing a
//! reader does is validated against later commits. Serializable
//! transactions must keep using [`crate::Txn`] — its scans register
//! precision locks automatically; a reader registers none. The reader
//! never takes the commit lock on its hot path; only the *first* access
//! to a not-yet-materialised column acquires it once, to materialise the
//! column for the epoch (§2.2.2 lazy materialisation), exactly like an
//! OLAP transaction's first touch.

use crate::db::AnkerDb;
use crate::error::{DbError, Result};
use crate::scan::ReaderScanBuilder;
use crate::snapman::{resolve_snap_col, Epoch, SnapCol};
use crate::table::TableId;
use anker_mvcc::ActiveToken;
use anker_storage::{ColumnId, LogicalType, Value};
use anker_util::FxHashMap;
use parking_lot::Mutex;
use std::sync::Arc;

/// The pin itself: epoch refcount + active-table registration, released
/// exactly once when the last holder drops. [`crate::ScanPartition`]s
/// share this handle so a partition outliving its reader still keeps the
/// epoch alive.
pub(crate) struct ReaderPin {
    db: AnkerDb,
    epoch: Arc<Epoch>,
    token: Option<ActiveToken>,
}

impl Drop for ReaderPin {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.db.inner.active.deregister(token);
        }
        self.db.inner.snapman.unpin(&self.epoch);
    }
}

/// A standalone, `Send + Sync` reader over one pinned snapshot epoch.
/// Obtain with [`AnkerDb::snapshot_reader`]; share it across threads
/// freely (all methods take `&self`), scan through
/// [`SnapshotReader::scan`]. See the module docs for the pinning and
/// isolation contract.
///
/// ```
/// # use anker_core::{AnkerDb, ColumnDef, DbConfig, LogicalType, Schema, TxnKind, Value};
/// # let db = AnkerDb::new(DbConfig::default());
/// # let t = db.create_table(
/// #     "x", Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]), 8);
/// # let v = db.schema(t).col("v");
/// # db.fill_column(t, v, (0..8).map(|i| Value::Int(i).encode())).unwrap();
/// let reader = db.snapshot_reader().unwrap();
/// let (sum, stats) = reader
///     .scan(t)
///     .range_i64(v, 2, 5)
///     .project(&[v])
///     .parallel(2)
///     .fold(0i64, |acc, _row, vals| acc + vals[0].as_int(), |a, b| a + b)
///     .unwrap();
/// assert_eq!(sum, 2 + 3 + 4 + 5);
/// assert!(stats.threads >= 1);
/// ```
pub struct SnapshotReader {
    pin: Arc<ReaderPin>,
    /// Per-reader cache of resolved snapshot columns (same role as the
    /// per-transaction cache, just behind a mutex so `&self` methods can
    /// fill it from any thread).
    cache: Mutex<FxHashMap<(u16, u16), Arc<SnapCol>>>,
}

impl std::fmt::Debug for SnapshotReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("epoch_ts", &self.pin.epoch.ts)
            .finish()
    }
}

impl SnapshotReader {
    /// Pin the newest serviceable epoch (creating one at a commit boundary
    /// when none is fresh) and wrap it. Heterogeneous mode only: the
    /// homogeneous configurations have no snapshot epochs to pin.
    pub(crate) fn open(db: &AnkerDb) -> Result<SnapshotReader> {
        if db.inner.config.mode != crate::config::ProcessingMode::Heterogeneous {
            return Err(DbError::SnapshotsDisabled);
        }
        let epoch = db.pin_current_epoch();
        let token = db.inner.active.register(epoch.ts);
        Ok(SnapshotReader {
            pin: Arc::new(ReaderPin {
                db: db.clone(),
                epoch,
                token: Some(token),
            }),
            cache: Mutex::new(FxHashMap::default()),
        })
    }

    /// The single point in time every read of this reader observes.
    pub fn epoch_ts(&self) -> u64 {
        self.pin.epoch.ts
    }

    pub(crate) fn db(&self) -> &AnkerDb {
        &self.pin.db
    }

    pub(crate) fn pin_handle(&self) -> Arc<ReaderPin> {
        Arc::clone(&self.pin)
    }

    /// The reader's snapshot column for `(table, col)`, materialising it
    /// for the pinned epoch on first access.
    pub(crate) fn snap_col(&self, table: TableId, col: ColumnId) -> Result<Arc<SnapCol>> {
        let key = (table.0, col.0 as u16);
        if let Some(sc) = self.cache.lock().get(&key) {
            return Ok(Arc::clone(sc));
        }
        let sc = resolve_snap_col(&self.pin.db, &self.pin.epoch, table, col)?;
        self.cache.lock().insert(key, Arc::clone(&sc));
        Ok(sc)
    }

    /// Read the raw word of `(table, col, row)` at the epoch.
    pub fn get(&self, table: TableId, col: ColumnId, row: u32) -> Result<u64> {
        Ok(self.snap_col(table, col)?.area().get(row)?)
    }

    /// Typed read at the epoch.
    pub fn get_value(&self, table: TableId, col: ColumnId, row: u32) -> Result<Value> {
        let ty: LogicalType = self.pin.db.table_state(table).schema.def(col).ty;
        Ok(Value::decode(self.get(table, col, row)?, ty))
    }

    /// Start building a scan over `table` on this reader's epoch: chain
    /// typed predicates and a projection on the returned
    /// [`ReaderScanBuilder`], optionally fan out with
    /// [`ReaderScanBuilder::parallel`] or
    /// [`ReaderScanBuilder::into_partitions`], then finish with a
    /// terminal method.
    pub fn scan(&self, table: TableId) -> ReaderScanBuilder<'_> {
        ReaderScanBuilder::new(self, table)
    }
}
