//! The database object: tables, the MVCC engine state, the snapshot
//! manager, and the homogeneous-mode garbage collection thread.

use crate::config::{BackendKind, DbConfig, ProcessingMode};
use crate::durability::DuraState;
use crate::error::Result;
use crate::reader::SnapshotReader;
use crate::snapman::{Epoch, SnapshotManager};
use crate::table::{ColumnState, TableId, TableState};
use crate::txn::{Txn, TxnKind};
use anker_dura::DurabilityLevel;
use anker_mvcc::{ActiveTxns, RecentCommits, TsOracle, VersionedColumn};
use anker_storage::{ColumnArea, Schema};
use anker_util::lockcheck::{self, classes};
use anker_util::{sched, WorkerPool};
use anker_vmem::{Kernel, OsBackend, OsStatsSnapshot, Space, VmBackend};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// State owned by the serialized commit section. Holding the guard is the
/// capability to install writes, trigger epochs, and materialise snapshots.
#[derive(Debug, Default)]
pub struct CommitState {
    pub(crate) commits_since_snapshot: u64,
    pub(crate) commits_since_prune: u64,
}

/// A ticket-fair lock around the serialized commit section.
///
/// The previous implementation barged: a `try_lock` spin loop let a fast
/// committer re-acquire the section past a parked epoch-pinning reader
/// indefinitely (a slow WAL fsync inside the section made
/// `snapshot_reader()` creation stall behind it unboundedly). Tickets
/// grant the section strictly in arrival order, so every waiter is served
/// after at most the holders queued ahead of it.
pub(crate) struct CommitLock {
    next: AtomicU64,
    serving: AtomicU64,
    state: Mutex<CommitState>,
}

impl CommitLock {
    fn new() -> CommitLock {
        CommitLock {
            next: AtomicU64::new(0),
            serving: AtomicU64::new(0),
            state: Mutex::new(CommitState::default()),
        }
    }

    /// Acquire in strict arrival order, spinning with periodic yields
    /// instead of parking: the section is a microsecond-scale critical
    /// region, far below a park/unpark round trip.
    fn lock(&self) -> CommitGuard<'_> {
        // Witness before queuing: a hierarchy violation must panic under
        // `lockcheck` even on schedules where the section is free.
        let witness = lockcheck::acquire(&classes::COMMIT_LOCK, 0);
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        // ORDERING: Acquire pairs with the guard drop's Release increment
        // of `serving` — entering the section sees everything the previous
        // holder did inside it.
        while self.serving.load(Ordering::Acquire) != ticket {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // Uncontended by construction: only the serving ticket locks.
        CommitGuard {
            lock: self,
            guard: Some(self.state.lock()),
            _witness: witness,
        }
    }
}

/// Guard of the serialized commit section; dereferences to
/// [`CommitState`]. Dropping it admits the next queued ticket.
pub(crate) struct CommitGuard<'a> {
    lock: &'a CommitLock,
    guard: Option<parking_lot::MutexGuard<'a, CommitState>>,
    /// Hand-rolled ticket lock, so the lockcheck wrappers cannot cover
    /// it; the raw witness token does instead.
    _witness: lockcheck::Held,
}

impl std::ops::Deref for CommitGuard<'_> {
    type Target = CommitState;
    fn deref(&self) -> &CommitState {
        self.guard.as_ref().expect("commit guard already released")
    }
}

impl std::ops::DerefMut for CommitGuard<'_> {
    fn deref_mut(&mut self) -> &mut CommitState {
        self.guard.as_mut().expect("commit guard already released")
    }
}

impl Drop for CommitGuard<'_> {
    fn drop(&mut self) {
        self.guard.take();
        // ORDERING: Release publishes the whole critical section to the
        // next ticket holder's Acquire spin.
        self.lock.serving.fetch_add(1, Ordering::Release);
    }
}

/// Monotonic database statistics.
#[derive(Debug, Default)]
pub(crate) struct DbStats {
    pub committed: AtomicU64,
    pub committed_read_only: AtomicU64,
    pub aborted_ww: AtomicU64,
    pub aborted_validation: AtomicU64,
    pub repaired_commits: AtomicU64,
    pub repair_rounds: AtomicU64,
    pub gc_passes: AtomicU64,
    pub versions_collected: AtomicU64,
}

/// A point-in-time copy of the database statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStatsSnapshot {
    pub committed: u64,
    pub committed_read_only: u64,
    pub aborted_ww: u64,
    pub aborted_validation: u64,
    /// Transactions that failed validation at least once and then
    /// committed through the bounded conflict-repair path.
    pub repaired_commits: u64,
    /// Total repair rounds run across all transactions.
    pub repair_rounds: u64,
    pub gc_passes: u64,
    pub versions_collected: u64,
    pub epochs_triggered: u64,
    pub epochs_retired: u64,
    pub columns_materialized: u64,
    pub live_epochs: u64,
    /// Simulated-kernel cost counters (mmap/mprotect/vm_snapshot calls,
    /// faults, PTE/page copies, virtual nanoseconds). Previously only
    /// reachable through [`AnkerDb::kernel`]; all zeros on the OS backend,
    /// whose real-kernel counters are in [`AnkerDb::os_stats`].
    pub kernel: anker_vmem::KernelStats,
}

/// A stoppable background thread (GC, checkpointer): a stop flag +
/// condvar pair and the join handle.
struct BgThread {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl BgThread {
    /// Spawn a thread that calls `tick` every `interval` until stopped or
    /// until the database is dropped (the thread holds only a weak
    /// reference).
    fn spawn(
        name: &str,
        interval: std::time::Duration,
        weak: std::sync::Weak<DbInner>,
        tick: impl Fn(&AnkerDb) + Send + 'static,
    ) -> BgThread {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || loop {
                {
                    let (lock, cvar) = &*stop2;
                    let mut stopped = lock.lock();
                    if !*stopped {
                        cvar.wait_for(&mut stopped, interval);
                    }
                    if *stopped {
                        return;
                    }
                }
                match weak.upgrade() {
                    Some(inner) => tick(&AnkerDb { inner }),
                    None => return,
                }
            })
            .expect("failed to spawn background thread");
        BgThread {
            stop,
            handle: Some(handle),
        }
    }

    /// Signal the thread to stop and join it. Idempotent by construction
    /// (callers `take()` the thread out of its slot first).
    ///
    /// A background thread can end up running this **itself**: its tick
    /// upgrades the weak reference to a temporary strong one, and if the
    /// user drops the last database handle mid-tick, that temporary is
    /// the last owner — `DbInner::drop` then runs *on* the GC or
    /// checkpointer thread. Joining ourselves would deadlock, so in that
    /// case the stop flag is set and the thread is left to exit on its
    /// own (it is past its weak-upgrade already, so it terminates right
    /// after the tick returns).
    fn stop_and_join(mut self) {
        {
            let (lock, cvar) = &*self.stop;
            *lock.lock() = true;
            cvar.notify_all();
        }
        if let Some(h) = self.handle.take() {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

pub(crate) struct DbInner {
    pub config: DbConfig,
    pub kernel: Kernel,
    pub space: Space,
    /// The substrate column areas live on: the simulated kernel's `space`
    /// (default) or the real-OS memfd backend, per `config.backend`.
    pub backend: Arc<dyn VmBackend>,
    pub tables: lockcheck::RwLock<Vec<Arc<TableState>>>,
    pub oracle: TsOracle,
    pub active: Arc<ActiveTxns>,
    pub recent: RecentCommits,
    pub commit_mx: CommitLock,
    /// Commit counter driving homogeneous-mode housekeeping (the
    /// heterogeneous path keeps its counters in [`CommitState`] because it
    /// already holds the commit section to install; the homogeneous
    /// install path is lock-free, so its cadence lives here).
    pub prune_tick: AtomicU64,
    pub snapman: SnapshotManager,
    pub stats: DbStats,
    /// The reusable worker pool behind morsel-parallel reader scans,
    /// created on first use and grown (replaced) when a scan asks for
    /// more threads than it has. See [`AnkerDb::scan_pool`].
    scan_pool: Mutex<Option<Arc<WorkerPool>>>,
    gc: Mutex<Option<BgThread>>,
    /// Durability subsystem (WAL + checkpoint directory), attached during
    /// boot when the configuration names a durability directory. Set at
    /// most once; `None` keeps the engine process-lifetime-only.
    pub(crate) dura: OnceLock<Arc<DuraState>>,
    /// Background checkpointer thread, when configured.
    ckpt: Mutex<Option<BgThread>>,
    /// What recovery found at boot (`None` for a fresh or non-durable
    /// database).
    pub(crate) recovery: Mutex<Option<crate::durability::RecoveryReport>>,
}

/// AnKerDB: a main-memory, column-oriented transaction processing system
/// with heterogeneous OLTP/OLAP processing over high-frequency virtual
/// column snapshots.
///
/// ```
/// use anker_core::{AnkerDb, DbConfig, TxnKind};
/// use anker_storage::{ColumnDef, LogicalType, Schema};
///
/// let db = AnkerDb::new(DbConfig::default());
/// let t = db.create_table(
///     "accounts",
///     Schema::new(vec![ColumnDef::new("balance", LogicalType::Int)]),
///     4,
/// );
/// let balance = db.schema(t).col("balance");
///
/// // An OLTP transaction updates an account.
/// let mut txn = db.begin(TxnKind::Oltp);
/// txn.update(t, balance, 0, 100).unwrap();
/// txn.commit().unwrap();
///
/// // An OLAP transaction sums all balances on a virtual snapshot.
/// let mut olap = db.begin(TxnKind::Olap);
/// let mut sum = 0i64;
/// olap.scan_on(t)
///     .project(&[balance])
///     .for_each(|_, vals| sum += vals[0] as i64)
///     .unwrap();
/// olap.commit().unwrap();
/// assert_eq!(sum, 100);
/// ```
#[derive(Clone)]
pub struct AnkerDb {
    pub(crate) inner: Arc<DbInner>,
}

impl std::fmt::Debug for AnkerDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnkerDb")
            .field("mode", &self.inner.config.mode)
            .field("isolation", &self.inner.config.isolation)
            .field("tables", &self.inner.tables.read().len())
            .finish()
    }
}

impl AnkerDb {
    /// Boot a database with the given configuration. In homogeneous mode
    /// with a `gc_interval`, a background garbage-collection thread starts
    /// immediately (§5.1(1): "a thread that makes a pass over the version
    /// chains every second").
    ///
    /// When the configuration names a [`DbConfig::durability_dir`], this
    /// recovers whatever state the directory holds (checkpoint + WAL
    /// tail) and attaches the write-ahead log, exactly like
    /// [`AnkerDb::open`] — and panics if that fails. Prefer
    /// [`AnkerDb::open`] (or [`AnkerDb::try_new`]) for durable databases
    /// so I/O failures surface as errors.
    pub fn new(config: DbConfig) -> AnkerDb {
        AnkerDb::try_new(config).expect("database boot failed")
    }

    /// [`AnkerDb::new`] with boot errors (recovery I/O, corrupt durable
    /// state) surfaced instead of panicking.
    pub fn try_new(config: DbConfig) -> Result<AnkerDb> {
        let kernel = Kernel::new(config.kernel.clone());
        let space = kernel.create_space();
        let backend: Arc<dyn VmBackend> = match config.backend {
            BackendKind::Sim => Arc::new(space.clone()),
            BackendKind::Os => Arc::new(
                OsBackend::with_huge_pages(config.os_huge_pages)
                    .expect("OS memory backend unavailable (requires Linux memfd)"),
            ),
        };
        let active = Arc::new(ActiveTxns::new());
        let snapman = SnapshotManager::new(
            Arc::clone(&backend),
            Arc::clone(&active),
            config.recycle_snapshot_areas,
        );
        let inner = Arc::new(DbInner {
            kernel,
            space,
            backend,
            tables: lockcheck::RwLock::new(&classes::TABLES, 0, Vec::new()),
            oracle: TsOracle::new(),
            active,
            recent: RecentCommits::new(),
            commit_mx: CommitLock::new(),
            prune_tick: AtomicU64::new(0),
            snapman,
            stats: DbStats::default(),
            scan_pool: Mutex::new(None),
            gc: Mutex::new(None),
            dura: OnceLock::new(),
            ckpt: Mutex::new(None),
            recovery: Mutex::new(None),
            config,
        });
        let db = AnkerDb { inner };
        // Durable boot: rebuild from checkpoint + WAL tail, then attach
        // the log — all before any background thread or transaction runs.
        if db.inner.config.durability_dir.is_some() {
            crate::durability::boot_durable(&db)?;
        }
        if db.inner.config.mode == ProcessingMode::Homogeneous {
            if let Some(interval) = db.inner.config.gc_interval {
                let weak = Arc::downgrade(&db.inner);
                *db.inner.gc.lock() = Some(BgThread::spawn("ankerdb-gc", interval, weak, |db| {
                    db.run_gc_once();
                }));
            }
        }
        if db.inner.config.mode == ProcessingMode::Heterogeneous && db.inner.dura.get().is_some() {
            if let Some(interval) = db.inner.config.checkpoint_interval {
                let weak = Arc::downgrade(&db.inner);
                *db.inner.ckpt.lock() =
                    Some(BgThread::spawn("ankerdb-ckpt", interval, weak, |db| {
                        // Skip idle passes; log failures rather than
                        // crashing the thread (the next pass retries).
                        if let Some(d) = db.inner.dura.get() {
                            if d.commits_since_ckpt.load(Ordering::Relaxed) > 0 {
                                if let Err(e) = db.checkpoint() {
                                    eprintln!("ankerdb-ckpt: checkpoint failed: {e}");
                                }
                            }
                        }
                    }));
            }
        }
        Ok(db)
    }

    /// Open (or create) a **durable** database in `dir`: load the newest
    /// complete checkpoint, replay the WAL tail up to the last durable
    /// commit, and attach the write-ahead log so new commits append to it
    /// under `config.durability`'s contract. An empty or missing
    /// directory boots a fresh durable database.
    ///
    /// ```no_run
    /// use anker_core::{AnkerDb, DbConfig, DurabilityLevel};
    ///
    /// let config = DbConfig::default().with_durability(DurabilityLevel::Fsync);
    /// let db = AnkerDb::open("/var/lib/ankerdb", config).unwrap();
    /// # drop(db);
    /// ```
    pub fn open(dir: impl Into<std::path::PathBuf>, config: DbConfig) -> Result<AnkerDb> {
        AnkerDb::try_new(DbConfig {
            durability_dir: Some(dir.into()),
            ..config
        })
    }

    /// The simulated kernel (stats, virtual clock).
    pub fn kernel(&self) -> &Kernel {
        &self.inner.kernel
    }

    /// The configuration the database was booted with.
    pub fn config(&self) -> &DbConfig {
        &self.inner.config
    }

    /// Create a table of `rows` rows; content is zero until filled. On a
    /// durable database the catalog change is appended to the WAL (under
    /// the same lock that assigns the table id, so log order matches id
    /// order).
    pub fn create_table(&self, name: impl Into<String>, schema: Schema, rows: u32) -> TableId {
        self.create_table_internal(name.into(), schema, rows, true)
    }

    pub(crate) fn create_table_internal(
        &self,
        name: String,
        schema: Schema,
        rows: u32,
        log: bool,
    ) -> TableId {
        let cols = schema
            .iter()
            .map(|(_, def)| {
                let area = ColumnArea::alloc_on(Arc::clone(&self.inner.backend), rows)
                    .expect("column allocation failed (backing memory exhausted)");
                ColumnState::new(VersionedColumn::new(rows, def.ty), area)
            })
            .collect();
        let state = Arc::new(TableState {
            name,
            schema,
            rows,
            cols,
            observed: AtomicBool::new(false),
        });
        let mut tables = self.inner.tables.write();
        assert!(tables.len() < u16::MAX as usize, "too many tables");
        let id = TableId(tables.len() as u16);
        if log {
            if let Some(d) = self.inner.dura.get() {
                if d.level != DurabilityLevel::Off {
                    let rec = crate::durability::create_record(id.0, &state);
                    d.wal
                        .append(&rec)
                        .expect("WAL append failed while creating a table");
                }
            }
        }
        tables.push(state);
        id
    }

    /// Bulk-load a column (load timestamp 0). Loading a table must
    /// complete before the first transaction touches it: the fill bypasses
    /// versioning, so a load racing live readers would corrupt visibility
    /// silently. Once any transaction has resolved the table, this returns
    /// [`crate::DbError::LoadAfterBegin`] instead. The latch is per table —
    /// a table created after transactions have run elsewhere can still be
    /// loaded.
    ///
    /// The latch detects ordering violations; it does not make a load that
    /// *races* the table's very first transactional access on another
    /// thread safe (nothing can — a table's load phase is single-threaded
    /// by contract). The fill itself runs inside the serialized commit
    /// section, so it can never interleave with a commit's installs.
    pub fn fill_column(
        &self,
        table: TableId,
        col: anker_storage::ColumnId,
        values: impl IntoIterator<Item = u64>,
    ) -> Result<u32> {
        let t = self.table_state(table);
        let _cs = self.lock_commit();
        // ORDERING: Acquire pairs with `mark_observed`'s Release — seeing
        // the latch implies the observing transaction's resolution is
        // visible, so rejecting the load here is never stale.
        if t.observed.load(Ordering::Acquire) {
            return Err(crate::error::DbError::LoadAfterBegin);
        }
        let logging = self
            .inner
            .dura
            .get()
            .filter(|d| d.level != DurabilityLevel::Off);
        let n = if let Some(d) = logging {
            // Durable load: buffer the words so the same content goes to
            // the log (in bounded chunks — a torn tail costs one chunk,
            // not the whole load) and to the column area. Validate the
            // size *before* the first append: an oversized fill must
            // panic exactly like the in-memory path does, not after
            // logging out-of-bounds records that would make every future
            // recovery of the directory fail.
            let words: Vec<u64> = values.into_iter().collect();
            assert!(
                words.len() as u64 <= t.rows as u64,
                "fill overflows the column"
            );
            for (i, chunk) in words
                .chunks(crate::durability::FILL_CHUNK_WORDS)
                .enumerate()
            {
                d.wal
                    .append(&anker_dura::WalRecord::FillColumn {
                        table: table.0,
                        col: col.0 as u16,
                        start_row: (i * crate::durability::FILL_CHUNK_WORDS) as u32,
                        words: chunk.to_vec(),
                    })
                    .map_err(crate::error::DbError::from)?;
            }
            t.col(col.0).current_area().fill(words)?
        } else {
            t.col(col.0).current_area().fill(values)?
        };
        Ok(n)
    }

    /// Table id of `name`.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.inner
            .tables
            .read()
            .iter()
            .position(|t| t.name == name)
            .map(|i| TableId(i as u16))
    }

    /// Schema of `table` (cloned; schemas are small).
    pub fn schema(&self, table: TableId) -> Schema {
        self.table_state(table).schema.clone()
    }

    /// Number of rows of `table`.
    pub fn rows(&self, table: TableId) -> u32 {
        self.table_state(table).rows
    }

    pub(crate) fn table_state(&self, table: TableId) -> Arc<TableState> {
        Arc::clone(&self.inner.tables.read()[table.0 as usize])
    }

    /// Begin a transaction of the given kind. The caller classifies the
    /// transaction (§2.2: "incoming transactions are classified into being
    /// either an OLTP or an OLAP transaction"); OLAP transactions are
    /// read-only by contract and, in heterogeneous mode, run on the newest
    /// snapshot epoch.
    pub fn begin(&self, kind: TxnKind) -> Txn {
        Txn::begin(self.clone(), kind)
    }

    /// Open a detached, `Send + Sync` [`SnapshotReader`] pinned to the
    /// newest serviceable snapshot epoch (creating one at a commit
    /// boundary when none is fresh). Heterogeneous mode only; see
    /// [`SnapshotReader`] for the pinning and snapshot-isolation
    /// contract.
    pub fn snapshot_reader(&self) -> Result<SnapshotReader> {
        SnapshotReader::open(self)
    }

    /// Pin a snapshot epoch for an arriving OLAP transaction or detached
    /// reader: the newest epoch if it is still fresh (within the trigger
    /// interval) and undamaged, otherwise a brand-new epoch created at a
    /// commit boundary (Figure 1, step 4: "as no snapshot is present yet
    /// to run T3 on, the first snapshot is taken").
    pub(crate) fn pin_current_epoch(&self) -> Arc<Epoch> {
        let max_age = self.inner.config.snapshot_every_commits;
        // Under sustained commit traffic a commit-quiescent instant may
        // never occur on its own (there is always some timestamp in
        // flight), so after this many failed rounds the arrival *forces*
        // quiescence instead of retrying forever — epoch creation must not
        // starve behind writers.
        const FORCE_AFTER: u32 = 64;
        let mut rounds = 0u32;
        loop {
            let now = self.inner.oracle.last_completed();
            if let Some(e) = self.inner.snapman.pin_newest_fresh(now, max_age) {
                return e;
            }
            let mut cs = self.lock_commit();
            // Re-check under the commit lock (another OLAP may have raced
            // us).
            let now = self.inner.oracle.last_completed();
            if let Some(e) = self.inner.snapman.pin_newest_fresh(now, max_age) {
                return e;
            }
            // A new epoch is only sound at a commit-quiescent point: with
            // commits installing out of timestamp order, the live columns
            // match the stable-timestamp watermark exactly only when no
            // commit is in flight. Holding the commit section keeps the
            // heterogeneous install stage out; if a committer is still
            // between its timestamp and its install, back off and retry
            // (the fair lock guarantees we are served again promptly).
            if self.inner.oracle.drained() {
                // Pin before releasing the commit lock: once the lock
                // drops, a concurrent commit could damage the fresh epoch.
                let epoch = self.inner.snapman.trigger_epoch(&mut cs, now);
                self.inner.snapman.pin_epoch(&epoch);
                return epoch;
            }
            drop(cs);
            rounds += 1;
            if rounds >= FORCE_AFTER {
                if let Some(e) = self.force_quiescent_epoch(max_age) {
                    return e;
                }
                // Another arrival holds the freeze; its epoch will satisfy
                // the fast path on the next round.
            }
            std::thread::yield_now();
        }
    }

    /// Force a commit-quiescent window and take an epoch inside it: park
    /// commit-timestamp allocation, let the in-flight committers drain,
    /// then trigger + pin under the commit lock. This bounds OLAP snapshot
    /// latency under sustained commit traffic at the cost of a brief
    /// commit stall — the same trade [`AnkerDb::run_gc_once`] makes for
    /// homogeneous GC. Returns `None` when another thread already holds
    /// the freeze (its epoch is imminent; retry the fast path).
    ///
    /// The drain wait must run **without** the commit lock: heterogeneous
    /// installs need it, so holding it while waiting for `drained()` would
    /// deadlock against the very committers being drained.
    fn force_quiescent_epoch(&self, max_age: u64) -> Option<Arc<Epoch>> {
        if !self.inner.oracle.try_freeze_commits() {
            return None;
        }
        sched::hit("epoch:forced");
        // In-flight committers hold no lock we own and allocate nothing
        // new (allocation is frozen), so this terminates — PROVIDED no
        // committer ever blocks on the freeze while holding a lock an
        // in-flight committer needs. The commit path upholds that by
        // releasing its validation-shard locks before waiting out a
        // freeze (see `Txn::commit_attempt`, stage 3); the deterministic
        // regression is `forced_epoch_vs_shard_held_committer_vs_pruner`
        // in tests/commit_pipeline.rs.
        while !self.inner.oracle.drained() {
            std::thread::yield_now();
        }
        let mut cs = self.lock_commit();
        let now = self.inner.oracle.last_completed();
        // A drained committer may have triggered a fresh epoch on its way
        // out (the commit-path trigger); reuse it rather than stack a
        // duplicate.
        let epoch = match self.inner.snapman.pin_newest_fresh(now, max_age) {
            Some(e) => e,
            None => {
                let e = self.inner.snapman.trigger_epoch(&mut cs, now);
                self.inner.snapman.pin_epoch(&e);
                e
            }
        };
        drop(cs);
        self.inner.oracle.unfreeze_commits();
        Some(epoch)
    }

    /// The reusable scan-worker pool, sized for at least `threads`
    /// threads of execution (growing — by replacement — when a scan asks
    /// for more than any before it). One job runs at a time per pool, so
    /// concurrent parallel scans normally serialize — the right shape for
    /// an analytical fleet that fans out one query at a time (use
    /// [`crate::ReaderScanBuilder::into_partitions`] to drive threads of
    /// your own instead). Exception: a scan that triggers growth gets the
    /// fresh, larger pool and runs alongside any scan still draining the
    /// old one — a one-off oversubscription per growth step, not a
    /// correctness concern.
    pub(crate) fn scan_pool(&self, threads: usize) -> Arc<WorkerPool> {
        let mut slot = self.inner.scan_pool.lock();
        match &*slot {
            Some(pool) if pool.threads() >= threads => Arc::clone(pool),
            _ => {
                let pool = Arc::new(WorkerPool::new(threads));
                *slot = Some(Arc::clone(&pool));
                pool
            }
        }
    }

    /// Counters of the real-OS memory backend (`None` on the simulated
    /// kernel): snapshots served, copy-on-write splits/reclaims, and the
    /// `madvise` hints issued for huge pages and sequential scans.
    pub fn os_stats(&self) -> Option<OsStatsSnapshot> {
        self.inner.backend.os_stats()
    }

    /// Current statistics.
    pub fn stats(&self) -> DbStatsSnapshot {
        let s = &self.inner.stats;
        let o = Ordering::Relaxed;
        DbStatsSnapshot {
            committed: s.committed.load(o),
            committed_read_only: s.committed_read_only.load(o),
            aborted_ww: s.aborted_ww.load(o),
            aborted_validation: s.aborted_validation.load(o),
            repaired_commits: s.repaired_commits.load(o),
            repair_rounds: s.repair_rounds.load(o),
            gc_passes: s.gc_passes.load(o),
            versions_collected: s.versions_collected.load(o),
            epochs_triggered: self.inner.snapman.stats.epochs_triggered.load(o),
            epochs_retired: self.inner.snapman.stats.epochs_retired.load(o),
            columns_materialized: self.inner.snapman.stats.columns_materialized.load(o),
            live_epochs: self.inner.snapman.live_epochs() as u64,
            kernel: self.inner.kernel.stats(),
        }
    }

    /// The unified observability surface: every metric the `obs` registry
    /// has seen so far — commit-stage and snapshot histograms, scan and
    /// GC counters, span-derived `*_ns` distributions — plus the legacy
    /// stats structs absorbed as namespaced values (`db_*`, `kernel_*`,
    /// and `os_*`/`wal_*` when the OS backend / a durability directory is
    /// in play). Render with [`obs::MetricsSnapshot::render_text`]
    /// (Prometheus exposition) or
    /// [`obs::MetricsSnapshot::render_json`].
    pub fn metrics(&self) -> obs::MetricsSnapshot {
        let mut m = obs::snapshot();
        let s = self.stats();
        m.set_counter(
            "db_committed_total",
            "Committed read-write transactions",
            s.committed,
        );
        m.set_counter(
            "db_committed_read_only_total",
            "Committed read-only transactions",
            s.committed_read_only,
        );
        m.set_counter(
            "db_aborted_ww_total",
            "Transactions aborted on a write-write conflict",
            s.aborted_ww,
        );
        m.set_counter(
            "db_aborted_validation_total",
            "Transactions aborted in read-set validation",
            s.aborted_validation,
        );
        m.set_counter(
            "db_repaired_commits_total",
            "Transactions that committed through conflict repair",
            s.repaired_commits,
        );
        m.set_counter(
            "db_repair_rounds_total",
            "Conflict-repair rounds run across all transactions",
            s.repair_rounds,
        );
        m.set_counter(
            "db_gc_passes_total",
            "Garbage-collection passes",
            s.gc_passes,
        );
        m.set_counter(
            "db_versions_collected_total",
            "Version-chain entries reclaimed by GC",
            s.versions_collected,
        );
        m.set_counter(
            "db_epochs_triggered_total",
            "Snapshot epochs registered",
            s.epochs_triggered,
        );
        m.set_counter(
            "db_epochs_retired_total",
            "Snapshot epochs retired",
            s.epochs_retired,
        );
        m.set_counter(
            "db_columns_materialized_total",
            "Columns frozen into an epoch via vm_snapshot",
            s.columns_materialized,
        );
        m.set_gauge(
            "db_live_epochs",
            "Snapshot epochs currently live",
            s.live_epochs as i64,
        );
        let k = &s.kernel;
        const KERNEL: [(&str, &str); 14] = [
            (
                "kernel_virtual_ns",
                "Virtual nanoseconds on the simulated kernel clock",
            ),
            ("kernel_mmap_calls_total", "Simulated mmap calls"),
            ("kernel_munmap_calls_total", "Simulated munmap calls"),
            ("kernel_mprotect_calls_total", "Simulated mprotect calls"),
            (
                "kernel_vm_snapshot_calls_total",
                "Simulated vm_snapshot calls",
            ),
            ("kernel_fork_calls_total", "Simulated fork calls"),
            ("kernel_page_faults_total", "Simulated page faults"),
            ("kernel_cow_faults_total", "Simulated copy-on-write faults"),
            (
                "kernel_protection_faults_total",
                "Simulated protection faults",
            ),
            ("kernel_frames_allocated_total", "Physical frames allocated"),
            ("kernel_frames_freed_total", "Physical frames freed"),
            ("kernel_ptes_copied_total", "Page-table entries copied"),
            ("kernel_vmas_copied_total", "VMA descriptors copied"),
            (
                "kernel_pages_copied_total",
                "Whole pages copied (CoW resolution)",
            ),
        ];
        let kernel_vals = [
            k.virtual_ns,
            k.mmap_calls,
            k.munmap_calls,
            k.mprotect_calls,
            k.vm_snapshot_calls,
            k.fork_calls,
            k.page_faults,
            k.cow_faults,
            k.protection_faults,
            k.frames_allocated,
            k.frames_freed,
            k.ptes_copied,
            k.vmas_copied,
            k.pages_copied,
        ];
        for ((name, help), v) in KERNEL.iter().zip(kernel_vals) {
            m.set_counter(name, help, v);
        }
        if let Some(os) = self.os_stats() {
            m.set_counter(
                "os_snapshots_total",
                "vm_snapshot rewires served by the OS backend",
                os.snapshots,
            );
            m.set_counter(
                "os_recycled_total",
                "OS-backend snapshots that reused a caller-provided destination",
                os.recycled,
            );
            m.set_counter(
                "os_cow_copies_total",
                "Copy-on-write block splits",
                os.cow_copies,
            );
            m.set_counter(
                "os_cow_reclaims_total",
                "Copy-on-write blocks folded back on unmap",
                os.cow_reclaims,
            );
            m.set_counter(
                "os_huge_page_advices_total",
                "MADV_HUGEPAGE hints issued",
                os.huge_page_advices,
            );
            m.set_counter(
                "os_sequential_advices_total",
                "MADV_SEQUENTIAL hints issued",
                os.sequential_advices,
            );
        }
        if let Some(w) = self.wal_stats() {
            m.set_counter(
                "wal_appends_total",
                "WAL records appended (all kinds)",
                w.appends,
            );
            m.set_counter(
                "wal_commit_records_total",
                "Commit records appended",
                w.commit_records,
            );
            m.set_counter(
                "wal_bytes_appended_total",
                "WAL frame bytes appended",
                w.bytes_appended,
            );
            m.set_counter(
                "wal_syncs_total",
                "fdatasync calls issued (commit_records/syncs = group-commit batching)",
                w.syncs,
            );
            m.set_counter(
                "wal_segments_created_total",
                "WAL segments created",
                w.segments_created,
            );
            m.set_counter(
                "wal_segments_retired_total",
                "WAL segments deleted by checkpoint truncation",
                w.segments_retired,
            );
        }
        m
    }

    /// Dump the per-thread span journals as Chrome-tracing JSON (load in
    /// `chrome://tracing` or Perfetto). Ring buffers hold the most recent
    /// [`ANKER_OBS_RING`](obs) events per thread, so this is a tail, not a
    /// full history; each thread reports how many events it overwrote.
    pub fn trace_dump(&self) -> String {
        obs::trace_json()
    }

    /// Version-chain entries currently held for one column across its
    /// current store **and** every frozen epoch store still retained for
    /// old readers (diagnostics).
    pub fn column_versions(&self, table: TableId, col: anker_storage::ColumnId) -> u64 {
        self.table_state(table)
            .col(col.0)
            .versioned
            .total_version_count()
    }

    /// Total version-chain entries currently held across all tables and
    /// epochs — current stores plus retained frozen epoch stores
    /// (diagnostics for Figure 9-style experiments).
    pub fn total_versions(&self) -> u64 {
        self.inner
            .tables
            .read()
            .iter()
            .flat_map(|t| t.cols.iter())
            .map(|c| c.versioned.total_version_count())
            .sum()
    }

    /// Acquire the serialized commit section in strict arrival order (see
    /// [`CommitLock`]). Since the concurrent commit pipeline landed, this
    /// section no longer covers validation, WAL appends, or fsyncs — only
    /// heterogeneous installs, snapshot materialisation, epoch triggers,
    /// bulk loads, and housekeeping.
    pub(crate) fn lock_commit(&self) -> CommitGuard<'_> {
        self.inner.commit_mx.lock()
    }

    /// Experiment support (§5.6, Figure 10): measure the cost of
    /// snapshotting each column of `table` individually with `vm_snapshot`.
    /// Returns per-column `(name, stats-delta)`; the probe snapshots are
    /// dropped again immediately. On the OS backend the snapshots are real
    /// but the virtual-clock deltas are zero (wall-clock benches measure
    /// that backend instead).
    pub fn snapshot_cost_probe(
        &self,
        table: TableId,
    ) -> Result<Vec<(String, anker_vmem::KernelStats)>> {
        let state = self.table_state(table);
        let _cs = self.lock_commit();
        let mut out = Vec::with_capacity(state.cols.len());
        for (id, def) in state.schema.iter() {
            let area = state.col(id.0).current_area();
            let before = self.inner.kernel.stats();
            let snap = self
                .inner
                .backend
                .vm_snapshot(None, area.addr(), area.mapped_bytes())?;
            let delta = self.inner.kernel.stats().delta_since(&before);
            self.inner.backend.release(snap, area.mapped_bytes())?;
            out.push((def.name.clone(), delta));
        }
        Ok(out)
    }

    /// Experiment support (§5.6, Figure 10): the cost of snapshotting via
    /// `fork`, which duplicates the *entire* database address space —
    /// every column of every table plus all live snapshot areas. (The
    /// paper's process also contained indexes and version chains; ours
    /// keeps those outside the simulated space, which only understates
    /// fork's disadvantage.)
    pub fn fork_cost_probe(&self) -> Result<anker_vmem::KernelStats> {
        if self.inner.config.backend != BackendKind::Sim {
            // Really forking the process is not something a library should
            // do to its host; the fork comparison is a simulator-only
            // experiment.
            return Err(anker_vmem::VmError::InvalidArgument(
                "the fork cost probe requires the simulated backend",
            )
            .into());
        }
        let _cs = self.lock_commit();
        let before = self.inner.kernel.stats();
        let child = self.inner.space.fork()?;
        let delta = self.inner.kernel.stats().delta_since(&before);
        drop(child);
        Ok(delta)
    }

    /// Run one garbage-collection pass (homogeneous mode). Takes the
    /// commit lock and — in homogeneous mode, where installs run outside
    /// it — additionally freezes commit-timestamp allocation and drains
    /// in-flight committers first: the chain-compaction pass rewrites
    /// skip-block ranges and must not race concurrent installs (see
    /// [`anker_mvcc::ChainStore::gc`]). This stop-the-world window is
    /// exactly the cost the paper attributes to classical MVCC GC.
    pub fn run_gc_once(&self) -> u64 {
        // Whole-pass latency, commit-lock wait and quiesce spin included —
        // that wait is the cost OLTP actually pays for a GC pass.
        let _obs_gc = obs::span!("gc_pass");
        let _cs = self.lock_commit();
        let quiesce = self.inner.config.mode == ProcessingMode::Homogeneous;
        if quiesce {
            self.inner.oracle.freeze_commits();
            while !self.inner.oracle.drained() {
                std::thread::yield_now();
            }
        }
        // In heterogeneous mode installs happen under the commit lock we
        // already hold, so the pass is quiescent either way.
        let min = self
            .inner
            .active
            .min_active_or(self.inner.oracle.last_completed());
        let mut removed = 0u64;
        for table in self.inner.tables.read().iter() {
            for col in &table.cols {
                removed += col.versioned.gc(min);
            }
        }
        if quiesce {
            self.inner.oracle.unfreeze_commits();
        }
        // Housekeeping that only needs shard locks runs after commits
        // resume: a committer parked in `begin_commit` during the freeze
        // may hold validation-shard locks, so taking them before
        // unfreezing could deadlock.
        for table in self.inner.tables.read().iter() {
            for col in &table.cols {
                col.versioned.release_frozen(min);
            }
        }
        self.inner.recent.prune(min);
        self.inner.snapman.graveyard.drain(min);
        self.inner.stats.gc_passes.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .versions_collected
            .fetch_add(removed, Ordering::Relaxed);
        removed
    }

    /// Shut the database down cleanly: stop the background checkpointer
    /// and GC threads, drop the cached scan worker pool (joining its
    /// threads), and flush + `fdatasync` the write-ahead log so every
    /// acknowledged commit is durable regardless of durability level.
    ///
    /// **Idempotent** — safe to call any number of times — and also
    /// invoked automatically when the last database handle drops, so a
    /// forgotten call no longer leaks the worker-pool threads or an
    /// unsynced WAL tail. Call it explicitly when you need the flush to
    /// happen at a deterministic point (e.g. before copying the
    /// durability directory).
    pub fn shutdown(&self) {
        self.inner.shutdown_inner();
    }
}

impl DbInner {
    fn shutdown_inner(&self) {
        if let Some(t) = self.ckpt.lock().take() {
            t.stop_and_join();
        }
        if let Some(t) = self.gc.lock().take() {
            t.stop_and_join();
        }
        // Dropping the last Arc joins the pool's worker threads; scans
        // still holding a clone keep theirs alive until they finish.
        self.scan_pool.lock().take();
        if let Some(d) = self.dura.get() {
            if d.level != DurabilityLevel::Off {
                if let Err(e) = d.wal.sync_all() {
                    eprintln!("ankerdb: WAL flush on shutdown failed: {e}");
                }
            }
        }
    }
}

impl Drop for DbInner {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
