//! The typed scan layer: [`ScanBuilder`] (in-transaction scans, both
//! processing paths) and [`ReaderScanBuilder`] (detached
//! [`crate::SnapshotReader`] scans, sequential or morsel-parallel) —
//! predicates pushed down into the block loops, with automatic
//! precision-lock registration on the serializable path.
//!
//! The paper's headline fast path is the tight, version-check-free snapshot
//! scan (§2.2, §5.5). The builders keep that loop structure and add three
//! things on top:
//!
//! * **Predicate pushdown.** Typed filters ([`ScanBuilder::range_i64`],
//!   [`ScanBuilder::range_f64`], [`ScanBuilder::lt_f64`],
//!   [`ScanBuilder::dict_eq`], [`ScanBuilder::in_set`]) are evaluated inside
//!   the 1024-row block loops. On the snapshot path, per-block min/max zone
//!   maps ([`anker_storage::ZoneMap`], built lazily on the frozen snapshot
//!   areas) let whole blocks skip when no filter can match
//!   (`ScanStats::blocks_skipped`); projection columns are only read for
//!   blocks with at least one surviving row.
//! * **Automatic precision locking.** Every filter is converted into the
//!   equivalent [`Pred`] for serializable updaters (§2.1), and projected
//!   columns without a filter are logged as full-column reads — the
//!   serializability footgun of forgetting a manual `log_range` call no
//!   longer exists.
//! * **Morsel parallelism.** A detached reader's scan fans out over
//!   1024-row-aligned morsel ranges on the database's reusable worker pool
//!   ([`ReaderScanBuilder::parallel`]) or splits into caller-driven
//!   [`ScanPartition`]s ([`ReaderScanBuilder::into_partitions`]). Workers
//!   pull morsels dynamically; per-morsel [`ScanStats`] and fold
//!   accumulators are merged **in morsel order**, so results are
//!   deterministic for any worker count.
//!
//! The frozen-scan machinery is shared: both builders compile into a
//! `FrozenScanCore` (resolved snapshot columns + zone maps, immutable,
//! `Sync`) driven by per-worker `FrozenCursor`s over arbitrary
//! block-aligned row ranges.

use crate::error::Result;
use crate::reader::SnapshotReader;
use crate::snapman::SnapCol;
use crate::table::{TableId, TableState};
use crate::txn::Txn;
use anker_mvcc::{Pred, ScanStats, Transaction, BLOCK_ROWS};
use anker_storage::{rank, ColumnId, LogicalType, Value, ZoneMap};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Most blocks per morsel: the work quantum parallel scans hand out.
/// 16 blocks = 16 384 rows = 128 KiB per column — big enough to amortise
/// dispatch, small enough that dynamic pulling balances skewed pruning.
/// Small tables use proportionally smaller morsels (see
/// [`morsel_blocks`]) so they still split.
pub(crate) const MORSEL_BLOCKS: u32 = 16;

/// Blocks per morsel for a table of `blocks` 1024-row blocks: aim for at
/// least [`MORSEL_BLOCKS`] morsels, capped at [`MORSEL_BLOCKS`] blocks
/// each. Depends **only** on table size — never on the thread count — so
/// morsel boundaries (and therefore fold groupings and merged results,
/// even for non-associative `f64` accumulation) are identical for every
/// fan-out.
fn morsel_blocks(blocks: u32) -> u32 {
    blocks.div_ceil(MORSEL_BLOCKS).clamp(1, MORSEL_BLOCKS)
}

/// One compiled per-column filter.
#[derive(Debug, Clone)]
enum FilterKind {
    /// `lo <= value <= hi` on the decoded `i64` of an Int or Date column.
    /// Compared exactly — no `f64` rank — so values beyond the 53-bit
    /// mantissa filter correctly.
    RangeI { lo: i64, hi: i64 },
    /// `lo <= rank(value)` and `rank(value) <= hi` (or `< hi` when
    /// `hi_exclusive`) on a Double column.
    Range {
        lo: f64,
        hi: f64,
        hi_exclusive: bool,
    },
    /// Dictionary code equality.
    DictEq(u32),
    /// Dictionary code set membership.
    InSet(Vec<u32>),
}

#[derive(Debug, Clone)]
struct Filter {
    col: ColumnId,
    ty: LogicalType,
    kind: FilterKind,
}

impl Filter {
    #[inline]
    fn matches(&self, word: u64) -> bool {
        match &self.kind {
            FilterKind::RangeI { lo, hi } => {
                let v = word as i64;
                v >= *lo && v <= *hi
            }
            FilterKind::Range {
                lo,
                hi,
                hi_exclusive,
            } => {
                let r = rank(word, self.ty);
                r >= *lo && if *hi_exclusive { r < *hi } else { r <= *hi }
            }
            FilterKind::DictEq(code) => word as u32 == *code,
            FilterKind::InSet(codes) => codes.contains(&(word as u32)),
        }
    }

    /// Can any value in a block with rank range `[min, max]` match?
    ///
    /// Zone maps store `f64` ranks, so integer bounds compare through
    /// their rounded images here. That stays conservative: rounding is
    /// monotone, so `max_rank < round(lo)` implies every value in the
    /// block is exactly `< lo` (and symmetrically for the upper bound) —
    /// a block is only pruned when no value can match exactly.
    fn block_can_match(&self, min: f64, max: f64) -> bool {
        match &self.kind {
            FilterKind::RangeI { lo, hi } => max >= *lo as f64 && min <= *hi as f64,
            FilterKind::Range {
                lo,
                hi,
                hi_exclusive,
            } => max >= *lo && if *hi_exclusive { min < *hi } else { min <= *hi },
            FilterKind::DictEq(code) => {
                let c = *code as f64;
                c >= min && c <= max
            }
            FilterKind::InSet(codes) => codes.iter().any(|&c| {
                let c = c as f64;
                c >= min && c <= max
            }),
        }
    }

    /// Register the precision locks equivalent to this filter. Bounds are
    /// only ever widened — exclusive bounds become inclusive, and integer
    /// bounds beyond the 53-bit mantissa are padded by one ULP against
    /// `f64` rounding — strictly conservative, never under-locking.
    fn log_preds(&self, col: anker_mvcc::ColRef, txn: &mut Transaction) {
        match &self.kind {
            FilterKind::RangeI { lo, hi } => txn.log_predicate(Pred::Range {
                col,
                ty: self.ty,
                lo: (*lo as f64).next_down(),
                hi: (*hi as f64).next_up(),
            }),
            FilterKind::Range { lo, hi, .. } => txn.log_predicate(Pred::Range {
                col,
                ty: self.ty,
                lo: *lo,
                hi: *hi,
            }),
            FilterKind::DictEq(code) => txn.log_predicate(Pred::DictEq { col, code: *code }),
            FilterKind::InSet(codes) => {
                for &code in codes {
                    txn.log_predicate(Pred::DictEq { col, code });
                }
            }
        }
    }
}

/// What to scan: the compiled filters and the projection, independent of
/// which host (transaction or detached reader) drives the scan. Both
/// builders delegate their typed predicate methods here so the assertion
/// and compilation logic exists exactly once.
#[derive(Debug, Clone, Default)]
struct ScanSpec {
    filters: Vec<Filter>,
    projection: Vec<ColumnId>,
}

impl ScanSpec {
    fn range_i64(&mut self, col: ColumnId, ty: LogicalType, lo: i64, hi: i64) {
        assert!(
            matches!(ty, LogicalType::Int | LogicalType::Date),
            "range_i64 applies to Int or Date columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::RangeI { lo, hi },
        });
    }

    fn range_f64(&mut self, col: ColumnId, ty: LogicalType, lo: f64, hi: f64) {
        assert!(
            ty == LogicalType::Double,
            "range_f64 applies to Double columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::Range {
                lo,
                hi,
                hi_exclusive: false,
            },
        });
    }

    fn lt_f64(&mut self, col: ColumnId, ty: LogicalType, hi: f64) {
        assert!(
            ty == LogicalType::Double,
            "lt_f64 applies to Double columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::Range {
                lo: f64::NEG_INFINITY,
                hi,
                hi_exclusive: true,
            },
        });
    }

    fn dict_eq(&mut self, col: ColumnId, ty: LogicalType, code: u32) {
        assert!(
            ty == LogicalType::Dict,
            "dict_eq applies to Dict columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::DictEq(code),
        });
    }

    fn in_set(&mut self, col: ColumnId, ty: LogicalType, codes: Vec<u32>) {
        assert!(
            ty == LogicalType::Dict,
            "in_set applies to Dict columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::InSet(codes),
        });
    }
}

/// A scan under construction: obtain with [`Txn::scan_on`], chain typed
/// predicates and a projection, finish with a terminal method.
///
/// Filters combine conjunctively (logical AND). The projection decides what
/// the row callback receives, in the order given to
/// [`ScanBuilder::project`]; without a projection the callback receives an
/// empty slice (useful with [`ScanBuilder::count`] or when only row ids
/// matter). A column may appear in both a filter and the projection; its
/// block is read once.
#[must_use = "a ScanBuilder does nothing until a terminal method runs it"]
pub struct ScanBuilder<'t> {
    txn: &'t mut Txn,
    table: TableId,
    spec: ScanSpec,
}

impl<'t> ScanBuilder<'t> {
    pub(crate) fn new(txn: &'t mut Txn, table: TableId) -> ScanBuilder<'t> {
        ScanBuilder {
            txn,
            table,
            spec: ScanSpec::default(),
        }
    }

    fn col_ty(&mut self, col: ColumnId) -> LogicalType {
        self.txn.table(self.table).schema.def(col).ty
    }

    /// Keep rows with `lo <= col <= hi` (inclusive). `col` must be an
    /// `Int` or `Date` column (dates are their day counts). The comparison
    /// is exact over the full `i64` domain.
    pub fn range_i64(mut self, col: ColumnId, lo: i64, hi: i64) -> Self {
        let ty = self.col_ty(col);
        self.spec.range_i64(col, ty, lo, hi);
        self
    }

    /// Keep rows with `lo <= col <= hi` (inclusive). `col` must be a
    /// `Double` column.
    pub fn range_f64(mut self, col: ColumnId, lo: f64, hi: f64) -> Self {
        let ty = self.col_ty(col);
        self.spec.range_f64(col, ty, lo, hi);
        self
    }

    /// Keep rows with `col < hi` (strict). `col` must be a `Double`
    /// column.
    pub fn lt_f64(mut self, col: ColumnId, hi: f64) -> Self {
        let ty = self.col_ty(col);
        self.spec.lt_f64(col, ty, hi);
        self
    }

    /// Keep rows whose dictionary code equals `code`. `col` must be a
    /// `Dict` column.
    pub fn dict_eq(mut self, col: ColumnId, code: u32) -> Self {
        let ty = self.col_ty(col);
        self.spec.dict_eq(col, ty, code);
        self
    }

    /// Keep rows whose dictionary code is one of `codes` (an empty set
    /// matches nothing). `col` must be a `Dict` column.
    pub fn in_set(mut self, col: ColumnId, codes: impl IntoIterator<Item = u32>) -> Self {
        let ty = self.col_ty(col);
        self.spec.in_set(col, ty, codes.into_iter().collect());
        self
    }

    /// Set the columns the row callback receives, in this order.
    pub fn project(mut self, cols: &[ColumnId]) -> Self {
        self.spec.projection = cols.to_vec();
        self
    }

    /// Run the scan, calling `f(row, words)` with the **raw 8-byte words**
    /// of the projection for every row that passes all filters — the
    /// escape hatch for hot aggregation loops that decode inline.
    pub fn for_each(self, mut f: impl FnMut(u32, &[u64])) -> Result<ScanStats> {
        self.run(&mut f)
    }

    /// Run the scan, calling `f(row, values)` with the decoded
    /// [`Value`]s of the projection for every row that passes all filters.
    pub fn for_each_typed(self, mut f: impl FnMut(u32, &[Value])) -> Result<ScanStats> {
        let tys: Vec<LogicalType> = {
            let state = self.txn.table(self.table);
            self.spec
                .projection
                .iter()
                .map(|&c| state.schema.def(c).ty)
                .collect()
        };
        let mut vals: Vec<Value> = Vec::with_capacity(tys.len());
        self.run(&mut |row, words| {
            vals.clear();
            vals.extend(words.iter().zip(&tys).map(|(&w, &ty)| Value::decode(w, ty)));
            f(row, &vals);
        })
    }

    /// Run the scan, folding the decoded projection of every passing row
    /// into an accumulator.
    pub fn fold<A>(
        self,
        init: A,
        mut f: impl FnMut(A, u32, &[Value]) -> A,
    ) -> Result<(A, ScanStats)> {
        let mut acc = Some(init);
        let stats = self.for_each_typed(|row, vals| {
            let a = acc.take().expect("accumulator present");
            acc = Some(f(a, row, vals));
        })?;
        Ok((acc.expect("accumulator present"), stats))
    }

    /// Run the scan and count the rows passing all filters. The projection
    /// is ignored (no value columns are read).
    pub fn count(mut self) -> Result<(u64, ScanStats)> {
        self.spec.projection.clear();
        let mut n = 0u64;
        let stats = self.run(&mut |_, _| n += 1)?;
        Ok((n, stats))
    }

    /// Execute: log precision locks, then drive the snapshot or the
    /// versioned block loop.
    fn run(self, sink: &mut dyn FnMut(u32, &[u64])) -> Result<ScanStats> {
        let ScanBuilder { txn, table, spec } = self;
        if txn.serializable_updater() {
            for flt in &spec.filters {
                flt.log_preds(Txn::colref(table, flt.col), &mut txn.inner);
            }
            // Projection columns without a filter are full-column reads;
            // filtered columns are covered (more precisely) by their
            // filter's predicate.
            for &c in &spec.projection {
                if !spec.filters.iter().any(|flt| flt.col == c) {
                    txn.inner.log_predicate(Pred::FullColumn {
                        col: Txn::colref(table, c),
                    });
                }
            }
        }
        let mut stats = ScanStats {
            threads: 1,
            ..ScanStats::default()
        };
        if txn.epoch.is_some() {
            Self::run_snapshot(txn, table, spec, sink, &mut stats)?;
        } else {
            Self::run_versioned(txn, table, &spec, sink, &mut stats)?;
        }
        stats.morsels += 1;
        txn.scan_stats.merge(&stats);
        Ok(stats)
    }

    /// Heterogeneous OLAP: the in-transaction sequential variant of the
    /// frozen snapshot scan — compile a [`FrozenScanCore`] against the
    /// transaction's pinned epoch (materialising columns through the
    /// per-transaction cache) and drive one cursor over all rows.
    fn run_snapshot(
        txn: &mut Txn,
        table: TableId,
        spec: ScanSpec,
        sink: &mut dyn FnMut(u32, &[u64]),
        stats: &mut ScanStats,
    ) -> Result<()> {
        let rows = txn.db.rows(table);
        let core = FrozenScanCore::build(rows, spec, None, &mut |c| txn.snapshot_col(table, c))?;
        let mut cursor = FrozenCursor::new(&core);
        cursor.run_range(0, rows, sink, stats)
    }

    /// Versioned scan at the transaction's start timestamp with the
    /// 1024-row block-skip optimisation (§5.5). Live data carries no zone
    /// maps (in-place installs would invalidate them), but filters still
    /// run inside the block loop and projection columns are only gathered
    /// for blocks with surviving rows.
    fn run_versioned(
        txn: &mut Txn,
        table: TableId,
        spec: &ScanSpec,
        sink: &mut dyn FnMut(u32, &[u64]),
        stats: &mut ScanStats,
    ) -> Result<()> {
        let filters = &spec.filters;
        let projection = &spec.projection;
        let rows = txn.db.rows(table);
        let state: Arc<TableState> = txn.table(table);
        let start_ts = txn.inner.start_ts();
        let filter_states: Vec<_> = filters.iter().map(|flt| state.col(flt.col.0)).collect();
        let filter_areas: Vec<_> = filter_states.iter().map(|cs| cs.current_area()).collect();
        let proj_states: Vec<_> = projection.iter().map(|&c| state.col(c.0)).collect();
        let proj_areas: Vec<_> = proj_states.iter().map(|cs| cs.current_area()).collect();
        // Live data is never borrowed as a slice (concurrent installs
        // mutate it); every block goes through the versioned gather.
        let no_fslices: Vec<Option<&[u64]>> = vec![None; filters.len()];
        let no_pslices: Vec<Option<&[u64]>> = vec![None; projection.len()];
        let mut fbufs: Vec<Vec<u64>> = filters
            .iter()
            .map(|_| vec![0u64; BLOCK_ROWS as usize])
            .collect();
        let mut em = BlockEmitter::new(filters, projection, &vec![false; projection.len()]);
        let mut start = 0u32;
        while start < rows {
            let n = BLOCK_ROWS.min(rows - start);
            for ((cs, area), buf) in filter_states
                .iter()
                .zip(&filter_areas)
                .zip(fbufs.iter_mut())
            {
                cs.versioned
                    .gather_visible_block(area, start_ts, start, n, buf, stats)?;
            }
            em.filter_and_emit(
                filters,
                &no_fslices,
                &fbufs,
                &no_pslices,
                start,
                n,
                stats,
                &mut |pi, buf, stats| {
                    proj_states[pi].versioned.gather_visible_block(
                        &proj_areas[pi],
                        start_ts,
                        start,
                        n,
                        buf,
                        stats,
                    )?;
                    Ok(())
                },
                sink,
            )?;
            start += n;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The shared frozen-scan machinery
// ---------------------------------------------------------------------

/// A compiled scan over frozen snapshot columns: the resolved
/// [`SnapCol`]s, their zone maps, and the spec. Immutable and `Sync` —
/// parallel workers share one core by reference and drive their own
/// [`FrozenCursor`]s over disjoint row ranges. Holding the core keeps
/// every scanned area alive (the `Arc<SnapCol>`s) **and** — on the
/// reader path — keeps the epoch pinned: the core owns the
/// [`ReaderPin`](crate::reader::ReaderPin), so anything holding the core
/// carries the §4.1.3 recycling-rule justification for its zero-copy
/// slices with it. On the transaction path `pin` is `None`; there the
/// active-transaction horizon covers the scan (the engine never recycles
/// an area a live transaction can reach).
pub(crate) struct FrozenScanCore {
    rows: u32,
    spec: ScanSpec,
    filter_snaps: Vec<Arc<SnapCol>>,
    proj_snaps: Vec<Arc<SnapCol>>,
    zone_maps: Vec<Arc<ZoneMap>>,
    #[allow(dead_code)] // held for its Drop (epoch unpin), never read
    pin: Option<Arc<crate::reader::ReaderPin>>,
}

impl FrozenScanCore {
    /// Resolve every filter and projection column through `resolve`
    /// (which materialises on first access), build the zone maps, and
    /// advise the backend of the impending sequential read. `pin` is the
    /// epoch pin the core takes ownership of on the reader path.
    fn build(
        rows: u32,
        spec: ScanSpec,
        pin: Option<Arc<crate::reader::ReaderPin>>,
        resolve: &mut dyn FnMut(ColumnId) -> Result<Arc<SnapCol>>,
    ) -> Result<FrozenScanCore> {
        let filter_snaps = spec
            .filters
            .iter()
            .map(|flt| resolve(flt.col))
            .collect::<Result<Vec<_>>>()?;
        let proj_snaps = spec
            .projection
            .iter()
            .map(|&c| resolve(c))
            .collect::<Result<Vec<_>>>()?;
        // Zone maps live on the frozen snapshot areas; building them is a
        // one-time cost per (epoch, column) amortised over every filtered
        // scan of that snapshot.
        let zone_maps: Vec<Arc<ZoneMap>> = spec
            .filters
            .iter()
            .zip(&filter_snaps)
            .map(|(flt, sc)| sc.area().zone_map(flt.ty, BLOCK_ROWS))
            .collect::<std::result::Result<_, _>>()?;
        // One sequential-readahead hint per distinct area about to be
        // streamed (madvise on the OS backend, no-op simulated).
        let mut advised: Vec<u64> = Vec::new();
        for sc in filter_snaps.iter().chain(&proj_snaps) {
            let addr = sc.area().addr();
            if !advised.contains(&addr) {
                advised.push(addr);
                sc.area().advise_sequential();
            }
        }
        Ok(FrozenScanCore {
            rows,
            spec,
            filter_snaps,
            proj_snaps,
            zone_maps,
            pin,
        })
    }

    pub(crate) fn rows(&self) -> u32 {
        self.rows
    }
}

/// Per-worker scan state over a shared [`FrozenScanCore`]: the zero-copy
/// column slices (where the backend exposes them), gather buffers, and the
/// block emitter. Creating a cursor is cheap relative to a morsel; each
/// parallel worker owns one and reuses it across all morsels it pulls.
pub(crate) struct FrozenCursor<'c> {
    core: &'c FrozenScanCore,
    f_slices: Vec<Option<&'c [u64]>>,
    p_slices: Vec<Option<&'c [u64]>>,
    fbufs: Vec<Vec<u64>>,
    em: BlockEmitter,
}

impl<'c> FrozenCursor<'c> {
    pub(crate) fn new(core: &'c FrozenScanCore) -> FrozenCursor<'c> {
        // SAFETY(provenance: core, sc): the core holds an `Arc<SnapCol>`
        // per column and owns the epoch pin (or, on the transaction path,
        // is covered by the active-transaction horizon), so the frozen
        // areas can neither be unmapped nor recycled while these borrows
        // live; frozen areas are never written after hand-over, so the
        // slices are genuinely immutable.
        let f_slices: Vec<Option<&[u64]>> = core
            .filter_snaps
            .iter()
            .map(|sc| unsafe { sc.area().as_slice() })
            .collect();
        // SAFETY(provenance: core, sc): same contract as the filter
        // slices above — pinned epoch, frozen areas.
        let p_slices: Vec<Option<&[u64]>> = core
            .proj_snaps
            .iter()
            .map(|sc| unsafe { sc.area().as_slice() })
            .collect();
        let fbufs: Vec<Vec<u64>> = core
            .spec
            .filters
            .iter()
            .map(|_| vec![0u64; BLOCK_ROWS as usize])
            .collect();
        let proj_sliced: Vec<bool> = p_slices.iter().map(Option::is_some).collect();
        let em = BlockEmitter::new(&core.spec.filters, &core.spec.projection, &proj_sliced);
        FrozenCursor {
            core,
            f_slices,
            p_slices,
            fbufs,
            em,
        }
    }

    /// Scan rows `[start, end)` — `start` must be 1024-row (block)
    /// aligned — applying zone-map pruning per block and emitting
    /// surviving rows into `sink`. Counters accumulate into `stats`.
    pub(crate) fn run_range(
        &mut self,
        start: u32,
        end: u32,
        sink: &mut dyn FnMut(u32, &[u64]),
        stats: &mut ScanStats,
    ) -> Result<()> {
        if start >= end {
            // Empty ranges (e.g. a trailing empty partition of a small
            // table) are legal and need not be block-aligned.
            return Ok(());
        }
        debug_assert!(
            start.is_multiple_of(BLOCK_ROWS),
            "morsels are block-aligned"
        );
        let FrozenCursor {
            core,
            f_slices,
            p_slices,
            fbufs,
            em,
        } = self;
        let filters = &core.spec.filters;
        let end = end.min(core.rows);
        let mut start = start;
        while start < end {
            let n = BLOCK_ROWS.min(end - start);
            let block_idx = (start / BLOCK_ROWS) as usize;
            let prunable = !core.zone_maps.iter().zip(filters).all(|(zm, flt)| {
                let (lo, hi) = zm.block_range(block_idx);
                flt.block_can_match(lo, hi)
            });
            if prunable {
                stats.blocks_skipped += 1;
                start += n;
                continue;
            }
            for ((sc, slice), buf) in core
                .filter_snaps
                .iter()
                .zip(&*f_slices)
                .zip(fbufs.iter_mut())
            {
                if slice.is_none() {
                    sc.area().read_block_into(start, n, buf)?;
                }
            }
            stats.tight_rows += n as u64;
            em.filter_and_emit(
                filters,
                f_slices,
                fbufs,
                p_slices,
                start,
                n,
                stats,
                &mut |pi, buf, _| Ok(core.proj_snaps[pi].area().read_block_into(start, n, buf)?),
                sink,
            )?;
            start += n;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Detached reader scans: sequential, morsel-parallel, partitioned
// ---------------------------------------------------------------------

/// A scan under construction on a [`SnapshotReader`]: obtain with
/// [`SnapshotReader::scan`], chain the same typed predicates and
/// projection as [`ScanBuilder`], optionally fan out with
/// [`ReaderScanBuilder::parallel`], and finish with a terminal method.
///
/// Reader scans run **only** on the reader's pinned frozen epoch: no
/// version checks, no commit-lock acquisition after the scanned columns
/// are materialised, and snapshot-isolation semantics at the epoch
/// timestamp (see [`SnapshotReader`] for the contract).
///
/// Parallel terminals merge per-morsel results in morsel order, so for
/// associative merge operators the result is deterministic and identical
/// across thread counts.
#[must_use = "a ReaderScanBuilder does nothing until a terminal method runs it"]
pub struct ReaderScanBuilder<'r> {
    reader: &'r SnapshotReader,
    table: TableId,
    spec: ScanSpec,
    threads: usize,
}

impl<'r> ReaderScanBuilder<'r> {
    pub(crate) fn new(reader: &'r SnapshotReader, table: TableId) -> ReaderScanBuilder<'r> {
        ReaderScanBuilder {
            reader,
            table,
            spec: ScanSpec::default(),
            threads: 1,
        }
    }

    fn col_ty(&self, col: ColumnId) -> LogicalType {
        self.reader.db().table_state(self.table).schema.def(col).ty
    }

    /// Keep rows with `lo <= col <= hi` (inclusive; `Int`/`Date` column).
    pub fn range_i64(mut self, col: ColumnId, lo: i64, hi: i64) -> Self {
        let ty = self.col_ty(col);
        self.spec.range_i64(col, ty, lo, hi);
        self
    }

    /// Keep rows with `lo <= col <= hi` (inclusive; `Double` column).
    pub fn range_f64(mut self, col: ColumnId, lo: f64, hi: f64) -> Self {
        let ty = self.col_ty(col);
        self.spec.range_f64(col, ty, lo, hi);
        self
    }

    /// Keep rows with `col < hi` (strict; `Double` column).
    pub fn lt_f64(mut self, col: ColumnId, hi: f64) -> Self {
        let ty = self.col_ty(col);
        self.spec.lt_f64(col, ty, hi);
        self
    }

    /// Keep rows whose dictionary code equals `code` (`Dict` column).
    pub fn dict_eq(mut self, col: ColumnId, code: u32) -> Self {
        let ty = self.col_ty(col);
        self.spec.dict_eq(col, ty, code);
        self
    }

    /// Keep rows whose dictionary code is one of `codes` (`Dict` column;
    /// an empty set matches nothing).
    pub fn in_set(mut self, col: ColumnId, codes: impl IntoIterator<Item = u32>) -> Self {
        let ty = self.col_ty(col);
        self.spec.in_set(col, ty, codes.into_iter().collect());
        self
    }

    /// Set the columns the row callback receives, in this order.
    pub fn project(mut self, cols: &[ColumnId]) -> Self {
        self.spec.projection = cols.to_vec();
        self
    }

    /// Fan the scan out over `threads` threads of execution (the caller
    /// is one of them; the rest come from the database's reusable scan
    /// pool). Workers pull 1024-row-aligned morsels dynamically;
    /// per-morsel results merge in morsel order. `parallel(1)` (the
    /// default) runs entirely on the calling thread.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn build_core(&mut self) -> Result<FrozenScanCore> {
        let reader = self.reader;
        let table = self.table;
        let rows = reader.db().rows(table);
        let spec = std::mem::take(&mut self.spec);
        FrozenScanCore::build(rows, spec, Some(reader.pin_handle()), &mut |c| {
            reader.snap_col(table, c)
        })
    }

    /// Run the scan and count the rows passing all filters. The
    /// projection is ignored (no value columns are read).
    pub fn count(mut self) -> Result<(u64, ScanStats)> {
        self.spec.projection.clear();
        let threads = self.threads;
        let core = self.build_core()?;
        let (counts, stats) = run_morsels(self.reader, &core, threads, &|| 0u64, &|acc, _, _| {
            *acc += 1
        })?;
        Ok((counts.into_iter().sum(), stats))
    }

    /// Run the scan, calling `f(row, words)` with the raw 8-byte words of
    /// the projection for every passing row. Under [`parallel`], `f` is
    /// called concurrently from multiple threads and rows of different
    /// morsels arrive in no particular order (within a morsel, row order
    /// holds); use [`fold`] when you need a deterministic reduction.
    ///
    /// [`parallel`]: ReaderScanBuilder::parallel
    /// [`fold`]: ReaderScanBuilder::fold
    pub fn for_each(mut self, f: impl Fn(u32, &[u64]) + Sync) -> Result<ScanStats> {
        let threads = self.threads;
        let core = self.build_core()?;
        let (_, stats) = run_morsels(self.reader, &core, threads, &|| (), &|(), row, words| {
            f(row, words)
        })?;
        Ok(stats)
    }

    /// Run the scan, folding every passing row's decoded projection into
    /// per-morsel accumulators (each seeded with a clone of `init`) and
    /// merging them **in morsel order** with `merge`. For an associative
    /// `merge` the result equals the sequential fold and is identical for
    /// every thread count.
    pub fn fold<A, F, M>(mut self, init: A, f: F, merge: M) -> Result<(A, ScanStats)>
    where
        A: Clone + Send + Sync,
        F: Fn(A, u32, &[Value]) -> A + Sync,
        M: Fn(A, A) -> A,
    {
        let tys: Vec<LogicalType> = {
            let state = self.reader.db().table_state(self.table);
            self.spec
                .projection
                .iter()
                .map(|&c| state.schema.def(c).ty)
                .collect()
        };
        let threads = self.threads;
        let core = self.build_core()?;
        // The decode buffer rides inside the accumulator so each morsel
        // (and thus each worker) reuses one allocation across its rows.
        let (accs, stats) = run_morsels(
            self.reader,
            &core,
            threads,
            &|| (Some(init.clone()), Vec::with_capacity(tys.len())),
            &|(acc, vals): &mut (Option<A>, Vec<Value>), row, words| {
                vals.clear();
                vals.extend(words.iter().zip(&tys).map(|(&w, &ty)| Value::decode(w, ty)));
                let a = acc.take().expect("accumulator present");
                *acc = Some(f(a, row, vals));
            },
        )?;
        let folded = accs
            .into_iter()
            .map(|(a, _)| a.expect("accumulator present"))
            .reduce(merge)
            .unwrap_or(init);
        Ok((folded, stats))
    }

    /// Split the scan into `n` contiguous, 1024-row-aligned partitions the
    /// caller drives on threads of its own ([`ScanPartition`] is `Send` +
    /// `Sync` and keeps the epoch pinned). Exactly `n` partitions are
    /// returned; trailing ones may be empty when the table is small. The
    /// union of the partitions is the whole table, disjointly.
    ///
    /// The partitions share one compiled scan, so — unlike the builder's
    /// own [`count`](ReaderScanBuilder::count) — [`ScanPartition::count`]
    /// does read any projected columns: omit
    /// [`project`](ReaderScanBuilder::project) when the partitions will
    /// only count.
    pub fn into_partitions(mut self, n: usize) -> Result<Vec<ScanPartition>> {
        let threads = n.max(1) as u32;
        let core = Arc::new(self.build_core()?);
        let rows = core.rows();
        let blocks = rows.div_ceil(BLOCK_ROWS);
        let base = blocks / threads;
        let extra = blocks % threads;
        let mut out = Vec::with_capacity(threads as usize);
        let mut block = 0u32;
        for i in 0..threads {
            let take = base + u32::from(i < extra);
            let start = block * BLOCK_ROWS;
            let end = ((block + take) * BLOCK_ROWS).min(rows);
            out.push(ScanPartition {
                core: Arc::clone(&core),
                start: start.min(rows),
                end,
            });
            block += take;
        }
        Ok(out)
    }
}

/// One contiguous, block-aligned slice of a reader scan, detached from
/// the builder: `Send + Sync`, keeps the snapshot epoch pinned, and runs
/// sequentially on whatever thread the caller gives it. Produced by
/// [`ReaderScanBuilder::into_partitions`] for executors that manage their
/// own threads instead of using the built-in pool.
pub struct ScanPartition {
    // The core owns the epoch pin, so the partition keeps the epoch
    // pinned transitively for as long as it lives.
    core: Arc<FrozenScanCore>,
    start: u32,
    end: u32,
}

impl std::fmt::Debug for ScanPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanPartition")
            .field("rows", &(self.start..self.end))
            .finish()
    }
}

impl ScanPartition {
    /// The row range this partition covers (may be empty).
    pub fn rows(&self) -> std::ops::Range<u32> {
        self.start..self.end
    }

    /// Scan this partition, calling `f(row, words)` for every passing row
    /// in row order.
    pub fn for_each(&self, mut f: impl FnMut(u32, &[u64])) -> Result<ScanStats> {
        let mut stats = ScanStats {
            threads: 1,
            morsels: 1,
            ..ScanStats::default()
        };
        let mut cursor = FrozenCursor::new(&self.core);
        cursor.run_range(self.start, self.end, &mut f, &mut stats)?;
        Ok(stats)
    }

    /// Count the partition's passing rows.
    pub fn count(&self) -> Result<(u64, ScanStats)> {
        let mut n = 0u64;
        let stats = self.for_each(|_, _| n += 1)?;
        Ok((n, stats))
    }
}

/// The morsel-parallel driver: split `core`'s rows into
/// [`MORSEL_BLOCKS`]-sized, block-aligned morsels, let `threads` workers
/// (the caller plus pool workers) pull them dynamically, and return the
/// per-morsel accumulators **in morsel order** together with the merged
/// stats. `threads == 1` runs entirely inline.
fn run_morsels<A: Send>(
    reader: &SnapshotReader,
    core: &FrozenScanCore,
    threads: usize,
    init: &(dyn Fn() -> A + Sync),
    row: &(dyn Fn(&mut A, u32, &[u64]) + Sync),
) -> Result<(Vec<A>, ScanStats)> {
    let rows = core.rows();
    let morsel_rows = morsel_blocks(rows.div_ceil(BLOCK_ROWS)) * BLOCK_ROWS;
    let n_morsels = rows.div_ceil(morsel_rows) as usize;
    let threads = threads.clamp(1, n_morsels.max(1));
    let next = AtomicU32::new(0);
    let slots: Vec<Mutex<Option<(A, ScanStats)>>> =
        (0..n_morsels).map(|_| Mutex::new(None)).collect();
    let error: Mutex<Option<crate::error::DbError>> = Mutex::new(None);
    let failed = std::sync::atomic::AtomicBool::new(false);
    let worker = |_seat: usize| {
        let mut cursor = FrozenCursor::new(core);
        loop {
            // One worker's error cancels the whole scan: the others stop
            // pulling instead of draining the remaining morsels for a
            // result that will be discarded.
            // ORDERING: Acquire pairs with the failing worker's Release
            // store below, so a cancelled worker also sees the error it
            // defers to already recorded.
            if failed.load(Ordering::Acquire) {
                break;
            }
            let m = next.fetch_add(1, Ordering::Relaxed) as usize;
            if m >= n_morsels {
                break;
            }
            let start = m as u32 * morsel_rows;
            let end = (start + morsel_rows).min(rows);
            let mut acc = init();
            let mut stats = ScanStats {
                morsels: 1,
                ..ScanStats::default()
            };
            match cursor.run_range(start, end, &mut |r, w| row(&mut acc, r, w), &mut stats) {
                Ok(()) => *slots[m].lock() = Some((acc, stats)),
                Err(e) => {
                    error.lock().get_or_insert(e);
                    // ORDERING: Release — the recorded error above must be
                    // visible to any worker whose Acquire load sees the
                    // cancel flag.
                    failed.store(true, Ordering::Release);
                    break;
                }
            }
        }
    };
    if threads == 1 {
        worker(0);
    } else {
        reader.db().scan_pool(threads).run(threads, &worker);
    }
    if let Some(e) = error.into_inner() {
        return Err(e);
    }
    let mut stats = ScanStats {
        threads: threads as u64,
        ..ScanStats::default()
    };
    let mut accs = Vec::with_capacity(n_morsels);
    for slot in slots {
        let (acc, morsel_stats) = slot.into_inner().expect("morsel completed without error");
        stats.merge(&morsel_stats);
        accs.push(acc);
    }
    Ok((accs, stats))
}

/// Per-block machinery shared by both scan paths: evaluate the filters over
/// the gathered filter-column blocks, account for removed rows, and — when
/// any row survives — emit the surviving rows into the sink. Projection
/// words come, in order of preference, from a filter's block (column read
/// once), from a whole-column slice (`pslices`, the OS backend's zero-copy
/// path), or from a buffer filled through `read_proj`.
struct BlockEmitter {
    /// For each projection column, the index of the filter whose block
    /// already holds it (read each block once).
    proj_from_filter: Vec<Option<usize>>,
    pbufs: Vec<Vec<u64>>,
    matched: Vec<u32>,
    vals: Vec<u64>,
}

impl BlockEmitter {
    /// `proj_sliced[pi]` marks projection columns a whole-column slice will
    /// serve (no gather buffer needed).
    fn new(filters: &[Filter], projection: &[ColumnId], proj_sliced: &[bool]) -> BlockEmitter {
        let block = BLOCK_ROWS as usize;
        let proj_from_filter: Vec<Option<usize>> = projection
            .iter()
            .map(|&c| filters.iter().position(|flt| flt.col == c))
            .collect();
        // Columns served from a filter block or a whole-column slice get an
        // empty placeholder so `pbufs` stays indexable by projection
        // position without allocating storage nothing will read.
        let pbufs = proj_from_filter
            .iter()
            .zip(proj_sliced)
            .map(|(src, sliced)| match (src, sliced) {
                (Some(_), _) | (None, true) => Vec::new(),
                (None, false) => vec![0u64; block],
            })
            .collect();
        BlockEmitter {
            proj_from_filter,
            pbufs,
            matched: Vec::with_capacity(block),
            vals: vec![0u64; projection.len()],
        }
    }

    /// Filter `fi`'s words for rows `[start, start + n)` come from its
    /// whole-column slice (`f_slices[fi]`, OS backend) or its gather
    /// buffer (`fbufs[fi]`); both are loop-invariant in the caller, so no
    /// per-block collection is allocated. `pslices[pi]` is projection
    /// column `pi`'s whole-column slice when one exists; otherwise
    /// `read_proj(pi, buf, stats)` fetches its block.
    #[allow(clippy::too_many_arguments)]
    fn filter_and_emit(
        &mut self,
        filters: &[Filter],
        f_slices: &[Option<&[u64]>],
        fbufs: &[Vec<u64>],
        pslices: &[Option<&[u64]>],
        start: u32,
        n: u32,
        stats: &mut ScanStats,
        read_proj: &mut dyn FnMut(usize, &mut [u64], &mut ScanStats) -> Result<()>,
        sink: &mut dyn FnMut(u32, &[u64]),
    ) -> Result<()> {
        let fw = |fi: usize| -> &[u64] {
            match f_slices[fi] {
                Some(s) => &s[start as usize..(start + n) as usize],
                None => &fbufs[fi][..n as usize],
            }
        };
        self.matched.clear();
        self.matched.extend(0..n);
        for (fi, flt) in filters.iter().enumerate() {
            let words = fw(fi);
            self.matched.retain(|&i| flt.matches(words[i as usize]));
            if self.matched.is_empty() {
                break;
            }
        }
        stats.rows_filtered += n as u64 - self.matched.len() as u64;
        if self.matched.is_empty() {
            return Ok(());
        }
        // Only projection columns served by neither a filter block nor a
        // whole-column slice are fetched.
        for (pi, (buf, src)) in self
            .pbufs
            .iter_mut()
            .zip(&self.proj_from_filter)
            .enumerate()
        {
            if src.is_none() && pslices[pi].is_none() {
                read_proj(pi, buf, stats)?;
            }
        }
        for &i in &self.matched {
            for (ci, src) in self.proj_from_filter.iter().enumerate() {
                self.vals[ci] = match (src, pslices[ci]) {
                    (Some(fi), _) => fw(*fi)[i as usize],
                    (None, Some(s)) => s[(start + i) as usize],
                    (None, None) => self.pbufs[ci][i as usize],
                };
            }
            sink(start + i, &self.vals);
        }
        Ok(())
    }
}
