//! The typed scan layer: [`ScanBuilder`] — predicates pushed down into the
//! block loops of both scan paths, with automatic precision-lock
//! registration.
//!
//! The paper's headline fast path is the tight, version-check-free snapshot
//! scan (§2.2, §5.5). The builder keeps that loop structure and adds two
//! things on top:
//!
//! * **Predicate pushdown.** Typed filters ([`ScanBuilder::range_i64`],
//!   [`ScanBuilder::range_f64`], [`ScanBuilder::lt_f64`],
//!   [`ScanBuilder::dict_eq`], [`ScanBuilder::in_set`]) are evaluated inside
//!   the 1024-row block loops. On the snapshot path, per-block min/max zone
//!   maps ([`anker_storage::ZoneMap`], built lazily on the frozen snapshot
//!   areas) let whole blocks skip when no filter can match
//!   (`ScanStats::blocks_skipped`); projection columns are only read for
//!   blocks with at least one surviving row.
//! * **Automatic precision locking.** Every filter is converted into the
//!   equivalent [`Pred`] for serializable updaters (§2.1), and projected
//!   columns without a filter are logged as full-column reads — the
//!   serializability footgun of forgetting a manual `log_range` call no
//!   longer exists.
//!
//! Terminal methods: [`ScanBuilder::for_each`] (raw words — the escape
//! hatch), [`ScanBuilder::for_each_typed`], [`ScanBuilder::fold`], and
//! [`ScanBuilder::count`]. All return the scan's [`ScanStats`] and
//! accumulate them into [`crate::Txn::scan_stats`].

use crate::error::Result;
use crate::table::{TableId, TableState};
use crate::txn::Txn;
use anker_mvcc::{Pred, ScanStats, Transaction, BLOCK_ROWS};
use anker_storage::{rank, ColumnId, LogicalType, Value, ZoneMap};
use std::sync::Arc;

/// One compiled per-column filter.
#[derive(Debug, Clone)]
enum FilterKind {
    /// `lo <= value <= hi` on the decoded `i64` of an Int or Date column.
    /// Compared exactly — no `f64` rank — so values beyond the 53-bit
    /// mantissa filter correctly.
    RangeI { lo: i64, hi: i64 },
    /// `lo <= rank(value)` and `rank(value) <= hi` (or `< hi` when
    /// `hi_exclusive`) on a Double column.
    Range {
        lo: f64,
        hi: f64,
        hi_exclusive: bool,
    },
    /// Dictionary code equality.
    DictEq(u32),
    /// Dictionary code set membership.
    InSet(Vec<u32>),
}

#[derive(Debug, Clone)]
struct Filter {
    col: ColumnId,
    ty: LogicalType,
    kind: FilterKind,
}

impl Filter {
    #[inline]
    fn matches(&self, word: u64) -> bool {
        match &self.kind {
            FilterKind::RangeI { lo, hi } => {
                let v = word as i64;
                v >= *lo && v <= *hi
            }
            FilterKind::Range {
                lo,
                hi,
                hi_exclusive,
            } => {
                let r = rank(word, self.ty);
                r >= *lo && if *hi_exclusive { r < *hi } else { r <= *hi }
            }
            FilterKind::DictEq(code) => word as u32 == *code,
            FilterKind::InSet(codes) => codes.contains(&(word as u32)),
        }
    }

    /// Can any value in a block with rank range `[min, max]` match?
    ///
    /// Zone maps store `f64` ranks, so integer bounds compare through
    /// their rounded images here. That stays conservative: rounding is
    /// monotone, so `max_rank < round(lo)` implies every value in the
    /// block is exactly `< lo` (and symmetrically for the upper bound) —
    /// a block is only pruned when no value can match exactly.
    fn block_can_match(&self, min: f64, max: f64) -> bool {
        match &self.kind {
            FilterKind::RangeI { lo, hi } => max >= *lo as f64 && min <= *hi as f64,
            FilterKind::Range {
                lo,
                hi,
                hi_exclusive,
            } => max >= *lo && if *hi_exclusive { min < *hi } else { min <= *hi },
            FilterKind::DictEq(code) => {
                let c = *code as f64;
                c >= min && c <= max
            }
            FilterKind::InSet(codes) => codes.iter().any(|&c| {
                let c = c as f64;
                c >= min && c <= max
            }),
        }
    }

    /// Register the precision locks equivalent to this filter. Bounds are
    /// only ever widened — exclusive bounds become inclusive, and integer
    /// bounds beyond the 53-bit mantissa are padded by one ULP against
    /// `f64` rounding — strictly conservative, never under-locking.
    fn log_preds(&self, col: anker_mvcc::ColRef, txn: &mut Transaction) {
        match &self.kind {
            FilterKind::RangeI { lo, hi } => txn.log_predicate(Pred::Range {
                col,
                ty: self.ty,
                lo: (*lo as f64).next_down(),
                hi: (*hi as f64).next_up(),
            }),
            FilterKind::Range { lo, hi, .. } => txn.log_predicate(Pred::Range {
                col,
                ty: self.ty,
                lo: *lo,
                hi: *hi,
            }),
            FilterKind::DictEq(code) => txn.log_predicate(Pred::DictEq { col, code: *code }),
            FilterKind::InSet(codes) => {
                for &code in codes {
                    txn.log_predicate(Pred::DictEq { col, code });
                }
            }
        }
    }
}

/// A scan under construction: obtain with [`Txn::scan_on`], chain typed
/// predicates and a projection, finish with a terminal method.
///
/// Filters combine conjunctively (logical AND). The projection decides what
/// the row callback receives, in the order given to
/// [`ScanBuilder::project`]; without a projection the callback receives an
/// empty slice (useful with [`ScanBuilder::count`] or when only row ids
/// matter). A column may appear in both a filter and the projection; its
/// block is read once.
#[must_use = "a ScanBuilder does nothing until a terminal method runs it"]
pub struct ScanBuilder<'t> {
    txn: &'t mut Txn,
    table: TableId,
    filters: Vec<Filter>,
    projection: Vec<ColumnId>,
}

impl<'t> ScanBuilder<'t> {
    pub(crate) fn new(txn: &'t mut Txn, table: TableId) -> ScanBuilder<'t> {
        ScanBuilder {
            txn,
            table,
            filters: Vec::new(),
            projection: Vec::new(),
        }
    }

    fn col_ty(&mut self, col: ColumnId) -> LogicalType {
        self.txn.table(self.table).schema.def(col).ty
    }

    /// Keep rows with `lo <= col <= hi` (inclusive). `col` must be an
    /// `Int` or `Date` column (dates are their day counts). The comparison
    /// is exact over the full `i64` domain.
    pub fn range_i64(mut self, col: ColumnId, lo: i64, hi: i64) -> Self {
        let ty = self.col_ty(col);
        assert!(
            matches!(ty, LogicalType::Int | LogicalType::Date),
            "range_i64 applies to Int or Date columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::RangeI { lo, hi },
        });
        self
    }

    /// Keep rows with `lo <= col <= hi` (inclusive). `col` must be a
    /// `Double` column.
    pub fn range_f64(mut self, col: ColumnId, lo: f64, hi: f64) -> Self {
        let ty = self.col_ty(col);
        assert!(
            ty == LogicalType::Double,
            "range_f64 applies to Double columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::Range {
                lo,
                hi,
                hi_exclusive: false,
            },
        });
        self
    }

    /// Keep rows with `col < hi` (strict). `col` must be a `Double`
    /// column.
    pub fn lt_f64(mut self, col: ColumnId, hi: f64) -> Self {
        let ty = self.col_ty(col);
        assert!(
            ty == LogicalType::Double,
            "lt_f64 applies to Double columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::Range {
                lo: f64::NEG_INFINITY,
                hi,
                hi_exclusive: true,
            },
        });
        self
    }

    /// Keep rows whose dictionary code equals `code`. `col` must be a
    /// `Dict` column.
    pub fn dict_eq(mut self, col: ColumnId, code: u32) -> Self {
        let ty = self.col_ty(col);
        assert!(
            ty == LogicalType::Dict,
            "dict_eq applies to Dict columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::DictEq(code),
        });
        self
    }

    /// Keep rows whose dictionary code is one of `codes` (an empty set
    /// matches nothing). `col` must be a `Dict` column.
    pub fn in_set(mut self, col: ColumnId, codes: impl IntoIterator<Item = u32>) -> Self {
        let ty = self.col_ty(col);
        assert!(
            ty == LogicalType::Dict,
            "in_set applies to Dict columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::InSet(codes.into_iter().collect()),
        });
        self
    }

    /// Set the columns the row callback receives, in this order.
    pub fn project(mut self, cols: &[ColumnId]) -> Self {
        self.projection = cols.to_vec();
        self
    }

    /// Run the scan, calling `f(row, words)` with the **raw 8-byte words**
    /// of the projection for every row that passes all filters — the
    /// escape hatch for hot aggregation loops that decode inline.
    pub fn for_each(self, mut f: impl FnMut(u32, &[u64])) -> Result<ScanStats> {
        self.run(&mut f)
    }

    /// Run the scan, calling `f(row, values)` with the decoded
    /// [`Value`]s of the projection for every row that passes all filters.
    pub fn for_each_typed(self, mut f: impl FnMut(u32, &[Value])) -> Result<ScanStats> {
        let tys: Vec<LogicalType> = {
            let state = self.txn.table(self.table);
            self.projection
                .iter()
                .map(|&c| state.schema.def(c).ty)
                .collect()
        };
        let mut vals: Vec<Value> = Vec::with_capacity(tys.len());
        self.run(&mut |row, words| {
            vals.clear();
            vals.extend(words.iter().zip(&tys).map(|(&w, &ty)| Value::decode(w, ty)));
            f(row, &vals);
        })
    }

    /// Run the scan, folding the decoded projection of every passing row
    /// into an accumulator.
    pub fn fold<A>(
        self,
        init: A,
        mut f: impl FnMut(A, u32, &[Value]) -> A,
    ) -> Result<(A, ScanStats)> {
        let mut acc = Some(init);
        let stats = self.for_each_typed(|row, vals| {
            let a = acc.take().expect("accumulator present");
            acc = Some(f(a, row, vals));
        })?;
        Ok((acc.expect("accumulator present"), stats))
    }

    /// Run the scan and count the rows passing all filters. The projection
    /// is ignored (no value columns are read).
    pub fn count(mut self) -> Result<(u64, ScanStats)> {
        self.projection.clear();
        let mut n = 0u64;
        let stats = self.run(&mut |_, _| n += 1)?;
        Ok((n, stats))
    }

    /// Execute: log precision locks, then drive the snapshot or the
    /// versioned block loop.
    fn run(self, sink: &mut dyn FnMut(u32, &[u64])) -> Result<ScanStats> {
        let ScanBuilder {
            txn,
            table,
            filters,
            projection,
        } = self;
        if txn.serializable_updater() {
            for flt in &filters {
                flt.log_preds(Txn::colref(table, flt.col), &mut txn.inner);
            }
            // Projection columns without a filter are full-column reads;
            // filtered columns are covered (more precisely) by their
            // filter's predicate.
            for &c in &projection {
                if !filters.iter().any(|flt| flt.col == c) {
                    txn.inner.log_predicate(Pred::FullColumn {
                        col: Txn::colref(table, c),
                    });
                }
            }
        }
        let mut stats = ScanStats::default();
        if txn.epoch.is_some() {
            Self::run_snapshot(txn, table, &filters, &projection, sink, &mut stats)?;
        } else {
            Self::run_versioned(txn, table, &filters, &projection, sink, &mut stats)?;
        }
        txn.scan_stats.merge(&stats);
        Ok(stats)
    }

    /// Heterogeneous OLAP: tight loops over frozen snapshot columns — no
    /// version checks — with zone-map block pruning. On the OS backend the
    /// frozen areas expose themselves as plain `&[u64]` slices
    /// ([`anker_storage::ColumnArea::as_slice`]), so the block loops read
    /// straight through the mapped memory with no per-word resolution and
    /// no copy; on the simulated kernel they gather into block buffers.
    fn run_snapshot(
        txn: &mut Txn,
        table: TableId,
        filters: &[Filter],
        projection: &[ColumnId],
        sink: &mut dyn FnMut(u32, &[u64]),
        stats: &mut ScanStats,
    ) -> Result<()> {
        let rows = txn.db.rows(table);
        let filter_snaps = filters
            .iter()
            .map(|flt| txn.snapshot_col(table, flt.col))
            .collect::<Result<Vec<_>>>()?;
        let proj_snaps = projection
            .iter()
            .map(|&c| txn.snapshot_col(table, c))
            .collect::<Result<Vec<_>>>()?;
        // Zone maps live on the frozen snapshot areas; building them is a
        // one-time cost per (epoch, column) amortised over every filtered
        // scan of that snapshot.
        let zone_maps: Vec<Arc<ZoneMap>> = filters
            .iter()
            .zip(&filter_snaps)
            .map(|(flt, sc)| sc.area().zone_map(flt.ty, BLOCK_ROWS))
            .collect::<std::result::Result<_, _>>()?;
        // SAFETY: the scan holds an `Arc<SnapCol>` per column and the txn
        // pins the epoch, so the frozen areas can neither be unmapped nor
        // recycled (both wait for the active-transaction horizon) while
        // these borrows live; frozen areas are never written after
        // hand-over, so the slices are genuinely immutable.
        let f_slices: Vec<Option<&[u64]>> = filter_snaps
            .iter()
            .map(|sc| unsafe { sc.area().as_slice() })
            .collect();
        let p_slices: Vec<Option<&[u64]>> = proj_snaps
            .iter()
            .map(|sc| unsafe { sc.area().as_slice() })
            .collect();
        let mut fbufs: Vec<Vec<u64>> = filters
            .iter()
            .map(|_| vec![0u64; BLOCK_ROWS as usize])
            .collect();
        let proj_sliced: Vec<bool> = p_slices.iter().map(Option::is_some).collect();
        let mut em = BlockEmitter::new(filters, projection, &proj_sliced);
        let mut start = 0u32;
        while start < rows {
            let n = BLOCK_ROWS.min(rows - start);
            let block_idx = (start / BLOCK_ROWS) as usize;
            let prunable = !zone_maps.iter().zip(filters).all(|(zm, flt)| {
                let (lo, hi) = zm.block_range(block_idx);
                flt.block_can_match(lo, hi)
            });
            if prunable {
                stats.blocks_skipped += 1;
                start += n;
                continue;
            }
            for ((sc, slice), buf) in filter_snaps.iter().zip(&f_slices).zip(fbufs.iter_mut()) {
                if slice.is_none() {
                    sc.area().read_block_into(start, n, buf)?;
                }
            }
            stats.tight_rows += n as u64;
            em.filter_and_emit(
                filters,
                &f_slices,
                &fbufs,
                &p_slices,
                start,
                n,
                stats,
                &mut |pi, buf, _| Ok(proj_snaps[pi].area().read_block_into(start, n, buf)?),
                sink,
            )?;
            start += n;
        }
        Ok(())
    }

    /// Versioned scan at the transaction's start timestamp with the
    /// 1024-row block-skip optimisation (§5.5). Live data carries no zone
    /// maps (in-place installs would invalidate them), but filters still
    /// run inside the block loop and projection columns are only gathered
    /// for blocks with surviving rows.
    fn run_versioned(
        txn: &mut Txn,
        table: TableId,
        filters: &[Filter],
        projection: &[ColumnId],
        sink: &mut dyn FnMut(u32, &[u64]),
        stats: &mut ScanStats,
    ) -> Result<()> {
        let rows = txn.db.rows(table);
        let state: Arc<TableState> = txn.table(table);
        let start_ts = txn.inner.start_ts();
        let filter_states: Vec<_> = filters.iter().map(|flt| state.col(flt.col.0)).collect();
        let filter_areas: Vec<_> = filter_states.iter().map(|cs| cs.current_area()).collect();
        let proj_states: Vec<_> = projection.iter().map(|&c| state.col(c.0)).collect();
        let proj_areas: Vec<_> = proj_states.iter().map(|cs| cs.current_area()).collect();
        // Live data is never borrowed as a slice (concurrent installs
        // mutate it); every block goes through the versioned gather.
        let no_fslices: Vec<Option<&[u64]>> = vec![None; filters.len()];
        let no_pslices: Vec<Option<&[u64]>> = vec![None; projection.len()];
        let mut fbufs: Vec<Vec<u64>> = filters
            .iter()
            .map(|_| vec![0u64; BLOCK_ROWS as usize])
            .collect();
        let mut em = BlockEmitter::new(filters, projection, &vec![false; projection.len()]);
        let mut start = 0u32;
        while start < rows {
            let n = BLOCK_ROWS.min(rows - start);
            for ((cs, area), buf) in filter_states
                .iter()
                .zip(&filter_areas)
                .zip(fbufs.iter_mut())
            {
                cs.versioned
                    .gather_visible_block(area, start_ts, start, n, buf, stats)?;
            }
            em.filter_and_emit(
                filters,
                &no_fslices,
                &fbufs,
                &no_pslices,
                start,
                n,
                stats,
                &mut |pi, buf, stats| {
                    proj_states[pi].versioned.gather_visible_block(
                        &proj_areas[pi],
                        start_ts,
                        start,
                        n,
                        buf,
                        stats,
                    )?;
                    Ok(())
                },
                sink,
            )?;
            start += n;
        }
        Ok(())
    }
}

/// Per-block machinery shared by both scan paths: evaluate the filters over
/// the gathered filter-column blocks, account for removed rows, and — when
/// any row survives — emit the surviving rows into the sink. Projection
/// words come, in order of preference, from a filter's block (column read
/// once), from a whole-column slice (`pslices`, the OS backend's zero-copy
/// path), or from a buffer filled through `read_proj`.
struct BlockEmitter {
    /// For each projection column, the index of the filter whose block
    /// already holds it (read each block once).
    proj_from_filter: Vec<Option<usize>>,
    pbufs: Vec<Vec<u64>>,
    matched: Vec<u32>,
    vals: Vec<u64>,
}

impl BlockEmitter {
    /// `proj_sliced[pi]` marks projection columns a whole-column slice will
    /// serve (no gather buffer needed).
    fn new(filters: &[Filter], projection: &[ColumnId], proj_sliced: &[bool]) -> BlockEmitter {
        let block = BLOCK_ROWS as usize;
        let proj_from_filter: Vec<Option<usize>> = projection
            .iter()
            .map(|&c| filters.iter().position(|flt| flt.col == c))
            .collect();
        // Columns served from a filter block or a whole-column slice get an
        // empty placeholder so `pbufs` stays indexable by projection
        // position without allocating storage nothing will read.
        let pbufs = proj_from_filter
            .iter()
            .zip(proj_sliced)
            .map(|(src, sliced)| match (src, sliced) {
                (Some(_), _) | (None, true) => Vec::new(),
                (None, false) => vec![0u64; block],
            })
            .collect();
        BlockEmitter {
            proj_from_filter,
            pbufs,
            matched: Vec::with_capacity(block),
            vals: vec![0u64; projection.len()],
        }
    }

    /// Filter `fi`'s words for rows `[start, start + n)` come from its
    /// whole-column slice (`f_slices[fi]`, OS backend) or its gather
    /// buffer (`fbufs[fi]`); both are loop-invariant in the caller, so no
    /// per-block collection is allocated. `pslices[pi]` is projection
    /// column `pi`'s whole-column slice when one exists; otherwise
    /// `read_proj(pi, buf, stats)` fetches its block.
    #[allow(clippy::too_many_arguments)]
    fn filter_and_emit(
        &mut self,
        filters: &[Filter],
        f_slices: &[Option<&[u64]>],
        fbufs: &[Vec<u64>],
        pslices: &[Option<&[u64]>],
        start: u32,
        n: u32,
        stats: &mut ScanStats,
        read_proj: &mut dyn FnMut(usize, &mut [u64], &mut ScanStats) -> Result<()>,
        sink: &mut dyn FnMut(u32, &[u64]),
    ) -> Result<()> {
        let fw = |fi: usize| -> &[u64] {
            match f_slices[fi] {
                Some(s) => &s[start as usize..(start + n) as usize],
                None => &fbufs[fi][..n as usize],
            }
        };
        self.matched.clear();
        self.matched.extend(0..n);
        for (fi, flt) in filters.iter().enumerate() {
            let words = fw(fi);
            self.matched.retain(|&i| flt.matches(words[i as usize]));
            if self.matched.is_empty() {
                break;
            }
        }
        stats.rows_filtered += n as u64 - self.matched.len() as u64;
        if self.matched.is_empty() {
            return Ok(());
        }
        // Only projection columns served by neither a filter block nor a
        // whole-column slice are fetched.
        for (pi, (buf, src)) in self
            .pbufs
            .iter_mut()
            .zip(&self.proj_from_filter)
            .enumerate()
        {
            if src.is_none() && pslices[pi].is_none() {
                read_proj(pi, buf, stats)?;
            }
        }
        for &i in &self.matched {
            for (ci, src) in self.proj_from_filter.iter().enumerate() {
                self.vals[ci] = match (src, pslices[ci]) {
                    (Some(fi), _) => fw(*fi)[i as usize],
                    (None, Some(s)) => s[(start + i) as usize],
                    (None, None) => self.pbufs[ci][i as usize],
                };
            }
            sink(start + i, &self.vals);
        }
        Ok(())
    }
}
