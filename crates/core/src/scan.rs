//! The typed scan layer: [`ScanBuilder`] (in-transaction scans, both
//! processing paths) and [`ReaderScanBuilder`] (detached
//! [`crate::SnapshotReader`] scans, sequential or morsel-parallel) —
//! predicates pushed down into the block loops, with automatic
//! precision-lock registration on the serializable path.
//!
//! The paper's headline fast path is the tight, version-check-free snapshot
//! scan (§2.2, §5.5). The builders keep that loop structure and add four
//! things on top:
//!
//! * **Predicate pushdown.** Typed filters ([`ScanBuilder::range_i64`],
//!   [`ScanBuilder::range_f64`], [`ScanBuilder::lt_f64`],
//!   [`ScanBuilder::dict_eq`], [`ScanBuilder::in_set`]) are evaluated inside
//!   the 1024-row block loops. On the snapshot path, per-block min/max zone
//!   maps ([`anker_storage::ZoneMap`], built lazily on the frozen snapshot
//!   areas) let whole blocks skip when no filter can match
//!   (`ScanStats::blocks_skipped`); projection columns are only read for
//!   blocks with at least one surviving row.
//! * **Vectorized kernels.** Filters run column-at-a-time through the
//!   selection-vector kernels of the private `kernels` module: the first conjunct of
//!   a block produces a `u32` selection vector, later conjuncts refine it
//!   touching only surviving lanes, zone-map-proven *all-match* blocks
//!   skip materialisation entirely (`ScanStats::dense_blocks`), and the
//!   count terminals popcount selections without reading projection
//!   columns (`ScanStats::proj_blocks` stays 0). Conjunct order adapts
//!   per work range, cheapest-and-most-selective-first, re-decided only
//!   at block boundaries from completed-block statistics — deterministic
//!   for every thread count. `ANKER_SCALAR_SCAN=1` (or
//!   [`crate::DbConfig::scalar_scan`]) restores the row-at-a-time
//!   dispatch for ablations.
//! * **Automatic precision locking.** Every filter is converted into the
//!   equivalent [`Pred`] for serializable updaters (§2.1), and projected
//!   columns without a filter are logged as full-column reads — the
//!   serializability footgun of forgetting a manual `log_range` call no
//!   longer exists. Registration happens before execution, in declaration
//!   order, regardless of the adaptive evaluation order.
//! * **Morsel parallelism.** A detached reader's scan fans out over
//!   1024-row-aligned morsel ranges on the database's reusable worker pool
//!   ([`ReaderScanBuilder::parallel`]) or splits into caller-driven
//!   [`ScanPartition`]s ([`ReaderScanBuilder::into_partitions`]). Workers
//!   pull morsels dynamically; per-morsel [`ScanStats`] and fold
//!   accumulators are merged **in morsel order**, so results are
//!   deterministic for any worker count.
//!
//! The frozen-scan machinery is shared: both builders compile into a
//! `FrozenScanCore` (resolved snapshot columns + zone maps, immutable,
//! `Sync`) driven by per-worker `FrozenCursor`s over arbitrary
//! block-aligned row ranges.

use crate::error::Result;
use crate::kernels::{AdaptiveOrder, Filter, FilterKind, SelVec};
use crate::reader::SnapshotReader;
use crate::snapman::SnapCol;
use crate::table::{TableId, TableState};
use crate::txn::Txn;
use anker_mvcc::{Pred, ScanStats, BLOCK_ROWS};
use anker_storage::{ColumnId, LogicalType, Value, ZoneMap};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Most blocks per morsel: the work quantum parallel scans hand out.
/// 16 blocks = 16 384 rows = 128 KiB per column — big enough to amortise
/// dispatch, small enough that dynamic pulling balances skewed pruning.
/// Small tables use proportionally smaller morsels (see
/// [`morsel_blocks`]) so they still split.
pub(crate) const MORSEL_BLOCKS: u32 = 16;

/// Blocks per morsel for a table of `blocks` 1024-row blocks: aim for at
/// least [`MORSEL_BLOCKS`] morsels, capped at [`MORSEL_BLOCKS`] blocks
/// each. Depends **only** on table size — never on the thread count — so
/// morsel boundaries (and therefore fold groupings, adaptive-ordering
/// reset points, and merged results, even for non-associative `f64`
/// accumulation) are identical for every fan-out.
fn morsel_blocks(blocks: u32) -> u32 {
    blocks.div_ceil(MORSEL_BLOCKS).clamp(1, MORSEL_BLOCKS)
}

/// What to scan: the compiled filters and the projection, independent of
/// which host (transaction or detached reader) drives the scan. Both
/// builders delegate their typed predicate methods here so the assertion
/// and compilation logic exists exactly once.
#[derive(Debug, Clone, Default)]
struct ScanSpec {
    filters: Vec<Filter>,
    projection: Vec<ColumnId>,
    /// Run the pre-vectorized row-at-a-time baseline instead of the
    /// selection-vector kernels (`ANKER_SCALAR_SCAN=1` /
    /// [`crate::DbConfig::scalar_scan`]).
    scalar: bool,
}

impl ScanSpec {
    fn range_i64(&mut self, col: ColumnId, ty: LogicalType, lo: i64, hi: i64) {
        assert!(
            matches!(ty, LogicalType::Int | LogicalType::Date),
            "range_i64 applies to Int or Date columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::RangeI { lo, hi },
        });
    }

    fn range_f64(&mut self, col: ColumnId, ty: LogicalType, lo: f64, hi: f64) {
        assert!(
            ty == LogicalType::Double,
            "range_f64 applies to Double columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::Range {
                lo,
                hi,
                hi_exclusive: false,
            },
        });
    }

    fn lt_f64(&mut self, col: ColumnId, ty: LogicalType, hi: f64) {
        assert!(
            ty == LogicalType::Double,
            "lt_f64 applies to Double columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::Range {
                lo: f64::NEG_INFINITY,
                hi,
                hi_exclusive: true,
            },
        });
    }

    fn dict_eq(&mut self, col: ColumnId, ty: LogicalType, code: u32) {
        assert!(
            ty == LogicalType::Dict,
            "dict_eq applies to Dict columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::DictEq(code),
        });
    }

    fn in_set(&mut self, col: ColumnId, ty: LogicalType, codes: Vec<u32>) {
        assert!(
            ty == LogicalType::Dict,
            "in_set applies to Dict columns, found {ty:?}"
        );
        self.filters.push(Filter {
            col,
            ty,
            kind: FilterKind::InSet(codes),
        });
    }
}

/// A scan under construction: obtain with [`Txn::scan_on`], chain typed
/// predicates and a projection, finish with a terminal method.
///
/// Filters combine conjunctively (logical AND). The projection decides what
/// the row callback receives, in the order given to
/// [`ScanBuilder::project`]; without a projection the callback receives an
/// empty slice (useful with [`ScanBuilder::count`] or when only row ids
/// matter). A column may appear in both a filter and the projection; its
/// block is read once.
#[must_use = "a ScanBuilder does nothing until a terminal method runs it"]
pub struct ScanBuilder<'t> {
    txn: &'t mut Txn,
    table: TableId,
    spec: ScanSpec,
}

impl<'t> ScanBuilder<'t> {
    pub(crate) fn new(txn: &'t mut Txn, table: TableId) -> ScanBuilder<'t> {
        let scalar = txn.db.config().scalar_scan;
        ScanBuilder {
            txn,
            table,
            spec: ScanSpec {
                scalar,
                ..ScanSpec::default()
            },
        }
    }

    fn col_ty(&mut self, col: ColumnId) -> LogicalType {
        self.txn.table(self.table).schema.def(col).ty
    }

    /// Keep rows with `lo <= col <= hi` (inclusive). `col` must be an
    /// `Int` or `Date` column (dates are their day counts). The comparison
    /// is exact over the full `i64` domain.
    pub fn range_i64(mut self, col: ColumnId, lo: i64, hi: i64) -> Self {
        let ty = self.col_ty(col);
        self.spec.range_i64(col, ty, lo, hi);
        self
    }

    /// Keep rows with `lo <= col <= hi` (inclusive). `col` must be a
    /// `Double` column.
    pub fn range_f64(mut self, col: ColumnId, lo: f64, hi: f64) -> Self {
        let ty = self.col_ty(col);
        self.spec.range_f64(col, ty, lo, hi);
        self
    }

    /// Keep rows with `col < hi` (strict). `col` must be a `Double`
    /// column.
    pub fn lt_f64(mut self, col: ColumnId, hi: f64) -> Self {
        let ty = self.col_ty(col);
        self.spec.lt_f64(col, ty, hi);
        self
    }

    /// Keep rows whose dictionary code equals `code`. `col` must be a
    /// `Dict` column.
    pub fn dict_eq(mut self, col: ColumnId, code: u32) -> Self {
        let ty = self.col_ty(col);
        self.spec.dict_eq(col, ty, code);
        self
    }

    /// Keep rows whose dictionary code is one of `codes` (an empty set
    /// matches nothing). `col` must be a `Dict` column.
    pub fn in_set(mut self, col: ColumnId, codes: impl IntoIterator<Item = u32>) -> Self {
        let ty = self.col_ty(col);
        self.spec.in_set(col, ty, codes.into_iter().collect());
        self
    }

    /// Set the columns the row callback receives, in this order.
    pub fn project(mut self, cols: &[ColumnId]) -> Self {
        self.spec.projection = cols.to_vec();
        self
    }

    /// Run the scan, calling `f(row, words)` with the **raw 8-byte words**
    /// of the projection for every row that passes all filters — the
    /// escape hatch for hot aggregation loops that decode inline.
    pub fn for_each(self, mut f: impl FnMut(u32, &[u64])) -> Result<ScanStats> {
        let (_, stats) = self.execute(Some(&mut f))?;
        Ok(stats)
    }

    /// Run the scan, calling `f(row, values)` with the decoded
    /// [`Value`]s of the projection for every row that passes all filters.
    pub fn for_each_typed(self, mut f: impl FnMut(u32, &[Value])) -> Result<ScanStats> {
        let tys: Vec<LogicalType> = {
            let state = self.txn.table(self.table);
            self.spec
                .projection
                .iter()
                .map(|&c| state.schema.def(c).ty)
                .collect()
        };
        let mut vals: Vec<Value> = Vec::with_capacity(tys.len());
        self.for_each(move |row, words| {
            vals.clear();
            vals.extend(words.iter().zip(&tys).map(|(&w, &ty)| Value::decode(w, ty)));
            f(row, &vals);
        })
    }

    /// Run the scan, folding the decoded projection of every passing row
    /// into an accumulator.
    pub fn fold<A>(
        self,
        init: A,
        mut f: impl FnMut(A, u32, &[Value]) -> A,
    ) -> Result<(A, ScanStats)> {
        let mut acc = Some(init);
        let stats = self.for_each_typed(|row, vals| {
            let a = acc.take().expect("accumulator present");
            acc = Some(f(a, row, vals));
        })?;
        Ok((acc.expect("accumulator present"), stats))
    }

    /// Run the scan and count the rows passing all filters. The projection
    /// is ignored (no value columns are read): counting popcounts the
    /// selection vectors, so neither projection blocks nor per-row
    /// callbacks are touched ([`ScanStats::proj_blocks`] stays 0).
    pub fn count(mut self) -> Result<(u64, ScanStats)> {
        self.spec.projection.clear();
        self.execute(None)
    }

    /// Execute: log precision locks, then drive the snapshot or the
    /// versioned block loop. `sink` is `Some` for row-delivering
    /// terminals and `None` for the fused count path; the returned count
    /// is only meaningful in the latter case.
    fn execute(self, sink: Option<&mut dyn FnMut(u32, &[u64])>) -> Result<(u64, ScanStats)> {
        let ScanBuilder { txn, table, spec } = self;
        if txn.serializable_updater() {
            for flt in &spec.filters {
                flt.log_preds(Txn::colref(table, flt.col), &mut txn.inner);
            }
            // Projection columns without a filter are full-column reads;
            // filtered columns are covered (more precisely) by their
            // filter's predicate.
            for &c in &spec.projection {
                if !spec.filters.iter().any(|flt| flt.col == c) {
                    txn.inner.log_predicate(Pred::FullColumn {
                        col: Txn::colref(table, c),
                    });
                }
            }
        }
        let mut stats = ScanStats {
            threads: 1,
            ..ScanStats::default()
        };
        // A sequential scan is one morsel for the tracer too.
        let obs_tok = obs::span_begin(obs::stage!("scan_morsel"));
        let count = if txn.epoch.is_some() {
            Self::run_snapshot(txn, table, spec, sink, &mut stats)
        } else {
            Self::run_versioned(txn, table, &spec, sink, &mut stats)
        };
        obs::span_end(obs_tok);
        let count = count?;
        stats.morsels += 1;
        txn.scan_stats.merge(&stats);
        note_scan_stats(&stats);
        Ok((count, stats))
    }

    /// Heterogeneous OLAP: the in-transaction sequential variant of the
    /// frozen snapshot scan — compile a [`FrozenScanCore`] against the
    /// transaction's pinned epoch (materialising columns through the
    /// per-transaction cache) and drive one cursor over all rows.
    fn run_snapshot(
        txn: &mut Txn,
        table: TableId,
        spec: ScanSpec,
        sink: Option<&mut dyn FnMut(u32, &[u64])>,
        stats: &mut ScanStats,
    ) -> Result<u64> {
        let rows = txn.db.rows(table);
        let core = FrozenScanCore::build(rows, spec, None, &mut |c| txn.snapshot_col(table, c))?;
        let mut cursor = FrozenCursor::new(&core);
        match sink {
            Some(sink) => {
                cursor.run_range(0, rows, sink, stats)?;
                Ok(0)
            }
            None => cursor.count_range(0, rows, stats),
        }
    }

    /// Versioned scan at the transaction's start timestamp with the
    /// 1024-row block-skip optimisation (§5.5). Live data carries no zone
    /// maps (in-place installs would invalidate them), but filters still
    /// run through the selection-vector kernels over the gathered blocks,
    /// filter columns are gathered lazily in adaptive order (a conjunct
    /// that empties the selection saves the remaining gathers), and
    /// projection columns are only gathered for blocks with surviving
    /// rows.
    fn run_versioned(
        txn: &mut Txn,
        table: TableId,
        spec: &ScanSpec,
        mut sink: Option<&mut dyn FnMut(u32, &[u64])>,
        stats: &mut ScanStats,
    ) -> Result<u64> {
        let filters = &spec.filters;
        let projection = &spec.projection;
        let rows = txn.db.rows(table);
        let state: Arc<TableState> = txn.table(table);
        let start_ts = txn.inner.start_ts();
        let filter_states: Vec<_> = filters.iter().map(|flt| state.col(flt.col.0)).collect();
        let filter_areas: Vec<_> = filter_states.iter().map(|cs| cs.current_area()).collect();
        let proj_states: Vec<_> = projection.iter().map(|&c| state.col(c.0)).collect();
        let proj_areas: Vec<_> = proj_states.iter().map(|cs| cs.current_area()).collect();
        // Live data is never borrowed as a slice (concurrent installs
        // mutate it); every block goes through the versioned gather.
        let no_fslices: Vec<Option<&[u64]>> = vec![None; filters.len()];
        let no_pslices: Vec<Option<&[u64]>> = vec![None; projection.len()];
        // No zone maps on live data: no block is provably all-match.
        let no_all_match = vec![false; filters.len()];
        let counting = sink.is_none();
        let mut em = BlockEmitter::new(
            filters,
            projection,
            &vec![false; filters.len()],
            &vec![false; projection.len()],
            spec.scalar,
        );
        em.begin_range();
        let mut count = 0u64;
        let mut start = 0u32;
        while start < rows {
            let n = BLOCK_ROWS.min(rows - start);
            em.filter_block(
                filters,
                &no_fslices,
                &no_all_match,
                start,
                n,
                stats,
                &mut |fi, buf, stats| {
                    Ok(filter_states[fi].versioned.gather_visible_block(
                        &filter_areas[fi],
                        start_ts,
                        start,
                        n,
                        buf,
                        stats,
                    )?)
                },
                counting,
            )?;
            match sink.as_deref_mut() {
                Some(sink) => em.emit(
                    &no_fslices,
                    &no_pslices,
                    start,
                    n,
                    stats,
                    &mut |fi, buf, stats| {
                        Ok(filter_states[fi].versioned.gather_visible_block(
                            &filter_areas[fi],
                            start_ts,
                            start,
                            n,
                            buf,
                            stats,
                        )?)
                    },
                    &mut |pi, buf, stats| {
                        Ok(proj_states[pi].versioned.gather_visible_block(
                            &proj_areas[pi],
                            start_ts,
                            start,
                            n,
                            buf,
                            stats,
                        )?)
                    },
                    sink,
                )?,
                None => count += em.selected() as u64,
            }
            start += n;
        }
        Ok(count)
    }
}

// ---------------------------------------------------------------------
// The shared frozen-scan machinery
// ---------------------------------------------------------------------

/// A compiled scan over frozen snapshot columns: the resolved
/// [`SnapCol`]s, their zone maps, and the spec. Immutable and `Sync` —
/// parallel workers share one core by reference and drive their own
/// [`FrozenCursor`]s over disjoint row ranges. Holding the core keeps
/// every scanned area alive (the `Arc<SnapCol>`s) **and** — on the
/// reader path — keeps the epoch pinned: the core owns the
/// [`ReaderPin`](crate::reader::ReaderPin), so anything holding the core
/// carries the §4.1.3 recycling-rule justification for its zero-copy
/// slices with it. On the transaction path `pin` is `None`; there the
/// active-transaction horizon covers the scan (the engine never recycles
/// an area a live transaction can reach).
pub(crate) struct FrozenScanCore {
    rows: u32,
    spec: ScanSpec,
    filter_snaps: Vec<Arc<SnapCol>>,
    proj_snaps: Vec<Arc<SnapCol>>,
    zone_maps: Vec<Arc<ZoneMap>>,
    #[allow(dead_code)] // held for its Drop (epoch unpin), never read
    pin: Option<Arc<crate::reader::ReaderPin>>,
}

impl FrozenScanCore {
    /// Resolve every filter and projection column through `resolve`
    /// (which materialises on first access), build the zone maps, and
    /// advise the backend of the impending sequential read. `pin` is the
    /// epoch pin the core takes ownership of on the reader path.
    fn build(
        rows: u32,
        spec: ScanSpec,
        pin: Option<Arc<crate::reader::ReaderPin>>,
        resolve: &mut dyn FnMut(ColumnId) -> Result<Arc<SnapCol>>,
    ) -> Result<FrozenScanCore> {
        let filter_snaps = spec
            .filters
            .iter()
            .map(|flt| resolve(flt.col))
            .collect::<Result<Vec<_>>>()?;
        let proj_snaps = spec
            .projection
            .iter()
            .map(|&c| resolve(c))
            .collect::<Result<Vec<_>>>()?;
        // Zone maps live on the frozen snapshot areas; building them is a
        // one-time cost per (epoch, column) amortised over every filtered
        // scan of that snapshot.
        let zone_maps: Vec<Arc<ZoneMap>> = spec
            .filters
            .iter()
            .zip(&filter_snaps)
            .map(|(flt, sc)| sc.area().zone_map(flt.ty, BLOCK_ROWS))
            .collect::<std::result::Result<_, _>>()?;
        // One sequential-readahead hint per distinct area about to be
        // streamed (madvise on the OS backend, no-op simulated).
        let mut advised: Vec<u64> = Vec::new();
        for sc in filter_snaps.iter().chain(&proj_snaps) {
            let addr = sc.area().addr();
            if !advised.contains(&addr) {
                advised.push(addr);
                sc.area().advise_sequential();
            }
        }
        Ok(FrozenScanCore {
            rows,
            spec,
            filter_snaps,
            proj_snaps,
            zone_maps,
            pin,
        })
    }

    pub(crate) fn rows(&self) -> u32 {
        self.rows
    }
}

/// Per-worker scan state over a shared [`FrozenScanCore`]: the zero-copy
/// column slices (where the backend exposes them), the block emitter with
/// its selection vector and gather buffers, and the per-block all-match
/// flags. Creating a cursor is cheap relative to a morsel; each parallel
/// worker owns one and reuses it across all morsels it pulls.
pub(crate) struct FrozenCursor<'c> {
    core: &'c FrozenScanCore,
    f_slices: Vec<Option<&'c [u64]>>,
    p_slices: Vec<Option<&'c [u64]>>,
    /// Per-filter zone-map all-match flags of the current block, reused.
    all_match: Vec<bool>,
    em: BlockEmitter,
}

impl<'c> FrozenCursor<'c> {
    pub(crate) fn new(core: &'c FrozenScanCore) -> FrozenCursor<'c> {
        // SAFETY(provenance: core, sc): the core holds an `Arc<SnapCol>`
        // per column and owns the epoch pin (or, on the transaction path,
        // is covered by the active-transaction horizon), so the frozen
        // areas can neither be unmapped nor recycled while these borrows
        // live; frozen areas are never written after hand-over, so the
        // slices are genuinely immutable.
        let f_slices: Vec<Option<&[u64]>> = core
            .filter_snaps
            .iter()
            .map(|sc| unsafe { sc.area().as_slice() })
            .collect();
        // SAFETY(provenance: core, sc): same contract as the filter
        // slices above — pinned epoch, frozen areas.
        let p_slices: Vec<Option<&[u64]>> = core
            .proj_snaps
            .iter()
            .map(|sc| unsafe { sc.area().as_slice() })
            .collect();
        let f_sliced: Vec<bool> = f_slices.iter().map(Option::is_some).collect();
        let proj_sliced: Vec<bool> = p_slices.iter().map(Option::is_some).collect();
        let em = BlockEmitter::new(
            &core.spec.filters,
            &core.spec.projection,
            &f_sliced,
            &proj_sliced,
            core.spec.scalar,
        );
        FrozenCursor {
            core,
            f_slices,
            p_slices,
            all_match: vec![false; core.spec.filters.len()],
            em,
        }
    }

    /// Zone-map verdict for `block_idx`: `false` when the block is pruned
    /// (some filter cannot match), otherwise `true` with
    /// `self.all_match[fi]` set for every filter the zone map proves
    /// all-matching (vector path only — the scalar baseline evaluates
    /// every conjunct like the pre-vectorized code did).
    fn classify_block(&mut self, block_idx: usize) -> bool {
        let filters = &self.core.spec.filters;
        let scalar = self.core.spec.scalar;
        for (fi, (zm, flt)) in self.core.zone_maps.iter().zip(filters).enumerate() {
            let (lo, hi) = zm.block_range(block_idx);
            if !flt.block_can_match(lo, hi) {
                return false;
            }
            self.all_match[fi] = !scalar && flt.block_all_match(lo, hi);
        }
        true
    }

    /// Scan rows `[start, end)` — `start` must be 1024-row (block)
    /// aligned — applying zone-map pruning per block and emitting
    /// surviving rows into `sink`. Counters accumulate into `stats`. The
    /// adaptive conjunct order resets here: one range = one deterministic
    /// adaptation domain (see [`crate::kernels::AdaptiveOrder`]).
    pub(crate) fn run_range(
        &mut self,
        start: u32,
        end: u32,
        sink: &mut dyn FnMut(u32, &[u64]),
        stats: &mut ScanStats,
    ) -> Result<()> {
        if start >= end {
            // Empty ranges (e.g. a trailing empty partition of a small
            // table) are legal and need not be block-aligned.
            return Ok(());
        }
        debug_assert!(
            start.is_multiple_of(BLOCK_ROWS),
            "morsels are block-aligned"
        );
        self.em.begin_range();
        let end = end.min(self.core.rows);
        let mut start = start;
        while start < end {
            let n = BLOCK_ROWS.min(end - start);
            let block_idx = (start / BLOCK_ROWS) as usize;
            if !self.classify_block(block_idx) {
                stats.blocks_skipped += 1;
                start += n;
                continue;
            }
            stats.tight_rows += n as u64;
            let FrozenCursor {
                core,
                f_slices,
                p_slices,
                all_match,
                em,
            } = self;
            let filters = &core.spec.filters;
            em.filter_block(
                filters,
                f_slices,
                all_match,
                start,
                n,
                stats,
                &mut |fi, buf, _| {
                    Ok(core.filter_snaps[fi]
                        .area()
                        .read_block_into(start, n, buf)?)
                },
                false,
            )?;
            em.emit(
                f_slices,
                p_slices,
                start,
                n,
                stats,
                &mut |fi, buf, _| {
                    Ok(core.filter_snaps[fi]
                        .area()
                        .read_block_into(start, n, buf)?)
                },
                &mut |pi, buf, _| Ok(core.proj_snaps[pi].area().read_block_into(start, n, buf)?),
                sink,
            )?;
            start += n;
        }
        Ok(())
    }

    /// Count the passing rows of `[start, end)` without delivering them:
    /// the fused count path. Selections are popcounted — never gathered
    /// into projection buffers — all-match blocks contribute their row
    /// count without reading any column data, and the final conjunct of a
    /// block runs as a pure popcount kernel with no index
    /// materialisation.
    pub(crate) fn count_range(
        &mut self,
        start: u32,
        end: u32,
        stats: &mut ScanStats,
    ) -> Result<u64> {
        if start >= end {
            return Ok(0);
        }
        debug_assert!(
            start.is_multiple_of(BLOCK_ROWS),
            "morsels are block-aligned"
        );
        self.em.begin_range();
        let end = end.min(self.core.rows);
        let mut count = 0u64;
        let mut start = start;
        while start < end {
            let n = BLOCK_ROWS.min(end - start);
            let block_idx = (start / BLOCK_ROWS) as usize;
            if !self.classify_block(block_idx) {
                stats.blocks_skipped += 1;
                start += n;
                continue;
            }
            stats.tight_rows += n as u64;
            let FrozenCursor {
                core,
                f_slices,
                all_match,
                em,
                ..
            } = self;
            let filters = &core.spec.filters;
            em.filter_block(
                filters,
                f_slices,
                all_match,
                start,
                n,
                stats,
                &mut |fi, buf, _| {
                    Ok(core.filter_snaps[fi]
                        .area()
                        .read_block_into(start, n, buf)?)
                },
                true,
            )?;
            count += em.selected() as u64;
            start += n;
        }
        Ok(count)
    }
}

// ---------------------------------------------------------------------
// Detached reader scans: sequential, morsel-parallel, partitioned
// ---------------------------------------------------------------------

/// A scan under construction on a [`SnapshotReader`]: obtain with
/// [`SnapshotReader::scan`], chain the same typed predicates and
/// projection as [`ScanBuilder`], optionally fan out with
/// [`ReaderScanBuilder::parallel`], and finish with a terminal method.
///
/// Reader scans run **only** on the reader's pinned frozen epoch: no
/// version checks, no commit-lock acquisition after the scanned columns
/// are materialised, and snapshot-isolation semantics at the epoch
/// timestamp (see [`SnapshotReader`] for the contract).
///
/// Parallel terminals merge per-morsel results in morsel order, so for
/// associative merge operators the result is deterministic and identical
/// across thread counts.
#[must_use = "a ReaderScanBuilder does nothing until a terminal method runs it"]
pub struct ReaderScanBuilder<'r> {
    reader: &'r SnapshotReader,
    table: TableId,
    spec: ScanSpec,
    threads: usize,
}

impl<'r> ReaderScanBuilder<'r> {
    pub(crate) fn new(reader: &'r SnapshotReader, table: TableId) -> ReaderScanBuilder<'r> {
        let scalar = reader.db().config().scalar_scan;
        ReaderScanBuilder {
            reader,
            table,
            spec: ScanSpec {
                scalar,
                ..ScanSpec::default()
            },
            threads: 1,
        }
    }

    fn col_ty(&self, col: ColumnId) -> LogicalType {
        self.reader.db().table_state(self.table).schema.def(col).ty
    }

    /// Keep rows with `lo <= col <= hi` (inclusive; `Int`/`Date` column).
    pub fn range_i64(mut self, col: ColumnId, lo: i64, hi: i64) -> Self {
        let ty = self.col_ty(col);
        self.spec.range_i64(col, ty, lo, hi);
        self
    }

    /// Keep rows with `lo <= col <= hi` (inclusive; `Double` column).
    pub fn range_f64(mut self, col: ColumnId, lo: f64, hi: f64) -> Self {
        let ty = self.col_ty(col);
        self.spec.range_f64(col, ty, lo, hi);
        self
    }

    /// Keep rows with `col < hi` (strict; `Double` column).
    pub fn lt_f64(mut self, col: ColumnId, hi: f64) -> Self {
        let ty = self.col_ty(col);
        self.spec.lt_f64(col, ty, hi);
        self
    }

    /// Keep rows whose dictionary code equals `code` (`Dict` column).
    pub fn dict_eq(mut self, col: ColumnId, code: u32) -> Self {
        let ty = self.col_ty(col);
        self.spec.dict_eq(col, ty, code);
        self
    }

    /// Keep rows whose dictionary code is one of `codes` (`Dict` column;
    /// an empty set matches nothing).
    pub fn in_set(mut self, col: ColumnId, codes: impl IntoIterator<Item = u32>) -> Self {
        let ty = self.col_ty(col);
        self.spec.in_set(col, ty, codes.into_iter().collect());
        self
    }

    /// Set the columns the row callback receives, in this order.
    pub fn project(mut self, cols: &[ColumnId]) -> Self {
        self.spec.projection = cols.to_vec();
        self
    }

    /// Fan the scan out over `threads` threads of execution (the caller
    /// is one of them; the rest come from the database's reusable scan
    /// pool). Workers pull 1024-row-aligned morsels dynamically;
    /// per-morsel results merge in morsel order. `parallel(1)` (the
    /// default) runs entirely on the calling thread.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn build_core(&mut self) -> Result<FrozenScanCore> {
        let reader = self.reader;
        let table = self.table;
        let rows = reader.db().rows(table);
        let spec = std::mem::take(&mut self.spec);
        FrozenScanCore::build(rows, spec, Some(reader.pin_handle()), &mut |c| {
            reader.snap_col(table, c)
        })
    }

    /// Run the scan and count the rows passing all filters. The
    /// projection is ignored (no value columns are read): each morsel
    /// popcounts its selection vectors through
    /// `FrozenCursor::count_range` — no per-row callback, no
    /// projection buffers ([`ScanStats::proj_blocks`] stays 0) — and the
    /// per-morsel counts sum in morsel order.
    pub fn count(mut self) -> Result<(u64, ScanStats)> {
        self.spec.projection.clear();
        let threads = self.threads;
        let core = self.build_core()?;
        let (counts, stats) =
            run_morsels(self.reader, &core, threads, &|cursor, start, end, st| {
                cursor.count_range(start, end, st)
            })?;
        Ok((counts.into_iter().sum(), stats))
    }

    /// Run the scan, calling `f(row, words)` with the raw 8-byte words of
    /// the projection for every passing row. Under [`parallel`], `f` is
    /// called concurrently from multiple threads and rows of different
    /// morsels arrive in no particular order (within a morsel, row order
    /// holds); use [`fold`] when you need a deterministic reduction.
    ///
    /// [`parallel`]: ReaderScanBuilder::parallel
    /// [`fold`]: ReaderScanBuilder::fold
    pub fn for_each(mut self, f: impl Fn(u32, &[u64]) + Sync) -> Result<ScanStats> {
        let threads = self.threads;
        let core = self.build_core()?;
        let (_, stats) = run_morsels(self.reader, &core, threads, &|cursor, start, end, st| {
            cursor.run_range(start, end, &mut |row, words| f(row, words), st)
        })?;
        Ok(stats)
    }

    /// Run the scan, folding every passing row's decoded projection into
    /// per-morsel accumulators (each seeded with a clone of `init`) and
    /// merging them **in morsel order** with `merge`. For an associative
    /// `merge` the result equals the sequential fold and is identical for
    /// every thread count.
    pub fn fold<A, F, M>(mut self, init: A, f: F, merge: M) -> Result<(A, ScanStats)>
    where
        A: Clone + Send + Sync,
        F: Fn(A, u32, &[Value]) -> A + Sync,
        M: Fn(A, A) -> A,
    {
        let tys: Vec<LogicalType> = {
            let state = self.reader.db().table_state(self.table);
            self.spec
                .projection
                .iter()
                .map(|&c| state.schema.def(c).ty)
                .collect()
        };
        let threads = self.threads;
        let core = self.build_core()?;
        let init = &init;
        let (accs, stats) = run_morsels(self.reader, &core, threads, &|cursor, start, end, st| {
            let mut acc = Some(init.clone());
            // One decode buffer per morsel, reused across its rows.
            let mut vals: Vec<Value> = Vec::with_capacity(tys.len());
            cursor.run_range(
                start,
                end,
                &mut |row, words| {
                    vals.clear();
                    vals.extend(words.iter().zip(&tys).map(|(&w, &ty)| Value::decode(w, ty)));
                    let a = acc.take().expect("accumulator present");
                    acc = Some(f(a, row, &vals));
                },
                st,
            )?;
            Ok(acc.expect("accumulator present"))
        })?;
        let folded = accs
            .into_iter()
            .reduce(merge)
            .unwrap_or_else(|| init.clone());
        Ok((folded, stats))
    }

    /// Split the scan into `n` contiguous, 1024-row-aligned partitions the
    /// caller drives on threads of its own ([`ScanPartition`] is `Send` +
    /// `Sync` and keeps the epoch pinned). Exactly `n` partitions are
    /// returned; trailing ones may be empty when the table is small. The
    /// union of the partitions is the whole table, disjointly.
    ///
    /// The partitions share one compiled scan, so — unlike the builder's
    /// own [`count`](ReaderScanBuilder::count) — a partition holding a
    /// projection keeps it; omit [`project`](ReaderScanBuilder::project)
    /// when the partitions will only count.
    pub fn into_partitions(mut self, n: usize) -> Result<Vec<ScanPartition>> {
        let threads = n.max(1) as u32;
        let core = Arc::new(self.build_core()?);
        let rows = core.rows();
        let blocks = rows.div_ceil(BLOCK_ROWS);
        let base = blocks / threads;
        let extra = blocks % threads;
        let mut out = Vec::with_capacity(threads as usize);
        let mut block = 0u32;
        for i in 0..threads {
            let take = base + u32::from(i < extra);
            let start = block * BLOCK_ROWS;
            let end = ((block + take) * BLOCK_ROWS).min(rows);
            out.push(ScanPartition {
                core: Arc::clone(&core),
                start: start.min(rows),
                end,
            });
            block += take;
        }
        Ok(out)
    }
}

/// One contiguous, block-aligned slice of a reader scan, detached from
/// the builder: `Send + Sync`, keeps the snapshot epoch pinned, and runs
/// sequentially on whatever thread the caller gives it. Produced by
/// [`ReaderScanBuilder::into_partitions`] for executors that manage their
/// own threads instead of using the built-in pool.
///
/// Each partition is its own adaptive-ordering domain (the conjunct
/// order resets at its start), so a partition's results and counters
/// depend only on its row range and the table content.
pub struct ScanPartition {
    // The core owns the epoch pin, so the partition keeps the epoch
    // pinned transitively for as long as it lives.
    core: Arc<FrozenScanCore>,
    start: u32,
    end: u32,
}

impl std::fmt::Debug for ScanPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanPartition")
            .field("rows", &(self.start..self.end))
            .finish()
    }
}

impl ScanPartition {
    /// The row range this partition covers (may be empty).
    pub fn rows(&self) -> std::ops::Range<u32> {
        self.start..self.end
    }

    /// Scan this partition, calling `f(row, words)` for every passing row
    /// in row order.
    pub fn for_each(&self, mut f: impl FnMut(u32, &[u64])) -> Result<ScanStats> {
        let mut stats = ScanStats {
            threads: 1,
            morsels: 1,
            ..ScanStats::default()
        };
        let mut cursor = FrozenCursor::new(&self.core);
        let obs_tok = obs::span_begin(obs::stage!("scan_morsel"));
        let res = cursor.run_range(self.start, self.end, &mut f, &mut stats);
        obs::span_end(obs_tok);
        res?;
        note_scan_stats(&stats);
        Ok(stats)
    }

    /// Count the partition's passing rows through the fused
    /// selection-vector popcount path (no projection reads, no per-row
    /// callback).
    pub fn count(&self) -> Result<(u64, ScanStats)> {
        let mut stats = ScanStats {
            threads: 1,
            morsels: 1,
            ..ScanStats::default()
        };
        let mut cursor = FrozenCursor::new(&self.core);
        let obs_tok = obs::span_begin(obs::stage!("scan_morsel"));
        let res = cursor.count_range(self.start, self.end, &mut stats);
        obs::span_end(obs_tok);
        let n = res?;
        note_scan_stats(&stats);
        Ok((n, stats))
    }
}

/// The morsel-parallel driver: split `core`'s rows into
/// [`MORSEL_BLOCKS`]-sized, block-aligned morsels, let `threads` workers
/// (the caller plus pool workers) pull them dynamically, and return the
/// per-morsel results **in morsel order** together with the merged
/// stats. Each morsel runs through `run` on the pulling worker's cursor
/// (`run_range` for row terminals, `count_range` for the fused count);
/// `threads == 1` runs entirely inline.
fn run_morsels<A: Send>(
    reader: &SnapshotReader,
    core: &FrozenScanCore,
    threads: usize,
    run: &(dyn Fn(&mut FrozenCursor, u32, u32, &mut ScanStats) -> Result<A> + Sync),
) -> Result<(Vec<A>, ScanStats)> {
    let rows = core.rows();
    let morsel_rows = morsel_blocks(rows.div_ceil(BLOCK_ROWS)) * BLOCK_ROWS;
    let n_morsels = rows.div_ceil(morsel_rows) as usize;
    let threads = threads.clamp(1, n_morsels.max(1));
    let next = AtomicU32::new(0);
    let slots: Vec<Mutex<Option<(A, ScanStats)>>> =
        (0..n_morsels).map(|_| Mutex::new(None)).collect();
    let error: Mutex<Option<crate::error::DbError>> = Mutex::new(None);
    let failed = std::sync::atomic::AtomicBool::new(false);
    let worker = |_seat: usize| {
        let mut cursor = FrozenCursor::new(core);
        loop {
            // One worker's error cancels the whole scan: the others stop
            // pulling instead of draining the remaining morsels for a
            // result that will be discarded.
            // ORDERING: Acquire pairs with the failing worker's Release
            // store below, so a cancelled worker also sees the error it
            // defers to already recorded.
            if failed.load(Ordering::Acquire) {
                break;
            }
            let m = next.fetch_add(1, Ordering::Relaxed) as usize;
            if m >= n_morsels {
                break;
            }
            let start = m as u32 * morsel_rows;
            let end = (start + morsel_rows).min(rows);
            let mut stats = ScanStats {
                morsels: 1,
                ..ScanStats::default()
            };
            let obs_tok = obs::span_begin(obs::stage!("scan_morsel"));
            let res = run(&mut cursor, start, end, &mut stats);
            obs::span_end(obs_tok);
            match res {
                Ok(acc) => *slots[m].lock() = Some((acc, stats)),
                Err(e) => {
                    error.lock().get_or_insert(e);
                    // ORDERING: Release — the recorded error above must be
                    // visible to any worker whose Acquire load sees the
                    // cancel flag.
                    failed.store(true, Ordering::Release);
                    break;
                }
            }
        }
    };
    if threads == 1 {
        worker(0);
    } else {
        reader.db().scan_pool(threads).run(threads, &worker);
    }
    if let Some(e) = error.into_inner() {
        return Err(e);
    }
    let mut stats = ScanStats {
        threads: threads as u64,
        ..ScanStats::default()
    };
    let mut accs = Vec::with_capacity(n_morsels);
    for slot in slots {
        let (acc, morsel_stats) = slot.into_inner().expect("morsel completed without error");
        stats.merge(&morsel_stats);
        accs.push(acc);
    }
    note_scan_stats(&stats);
    Ok((accs, stats))
}

/// Fold a finished scan's merged [`ScanStats`] into the process-wide
/// metric registry. Called once per completed scan (sequential `execute`,
/// the morsel-parallel driver, and explicit [`ScanPartition`] runs), so
/// the counters stay bit-identical across thread counts — the same
/// invariant the per-scan stats already keep.
fn note_scan_stats(stats: &ScanStats) {
    obs::counter!("scan_morsels_total", "Morsels processed across all scans").add(stats.morsels);
    obs::counter!(
        "scan_tight_rows_total",
        "Rows delivered through the tight (unchecked) scan path"
    )
    .add(stats.tight_rows);
    obs::counter!(
        "scan_checked_rows_total",
        "Rows that went through per-row visibility checks"
    )
    .add(stats.checked_rows);
    obs::counter!(
        "scan_chain_walks_total",
        "Rows whose value came from a version-chain walk"
    )
    .add(stats.chain_walks);
    obs::counter!(
        "scan_blocks_skipped_total",
        "Blocks pruned wholesale by zone maps"
    )
    .add(stats.blocks_skipped);
    obs::counter!(
        "scan_rows_filtered_total",
        "Rows read and then eliminated by pushed-down predicates"
    )
    .add(stats.rows_filtered);
    obs::counter!(
        "scan_vector_blocks_total",
        "Blocks filtered through the selection-vector kernels"
    )
    .add(stats.vector_blocks);
    obs::counter!(
        "scan_dense_blocks_total",
        "Blocks the zone maps proved all-match (no selection vector)"
    )
    .add(stats.dense_blocks);
}

/// Reads filter/projection column `idx`'s current block into `buf`
/// (versioned gather or frozen-area staging, depending on the scan path).
type ReadCol<'a> = &'a mut dyn FnMut(usize, &mut [u64], &mut ScanStats) -> Result<()>;

/// Per-block machinery shared by both scan paths: evaluate the filters
/// column-at-a-time over the block (selection-vector kernels, or the
/// scalar row-at-a-time baseline under `ANKER_SCALAR_SCAN=1`), then —
/// when any row survives and the terminal wants rows — emit the
/// surviving rows into the sink.
///
/// Filter columns are gathered **lazily in evaluation order** (a conjunct
/// that empties the selection, or a zone-map all-match verdict, saves the
/// gathers behind it); whole-column slices (`f_slices`/`pslices`, the OS
/// backend's zero-copy path) need no gathering at all. Projection words
/// come, in order of preference, from a filter's block (column read
/// once), from a whole-column slice, or from a buffer filled through
/// `read_proj` (counted in [`ScanStats::proj_blocks`]).
struct BlockEmitter {
    /// Row-at-a-time ablation baseline instead of the kernels.
    scalar: bool,
    /// For each projection column, the index of the filter whose block
    /// already holds it (read each block once).
    proj_from_filter: Vec<Option<usize>>,
    /// Per-filter gather buffers (empty placeholders for slice-served
    /// filters) and the current block's filled flags.
    fbufs: Vec<Vec<u64>>,
    f_filled: Vec<bool>,
    pbufs: Vec<Vec<u64>>,
    sel: SelVec,
    /// Evaluation-order scratch (copied from `order` per block so the
    /// order can update while iterating).
    eval_order: Vec<u32>,
    order: AdaptiveOrder,
    vals: Vec<u64>,
}

/// Resolve filter `fi`'s words for the current block: the whole-column
/// slice when the backend exposes one, else the gather buffer — filled
/// through `read_filter` on first use within the block. Free function
/// over the emitter's split-off fields so the filter loop can hold other
/// borrows concurrently.
fn filter_words<'b>(
    fbufs: &'b mut [Vec<u64>],
    f_filled: &mut [bool],
    f_slices: &[Option<&'b [u64]>],
    fi: usize,
    start: u32,
    n: u32,
    stats: &mut ScanStats,
    read_filter: ReadCol<'_>,
) -> Result<&'b [u64]> {
    match f_slices[fi] {
        Some(s) => Ok(&s[start as usize..(start + n) as usize]),
        None => {
            if !f_filled[fi] {
                read_filter(fi, &mut fbufs[fi], stats)?;
                f_filled[fi] = true;
            }
            Ok(&fbufs[fi][..n as usize])
        }
    }
}

impl BlockEmitter {
    /// `f_sliced[fi]` / `proj_sliced[pi]` mark columns a whole-column
    /// slice will serve (no gather buffer needed).
    fn new(
        filters: &[Filter],
        projection: &[ColumnId],
        f_sliced: &[bool],
        proj_sliced: &[bool],
        scalar: bool,
    ) -> BlockEmitter {
        let block = BLOCK_ROWS as usize;
        let proj_from_filter: Vec<Option<usize>> = projection
            .iter()
            .map(|&c| filters.iter().position(|flt| flt.col == c))
            .collect();
        let fbufs = f_sliced
            .iter()
            .map(|sliced| {
                if *sliced {
                    Vec::new()
                } else {
                    vec![0u64; block]
                }
            })
            .collect();
        // Columns served from a filter block or a whole-column slice get an
        // empty placeholder so `pbufs` stays indexable by projection
        // position without allocating storage nothing will read.
        let pbufs = proj_from_filter
            .iter()
            .zip(proj_sliced)
            .map(|(src, sliced)| match (src, sliced) {
                (Some(_), _) | (None, true) => Vec::new(),
                (None, false) => vec![0u64; block],
            })
            .collect();
        BlockEmitter {
            scalar,
            proj_from_filter,
            fbufs,
            f_filled: vec![false; filters.len()],
            pbufs,
            sel: SelVec::new(BLOCK_ROWS),
            eval_order: Vec::with_capacity(filters.len()),
            order: AdaptiveOrder::new(filters),
            vals: vec![0u64; projection.len()],
        }
    }

    /// Start a new work range: reset the adaptive conjunct order (the
    /// determinism boundary — one morsel, partition, or sequential scan
    /// per range).
    fn begin_range(&mut self) {
        self.order.begin_range();
    }

    /// Rows selected by the last [`BlockEmitter::filter_block`] — the
    /// popcount the fused count terminals sum.
    fn selected(&self) -> u32 {
        self.sel.len()
    }

    /// Evaluate the block's filters into the selection vector. `start` is
    /// the block's absolute first row (whole-column slices are indexed
    /// from it); `all_match[fi]` carries the zone maps' all-match
    /// verdicts (always false on the versioned path); `count_fuse` lets
    /// the final remaining conjunct run as a pure popcount with no index
    /// materialisation (count terminals only — the selection is not
    /// enumerable afterwards).
    #[allow(clippy::too_many_arguments)]
    fn filter_block(
        &mut self,
        filters: &[Filter],
        f_slices: &[Option<&[u64]>],
        all_match: &[bool],
        start: u32,
        n: u32,
        stats: &mut ScanStats,
        read_filter: ReadCol<'_>,
        count_fuse: bool,
    ) -> Result<()> {
        let BlockEmitter {
            scalar,
            fbufs,
            f_filled,
            sel,
            eval_order,
            order,
            ..
        } = self;
        sel.reset_dense(n);
        f_filled.fill(false);
        if *scalar {
            // The pre-vectorized baseline: gather every filter column
            // eagerly (as the old block loop did), then evaluate in
            // declaration order through the branchy per-row dispatch.
            for fi in 0..filters.len() {
                filter_words(
                    fbufs,
                    f_filled,
                    f_slices,
                    fi,
                    start,
                    n,
                    stats,
                    &mut *read_filter,
                )?;
            }
            for (fi, flt) in filters.iter().enumerate() {
                let words = filter_words(
                    fbufs,
                    f_filled,
                    f_slices,
                    fi,
                    start,
                    n,
                    stats,
                    &mut *read_filter,
                )?;
                let rows_in = sel.len() as u64;
                sel.retain_scalar(words, flt);
                order.record(fi, rows_in, sel.len() as u64, stats);
                if sel.is_empty() {
                    break;
                }
            }
            stats.rows_filtered += n as u64 - sel.len() as u64;
            return Ok(());
        }
        eval_order.clear();
        eval_order.extend_from_slice(order.order());
        let todo = eval_order
            .iter()
            .filter(|&&fi| !all_match[fi as usize])
            .count();
        let mut done = 0usize;
        for &fi in eval_order.iter() {
            let fi = fi as usize;
            if all_match[fi] {
                // The zone map proved every row of this block passes:
                // nothing to evaluate, nothing to read.
                let len = sel.len() as u64;
                order.record(fi, len, len, stats);
                continue;
            }
            let words = filter_words(
                fbufs,
                f_filled,
                f_slices,
                fi,
                start,
                n,
                stats,
                &mut *read_filter,
            )?;
            let rows_in = sel.len() as u64;
            done += 1;
            if count_fuse && sel.is_dense() && done == todo {
                filters[fi].count_kernel(words, sel);
            } else {
                filters[fi].apply_kernel(words, sel);
            }
            order.record(fi, rows_in, sel.len() as u64, stats);
            if sel.is_empty() {
                break;
            }
        }
        if sel.is_dense() {
            stats.dense_blocks += 1;
        } else {
            stats.vector_blocks += 1;
        }
        stats.rows_filtered += n as u64 - sel.len() as u64;
        order.end_block(stats);
        Ok(())
    }

    /// Emit the selected rows of the current block into `sink`.
    /// Projection blocks (and filter blocks that double as projection
    /// sources but were skipped by all-match or early exit) are fetched
    /// here, only when at least one row survived.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        f_slices: &[Option<&[u64]>],
        pslices: &[Option<&[u64]>],
        start: u32,
        n: u32,
        stats: &mut ScanStats,
        read_filter: ReadCol<'_>,
        read_proj: ReadCol<'_>,
        sink: &mut dyn FnMut(u32, &[u64]),
    ) -> Result<()> {
        if self.sel.is_empty() {
            return Ok(());
        }
        let BlockEmitter {
            proj_from_filter,
            fbufs,
            f_filled,
            pbufs,
            sel,
            vals,
            ..
        } = self;
        // Fetch what emission needs and evaluation did not: projection
        // columns served by neither a filter block nor a whole-column
        // slice, and filter blocks that serve a projection but were never
        // gathered (zone-map all-match skip or early exit after them).
        for (pi, src) in proj_from_filter.iter().enumerate() {
            match src {
                Some(fi) => {
                    if f_slices[*fi].is_none() && !f_filled[*fi] {
                        read_filter(*fi, &mut fbufs[*fi], stats)?;
                        f_filled[*fi] = true;
                    }
                }
                None => {
                    if pslices[pi].is_none() {
                        read_proj(pi, &mut pbufs[pi], stats)?;
                        stats.proj_blocks += 1;
                    }
                }
            }
        }
        let fw = |fi: usize| -> &[u64] {
            match f_slices[fi] {
                Some(s) => &s[start as usize..(start + n) as usize],
                None => &fbufs[fi][..n as usize],
            }
        };
        let mut do_row = |i: u32| {
            for (ci, src) in proj_from_filter.iter().enumerate() {
                vals[ci] = match (src, pslices[ci]) {
                    (Some(fi), _) => fw(*fi)[i as usize],
                    (None, Some(s)) => s[(start + i) as usize],
                    (None, None) => pbufs[ci][i as usize],
                };
            }
            sink(start + i, vals);
        };
        match sel.as_indices() {
            // Dense block: every row passes; walk 0..n directly.
            None => (0..sel.len()).for_each(&mut do_row),
            Some(ix) => ix.iter().for_each(|&i| do_row(i)),
        }
        Ok(())
    }
}
