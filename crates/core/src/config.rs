//! Database configuration: the three evaluated setups of §5.1 are
//! combinations of [`ProcessingMode`] and
//! [`anker_mvcc::IsolationLevel`].

use anker_dura::DurabilityLevel;
use anker_mvcc::IsolationLevel;
use anker_vmem::KernelConfig;
use std::path::PathBuf;
use std::time::Duration;

/// Which virtual-memory substrate column areas live on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The simulated kernel ([`anker_vmem::Space`]): faithful page tables
    /// and a calibrated virtual clock — powers the paper's Table 1 /
    /// Figure 5 cost reproductions. Default.
    Sim,
    /// Real memory (Linux only): column areas over `memfd_create` +
    /// `mmap(MAP_SHARED)` pages with engine-mediated copy-on-write
    /// ([`anker_vmem::OsBackend`]). Snapshot creation and scans run at
    /// actual hardware speed; kernel cost counters stay zero.
    Os,
}

impl BackendKind {
    /// The backend selected by the `ANKER_BACKEND` environment variable
    /// (`"sim"` or `"os"`, case-insensitive), or `None` when unset. Feeds
    /// the [`DbConfig`] default so whole test suites can be re-pointed at
    /// the OS backend without code changes.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value: someone who set the variable is
    /// asking for a specific substrate, and silently running the suite on
    /// the simulator instead would validate the wrong thing.
    pub fn from_env() -> Option<BackendKind> {
        let v = std::env::var("ANKER_BACKEND").ok()?;
        if v.eq_ignore_ascii_case("os") {
            Some(BackendKind::Os)
        } else if v.eq_ignore_ascii_case("sim") {
            Some(BackendKind::Sim)
        } else {
            panic!("unrecognised ANKER_BACKEND value {v:?} (expected \"sim\" or \"os\")");
        }
    }
}

/// Whether transactions are separated by type (§2.2) or all run on the live
/// data (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessingMode {
    /// Classical MVCC: OLTP and OLAP share the live, versioned columns; a
    /// background thread garbage-collects version chains.
    Homogeneous,
    /// AnKerDB's design: OLAP runs on high-frequency virtual column
    /// snapshots; version chains are handed over and dropped with their
    /// epoch.
    Heterogeneous,
}

/// Configuration of an [`crate::AnkerDb`] instance.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Processing model (§5.1 configurations 1/2 vs 3).
    pub mode: ProcessingMode,
    /// Isolation level; `Serializable` adds commit-time read validation.
    pub isolation: IsolationLevel,
    /// Trigger a snapshot epoch every this many commits (paper: 10 000).
    /// Only meaningful in heterogeneous mode.
    pub snapshot_every_commits: u64,
    /// Interval of the homogeneous garbage-collection thread (paper: "a
    /// thread that makes a pass over the version chains every second").
    /// `None` disables the background thread (tests drive GC manually).
    pub gc_interval: Option<Duration>,
    /// Recycle retired snapshot areas as `vm_snapshot` destinations
    /// (§4.1.3). Ablation knob; off by default.
    pub recycle_snapshot_areas: bool,
    /// Materialise *every* column at trigger time instead of lazily on
    /// first access — the "trivial way" §2.2.2 describes and rejects
    /// ("this causes unnecessary overhead as we might access only a small
    /// subset of the attributes"). Ablation knob; off by default.
    pub eager_materialization: bool,
    /// Advise every OS-backend mapping `madvise(MADV_HUGEPAGE)` so the
    /// kernel may collapse column areas into transparent huge pages
    /// (fewer TLB misses on large scans; whether the hint is honoured
    /// depends on the system's shmem THP policy). Defaults to the
    /// `ANKER_HUGE_PAGES=1` environment variable; ignored by the
    /// simulated backend. `OsStats::huge_page_advices` counts the hints
    /// actually issued.
    pub os_huge_pages: bool,
    /// Run scan predicates through the pre-vectorized row-at-a-time
    /// dispatch instead of the selection-vector kernels — the ablation
    /// baseline ([`crate::ScanStats::vector_blocks`] and friends stay
    /// zero; results are property-tested bit-identical either way).
    /// Defaults to the `ANKER_SCALAR_SCAN=1` environment variable.
    pub scalar_scan: bool,
    /// Simulated kernel parameters (page size, cost model, memory bound).
    /// Only consulted by the [`BackendKind::Sim`] backend; the OS backend
    /// uses the hardware page size.
    pub kernel: KernelConfig,
    /// Virtual-memory substrate for column areas. Defaults to the
    /// simulated kernel, or to whatever `ANKER_BACKEND` says.
    pub backend: BackendKind,
    /// Durability contract of commits (see [`DurabilityLevel`]). Defaults
    /// to the `ANKER_DURABILITY` environment variable, or `Off`. Only
    /// effective when [`DbConfig::durability_dir`] names a directory —
    /// without one there is nowhere to log, and the engine runs
    /// process-lifetime-only exactly as before.
    pub durability: DurabilityLevel,
    /// Directory the WAL segments and checkpoint files live in. `None`
    /// (default) disables the durability subsystem entirely.
    /// [`crate::AnkerDb::open`] fills this in from its `dir` argument.
    pub durability_dir: Option<PathBuf>,
    /// Interval of the background checkpointer thread (heterogeneous mode
    /// with a durability directory only). Each pass pins a frozen snapshot
    /// epoch, streams every column to a new checkpoint file off the commit
    /// path, and truncates the WAL up to the epoch timestamp. `None`
    /// (default) disables the thread; [`crate::AnkerDb::checkpoint`] can
    /// always be called manually.
    pub checkpoint_interval: Option<Duration>,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            mode: ProcessingMode::Heterogeneous,
            isolation: IsolationLevel::Serializable,
            snapshot_every_commits: 10_000,
            gc_interval: Some(Duration::from_secs(1)),
            recycle_snapshot_areas: false,
            eager_materialization: false,
            os_huge_pages: std::env::var("ANKER_HUGE_PAGES")
                .map(|v| v == "1")
                .unwrap_or(false),
            scalar_scan: std::env::var("ANKER_SCALAR_SCAN")
                .map(|v| v == "1")
                .unwrap_or(false),
            kernel: KernelConfig::default(),
            backend: BackendKind::from_env().unwrap_or(BackendKind::Sim),
            durability: DurabilityLevel::from_env().unwrap_or(DurabilityLevel::Off),
            durability_dir: None,
            checkpoint_interval: None,
        }
    }
}

impl DbConfig {
    /// The paper's configuration 3: heterogeneous, fully serializable.
    pub fn heterogeneous_serializable() -> DbConfig {
        DbConfig::default()
    }

    /// The paper's configuration 1: homogeneous, fully serializable.
    pub fn homogeneous_serializable() -> DbConfig {
        DbConfig {
            mode: ProcessingMode::Homogeneous,
            ..DbConfig::default()
        }
    }

    /// The paper's configuration 2: homogeneous, snapshot isolation.
    pub fn homogeneous_snapshot_isolation() -> DbConfig {
        DbConfig {
            mode: ProcessingMode::Homogeneous,
            isolation: IsolationLevel::SnapshotIsolation,
            ..DbConfig::default()
        }
    }

    /// Builder-style override of the snapshot trigger interval.
    pub fn with_snapshot_every(mut self, commits: u64) -> DbConfig {
        self.snapshot_every_commits = commits.max(1);
        self
    }

    /// Builder-style override of the GC interval (`None` = no GC thread).
    pub fn with_gc_interval(mut self, interval: Option<Duration>) -> DbConfig {
        self.gc_interval = interval;
        self
    }

    /// Builder-style override of the kernel configuration.
    pub fn with_kernel(mut self, kernel: KernelConfig) -> DbConfig {
        self.kernel = kernel;
        self
    }

    /// Builder-style override of the memory backend.
    pub fn with_backend(mut self, backend: BackendKind) -> DbConfig {
        self.backend = backend;
        self
    }

    /// Builder-style override of the OS-backend huge-pages hint.
    pub fn with_os_huge_pages(mut self, on: bool) -> DbConfig {
        self.os_huge_pages = on;
        self
    }

    /// Builder-style override of the scalar-scan ablation flag.
    pub fn with_scalar_scan(mut self, on: bool) -> DbConfig {
        self.scalar_scan = on;
        self
    }

    /// Builder-style override of the durability level.
    pub fn with_durability(mut self, level: DurabilityLevel) -> DbConfig {
        self.durability = level;
        self
    }

    /// Builder-style override of the durability directory.
    pub fn with_durability_dir(mut self, dir: impl Into<PathBuf>) -> DbConfig {
        self.durability_dir = Some(dir.into());
        self
    }

    /// Builder-style override of the background-checkpointer interval.
    pub fn with_checkpoint_interval(mut self, interval: Option<Duration>) -> DbConfig {
        self.checkpoint_interval = interval;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        let hetero = DbConfig::heterogeneous_serializable();
        assert_eq!(hetero.mode, ProcessingMode::Heterogeneous);
        assert_eq!(hetero.isolation, IsolationLevel::Serializable);
        let homo_ser = DbConfig::homogeneous_serializable();
        assert_eq!(homo_ser.mode, ProcessingMode::Homogeneous);
        assert_eq!(homo_ser.isolation, IsolationLevel::Serializable);
        let homo_si = DbConfig::homogeneous_snapshot_isolation();
        assert_eq!(homo_si.isolation, IsolationLevel::SnapshotIsolation);
    }

    #[test]
    fn builder_overrides() {
        let c = DbConfig::default()
            .with_snapshot_every(0)
            .with_gc_interval(None);
        assert_eq!(c.snapshot_every_commits, 1, "clamped to at least 1");
        assert!(c.gc_interval.is_none());
    }
}
