//! Fig-8/9-style bench for the **morsel-parallel detached-reader scan
//! path**: Q6-style predicate scans and full LINEITEM scans on a
//! [`anker_core::SnapshotReader`], at 1/2/4/8 scan threads, on both
//! memory substrates, plus an OLTP-interference record (updaters
//! committing while the analytical side scans, via the HTAP driver).
//!
//! Alongside the criterion timing entries, the bench appends JSON counter
//! lines (`ANKER_BENCH_JSON`): per-configuration `scan_counters` carrying
//! the morsel/thread fan-out and pruning statistics, a `speedup` record
//! (4-thread vs 1-thread Q6 and full-scan medians), an `htap` record
//! (OLAP q/s + OLTP tx/s under interference), and the OS backend's
//! `os_stats` (snapshots, COW, madvise hints). `BENCH_parallel_scan.json`
//! at the workspace root is the committed reference run.
//!
//! Caveat for single-core hosts: with one hardware thread the fan-out
//! machinery can only add overhead — the speedup record then documents
//! the overhead bound, not a speedup. The committed reference file says
//! which case it is.

use anker_bench::args::append_bench_json_line;
use anker_core::{BackendKind, DbConfig, ScanStats, SnapshotReader};
use anker_tpch::driver::{run_htap, HtapConfig};
use anker_tpch::gen::{self, TpchConfig, TpchDb};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn build(backend: BackendKind) -> TpchDb {
    gen::generate(
        DbConfig::heterogeneous_serializable()
            .with_snapshot_every(500)
            .with_gc_interval(None)
            .with_backend(backend),
        &TpchConfig {
            scale_factor: 0.05,
            seed: 42,
        },
    )
}

/// Q6-style predicate scan (fixed parameters so every configuration does
/// identical work); returns revenue and the scan's stats.
fn q6(t: &TpchDb, reader: &SnapshotReader, threads: usize) -> (f64, ScanStats) {
    let li = &t.li;
    let lo = gen::days(1994, 1, 1) as i64;
    let hi = gen::days(1995, 1, 1) as i64;
    reader
        .scan(t.lineitem)
        .range_i64(li.shipdate, lo, hi - 1)
        .range_f64(li.discount, 0.05 - 1e-9, 0.07 + 1e-9)
        .lt_f64(li.quantity, 24.0)
        .project(&[li.extendedprice, li.discount])
        .parallel(threads)
        .fold(
            0.0f64,
            |acc, _, v| acc + v[0].as_double() * v[1].as_double(),
            |a, b| a + b,
        )
        .expect("q6 scan")
}

/// Full LINEITEM scan over six columns with a commutative checksum.
fn full_scan(t: &TpchDb, reader: &SnapshotReader, threads: usize) -> (u64, ScanStats) {
    let li = &t.li;
    let cols = [
        li.orderkey,
        li.partkey,
        li.quantity,
        li.extendedprice,
        li.discount,
        li.shipdate,
    ];
    let checksum = std::sync::atomic::AtomicU64::new(0);
    let stats = reader
        .scan(t.lineitem)
        .project(&cols)
        .parallel(threads)
        .for_each(|row, words| {
            let mut h = row as u64;
            for &w in words {
                h = h.rotate_left(7) ^ w;
            }
            checksum.fetch_add(h, std::sync::atomic::Ordering::Relaxed);
        })
        .expect("full scan");
    (checksum.into_inner(), stats)
}

/// Median wall time of `reps` runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_parallel_scan(c: &mut Criterion) {
    let mut backends = vec![BackendKind::Sim];
    if cfg!(target_os = "linux") {
        backends.push(BackendKind::Os);
    }
    let mut group = c.benchmark_group("parallel_scan");
    group.sample_size(10);
    for backend in backends {
        let bname = match backend {
            BackendKind::Sim => "sim",
            BackendKind::Os => "os",
        };
        let t = build(backend);
        let reader = t.db.snapshot_reader().expect("hetero mode");
        // Warm: materialise the scanned columns and build zone maps once.
        let (warm_rev, _) = q6(&t, &reader, 1);
        let mut medians: Vec<(usize, u64, u64)> = Vec::new();
        for threads in THREADS {
            let label = format!("backend={bname}/threads={threads}");
            group.bench_with_input(BenchmarkId::new("q6", &label), &threads, |b, &n| {
                b.iter(|| q6(&t, &reader, n));
            });
            group.bench_with_input(BenchmarkId::new("fullscan", &label), &threads, |b, &n| {
                b.iter(|| full_scan(&t, &reader, n));
            });
            // Our own medians feed the speedup record (the criterion shim
            // writes its timings separately).
            let q6_ns = median_ns(5, || {
                q6(&t, &reader, threads);
            });
            let fs_ns = median_ns(5, || {
                full_scan(&t, &reader, threads);
            });
            medians.push((threads, q6_ns, fs_ns));
            // The fan-out and pruning behind those timings, one line per
            // configuration.
            let (rev, s) = q6(&t, &reader, threads);
            assert_eq!(rev.to_bits(), warm_rev.to_bits(), "thread-count variance");
            append_bench_json_line(&format!(
                "{{\"bench\":\"parallel_scan/q6/{label}/scan_counters\",\
                 \"morsels\":{},\"threads\":{},\"blocks_skipped\":{},\
                 \"rows_filtered\":{},\"tight_rows\":{}}}",
                s.morsels, s.threads, s.blocks_skipped, s.rows_filtered, s.tight_rows
            ));
        }
        let base = medians.iter().find(|(n, _, _)| *n == 1).expect("1-thread");
        let at4 = medians.iter().find(|(n, _, _)| *n == 4).expect("4-thread");
        append_bench_json_line(&format!(
            "{{\"bench\":\"parallel_scan/speedup/backend={bname}\",\
             \"q6_1t_ns\":{},\"q6_4t_ns\":{},\"q6_speedup_4v1\":{:.3},\
             \"fullscan_1t_ns\":{},\"fullscan_4t_ns\":{},\"fullscan_speedup_4v1\":{:.3},\
             \"host_cpus\":{}}}",
            base.1,
            at4.1,
            base.1 as f64 / at4.1 as f64,
            base.2,
            at4.2,
            base.2 as f64 / at4.2 as f64,
            std::thread::available_parallelism().map_or(0, |n| n.get())
        ));
        drop(reader);
        // OLTP interference: updaters commit while the analytical side
        // opens a fresh reader per query — the fig8 mixed bar, detached.
        for threads in [1usize, 4] {
            let r = run_htap(
                &t,
                &HtapConfig {
                    updaters: 2,
                    scan_threads: threads,
                    scans: 8,
                    seed: 13,
                    think_us: 0.0,
                },
            );
            append_bench_json_line(&format!(
                "{{\"bench\":\"parallel_scan/htap/backend={bname}/threads={threads}\",\
                 \"olap_qps\":{:.1},\"oltp_tps\":{:.0},\"oltp_committed\":{},\
                 \"oltp_aborted\":{},\"scan_morsels\":{},\"scan_threads\":{}}}",
                r.olap_qps,
                r.oltp_tps,
                r.oltp_committed,
                r.oltp_aborted,
                r.stats.morsels,
                r.stats.threads
            ));
        }
        if let Some(os) = t.db.os_stats() {
            append_bench_json_line(&format!(
                "{{\"bench\":\"parallel_scan/os_stats/backend={bname}\",\
                 \"snapshots\":{},\"recycled\":{},\"cow_copies\":{},\"cow_reclaims\":{},\
                 \"huge_page_advices\":{},\"sequential_advices\":{}}}",
                os.snapshots,
                os.recycled,
                os.cow_copies,
                os.cow_reclaims,
                os.huge_page_advices,
                os.sequential_advices
            ));
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scan);
criterion_main!(benches);
