//! Criterion bench for **Figure 9**: full-scan cost at different fractions
//! of versioned rows, measured from a reader older than the updates.

use anker_core::{DbConfig, TxnKind};
use anker_tpch::gen::{self, TpchConfig};
use anker_tpch::queries::{scan_table, OlapQuery};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A LINEITEM table with `fraction` of its rows versioned and a reader old
/// enough to need the chains.
struct State {
    t: gen::TpchDb,
    reader: anker_core::Txn,
}

fn prepared(fraction: f64) -> State {
    let t = gen::generate(
        DbConfig::homogeneous_serializable().with_gc_interval(None),
        &TpchConfig {
            scale_factor: 0.01,
            seed: 42,
        },
    );
    let reader = t.db.begin(TxnKind::Olap);
    let mut rng = SmallRng::seed_from_u64(5);
    let rows = t.db.rows(t.lineitem);
    let schema = t.db.schema(t.lineitem);
    let cols: Vec<_> = schema.iter().map(|(id, _)| id).collect();
    let selected: Vec<u32> = (0..rows)
        .filter(|_| rng.random_range(0.0..1.0) < fraction)
        .collect();
    for chunk in selected.chunks(256) {
        let mut txn = t.db.begin(TxnKind::Oltp);
        for &row in chunk {
            for &col in &cols {
                let cur = txn.get(t.lineitem, col, row).unwrap();
                txn.update(t.lineitem, col, row, cur.wrapping_add(1))
                    .unwrap();
            }
        }
        txn.commit().unwrap();
    }
    State { t, reader }
}

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_versioned_scan");
    group.sample_size(10);
    for fraction in [0.0, 0.25, 0.5, 1.0] {
        let mut state = prepared(fraction);
        group.bench_with_input(
            BenchmarkId::new("lineitem_scan", format!("{:.0}%", fraction * 100.0)),
            &fraction,
            |b, _| {
                b.iter(|| {
                    scan_table(&state.t, &mut state.reader, OlapQuery::ScanLineitem).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
