//! Criterion bench for **Figure 8**: end-to-end wall time of one mixed
//! OLTP+OLAP batch per configuration, at reduced batch size. The
//! `repro_fig8` binary runs the full median-of-three experiment.

use anker_core::DbConfig;
use anker_tpch::driver::{run_workload, WorkloadConfig};
use anker_tpch::gen::{self, TpchConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig8(c: &mut Criterion) {
    let configs = [
        ("homo_ser", DbConfig::homogeneous_serializable()),
        ("homo_si", DbConfig::homogeneous_snapshot_isolation()),
        (
            "hetero",
            DbConfig::heterogeneous_serializable().with_snapshot_every(400),
        ),
    ];
    let mut group = c.benchmark_group("fig8_throughput");
    group.sample_size(10);
    for (name, cfg) in configs {
        let t = gen::generate(
            cfg,
            &TpchConfig {
                scale_factor: 0.01,
                seed: 42,
            },
        );
        group.bench_with_input(BenchmarkId::new("mixed_batch", name), &(), |b, ()| {
            b.iter(|| {
                run_workload(
                    &t,
                    &WorkloadConfig {
                        oltp_txns: 4_000,
                        olap_txns: 5,
                        threads: 2,
                        seed: 7,
                        think_us: 0.0,
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
