//! Criterion bench for **Figure 7**: OLAP query latency per configuration.
//! Criterion cannot host the full pressure-thread experiment, so this bench
//! measures the query itself on a database pre-loaded with update history —
//! heterogeneous runs on snapshots (tight loops), homogeneous runs on
//! versioned columns. The `repro_fig7` binary runs the full
//! pressure-under-load version.

use anker_bench::args::append_bench_json_line;
use anker_core::{DbConfig, TxnKind};
use anker_tpch::gen::{self, TpchConfig};
use anker_tpch::oltp::{run_oltp, OltpKind};
use anker_tpch::queries::{run_olap, sample_params, OlapQuery};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn prepared(cfg: DbConfig) -> gen::TpchDb {
    let t = gen::generate(
        cfg,
        &TpchConfig {
            scale_factor: 0.01,
            seed: 42,
        },
    );
    // Update history so homogeneous scans have chains to deal with. An old
    // pinned reader keeps GC from collecting them.
    let mut rng = SmallRng::seed_from_u64(1);
    for _ in 0..2_000 {
        let _ = run_oltp(&t, OltpKind::sample(&mut rng), &mut rng);
    }
    t
}

fn bench_fig7(c: &mut Criterion) {
    let hetero = || {
        DbConfig::heterogeneous_serializable()
            .with_snapshot_every(500)
            .with_gc_interval(None)
    };
    let mut configs = vec![
        // The heterogeneous configuration runs on both memory substrates:
        // the calibrated simulated kernel and — on Linux — real memfd
        // pages, where the snapshot scan reads straight through the
        // mapping (`BENCH_os_backend.json` records this pair).
        (
            "hetero/backend=sim",
            hetero().with_backend(anker_core::BackendKind::Sim),
        ),
        (
            "homo_ser",
            DbConfig::homogeneous_serializable().with_gc_interval(None),
        ),
        (
            "homo_si",
            DbConfig::homogeneous_snapshot_isolation().with_gc_interval(None),
        ),
    ];
    if cfg!(target_os = "linux") {
        configs.insert(
            1,
            (
                "hetero/backend=os",
                hetero().with_backend(anker_core::BackendKind::Os),
            ),
        );
    }
    let mut group = c.benchmark_group("fig7_olap_latency");
    group.sample_size(10);
    for (name, cfg) in configs {
        let t = prepared(cfg);
        for q in [OlapQuery::Q1, OlapQuery::Q6, OlapQuery::ScanLineitem] {
            let mut rng = SmallRng::seed_from_u64(3);
            let params = sample_params(q, &mut rng);
            group.bench_with_input(BenchmarkId::new(q.name(), name), &params, |b, &params| {
                b.iter(|| {
                    let mut txn = t.db.begin(TxnKind::Olap);
                    let r = run_olap(&t, &mut txn, params).unwrap();
                    txn.commit().unwrap();
                    r
                });
            });
            // Record the scan counters of one representative execution
            // next to the timing entry: blocks skipped by zone maps and
            // rows removed by pushed-down filters are the mechanism the
            // wall-clock numbers reflect.
            let mut txn = t.db.begin(TxnKind::Olap);
            run_olap(&t, &mut txn, params).unwrap();
            let s = txn.scan_stats();
            txn.commit().unwrap();
            append_bench_json_line(&format!(
                "{{\"bench\":\"fig7_olap_latency/{}/{}/scan_counters\",\
                 \"blocks_skipped\":{},\"rows_filtered\":{},\
                 \"tight_rows\":{},\"checked_rows\":{},\"chain_walks\":{},\
                 \"morsels\":{},\"threads\":{}}}",
                q.name(),
                name,
                s.blocks_skipped,
                s.rows_filtered,
                s.tight_rows,
                s.checked_rows,
                s.chain_walks,
                s.morsels,
                s.threads
            ));
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
