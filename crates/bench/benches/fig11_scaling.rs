//! Criterion bench for **Figure 11**: heterogeneous throughput at 1 vs 2
//! worker threads (the host has 2 cores; `repro_fig11` sweeps 1-8).

use anker_bench::args::RunScale;
use anker_core::DbConfig;
use anker_tpch::driver::{run_workload, WorkloadConfig};
use anker_tpch::gen::{self, TpchConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig11(c: &mut Criterion) {
    let scale = RunScale::smoke();
    let mut group = c.benchmark_group("fig11_scaling");
    group.sample_size(10);
    for threads in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("oltp_only", threads), &threads, |b, &n| {
            b.iter(|| {
                let t = gen::generate(
                    DbConfig::heterogeneous_serializable()
                        .with_snapshot_every(scale.snapshot_every)
                        .with_gc_interval(None),
                    &TpchConfig {
                        scale_factor: scale.sf,
                        seed: scale.seed,
                    },
                );
                run_workload(
                    &t,
                    &WorkloadConfig {
                        oltp_txns: 4_000,
                        olap_txns: 0,
                        threads: n,
                        seed: scale.seed,
                        think_us: 0.0,
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
