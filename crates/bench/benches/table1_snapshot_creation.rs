//! Criterion bench for **Table 1**: wall-clock snapshot-creation cost of
//! the four techniques at different fragmentation levels. (The `repro_table1`
//! binary reports the calibrated virtual-time version.)

use anker_snapshot::{
    ForkSnapshotter, PhysicalSnapshotter, RewiredSnapshotter, Snapshotter, VmSnapshotter,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const COLS: usize = 8;
const PAGES: u64 = 256;

fn populate(s: &mut dyn Snapshotter) {
    for c in 0..s.n_cols() {
        for p in 0..s.pages_per_col() {
            s.write_base(c, p, 0, p).unwrap();
        }
    }
}

fn fragment(s: &mut dyn Snapshotter, pages: u64) {
    let arm = s.snapshot_columns(s.n_cols()).unwrap();
    for c in 0..s.n_cols() {
        for p in 0..pages {
            s.write_base(c, p, 0, p + 1).unwrap();
        }
    }
    s.drop_snapshot(arm).unwrap();
}

fn snapshot_once(s: &mut dyn Snapshotter, p: usize) {
    let id = s.snapshot_columns(p).unwrap();
    s.drop_snapshot(id).unwrap();
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_snapshot_creation");
    group.sample_size(20);

    for p in [1usize, COLS] {
        group.bench_with_input(BenchmarkId::new("physical", p), &p, |b, &p| {
            let mut s = PhysicalSnapshotter::new(COLS, PAGES).unwrap();
            populate(&mut s);
            b.iter(|| snapshot_once(&mut s, p));
        });
        group.bench_with_input(BenchmarkId::new("fork", p), &p, |b, &p| {
            let mut s = ForkSnapshotter::new(COLS, PAGES).unwrap();
            populate(&mut s);
            b.iter(|| snapshot_once(&mut s, p));
        });
        group.bench_with_input(BenchmarkId::new("vm_snapshot", p), &p, |b, &p| {
            let mut s = VmSnapshotter::new(COLS, PAGES).unwrap();
            populate(&mut s);
            b.iter(|| snapshot_once(&mut s, p));
        });
        for modified in [0u64, PAGES / 10, PAGES] {
            group.bench_with_input(
                BenchmarkId::new(format!("rewiring_mod{modified}"), p),
                &p,
                |b, &p| {
                    let mut s = RewiredSnapshotter::new(COLS, PAGES).unwrap();
                    populate(&mut s);
                    if modified > 0 {
                        fragment(&mut s, modified);
                    }
                    b.iter(|| snapshot_once(&mut s, p));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
