//! Criterion bench for **Figure 10**: snapshotting a single column, a whole
//! table, or the entire database (via `fork`) — wall-clock of the
//! simulated calls; `repro_fig10` reports calibrated virtual time.

use anker_core::DbConfig;
use anker_tpch::gen::{self, TpchConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig10(c: &mut Criterion) {
    let t = gen::generate(
        DbConfig::heterogeneous_serializable().with_gc_interval(None),
        &TpchConfig {
            scale_factor: 0.02,
            seed: 42,
        },
    );
    let mut group = c.benchmark_group("fig10_column_snapshot");
    group.sample_size(20);
    group.bench_function("vm_snapshot_all_lineitem_columns", |b| {
        b.iter(|| t.db.snapshot_cost_probe(t.lineitem).unwrap());
    });
    group.bench_function("vm_snapshot_all_part_columns", |b| {
        b.iter(|| t.db.snapshot_cost_probe(t.part).unwrap());
    });
    group.bench_function("fork_whole_process", |b| {
        b.iter(|| t.db.fork_cost_probe().unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
