//! Selectivity-sweep bench for the **vectorized scan kernels**: the same
//! scans on a scalar-dispatch (`DbConfig::scalar_scan`, the
//! `ANKER_SCALAR_SCAN=1` ablation) and a vectorized database, across
//! selection fractions from 0.1% to 99%, on both memory substrates —
//! plus a TPC-H Q6-style improvement record on the lineitem table.
//!
//! Every timed pair also *verifies* the tentpole contract inline: the
//! scalar and the vectorized path must produce bit-identical counts and
//! `f64` aggregates (same rows, same order, same rounding) before their
//! timings are recorded.
//!
//! JSON counter lines (`ANKER_BENCH_JSON`): one `sweep` record per
//! (backend, selectivity) carrying both medians, the improvement ratio,
//! and the kernel counters (`vector_blocks`, `dense_blocks`,
//! `sel_reorders`, `proj_blocks`); one `q6_improvement` record per
//! backend for the Q6-style conjunctive scan. `BENCH_vector_scan.json`
//! at the workspace root is the committed reference run.
//!
//! Caveat for single-core hosts: all records here run single-threaded
//! (the kernels are a per-core win, orthogonal to fan-out), so
//! `host_cpus: 1` leaves the *relative* improvement meaningful — unlike
//! the thread-scaling records of `parallel_scan`.

use anker_bench::args::append_bench_json_line;
use anker_core::{
    AnkerDb, BackendKind, ColumnDef, DbConfig, LogicalType, Schema, SnapshotReader, TableId, Value,
};
use anker_tpch::gen::{self, TpchConfig, TpchDb};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

/// Rows in the synthetic sweep table (256 blocks).
const SWEEP_ROWS: u32 = 256 * 1024;
/// Value domain of the sweep column; a range filter over `[0, p·DOMAIN)`
/// selects fraction `p`.
const DOMAIN: u64 = 1_000_000;

/// Selection fractions swept: 0.1% .. 99%.
const FRACTIONS: [f64; 6] = [0.001, 0.01, 0.10, 0.25, 0.50, 0.99];

fn cfg(backend: BackendKind, scalar: bool) -> DbConfig {
    DbConfig::heterogeneous_serializable()
        .with_snapshot_every(500)
        .with_gc_interval(None)
        .with_backend(backend)
        .with_scalar_scan(scalar)
}

/// The sweep table: one Int filter column (multiplicative-hashed so zone
/// maps cannot prune — every block spans the whole domain and the
/// kernels do the real work) and one Double payload column.
fn build_sweep(backend: BackendKind, scalar: bool) -> (AnkerDb, TableId) {
    let db = AnkerDb::new(cfg(backend, scalar));
    let t = db.create_table(
        "sweep",
        Schema::new(vec![
            ColumnDef::new("v", LogicalType::Int),
            ColumnDef::new("x", LogicalType::Double),
        ]),
        SWEEP_ROWS,
    );
    let v = db.schema(t).col("v");
    let x = db.schema(t).col("x");
    let hash = |i: u32| (i as u64).wrapping_mul(2_654_435_761) % DOMAIN;
    db.fill_column(
        t,
        v,
        (0..SWEEP_ROWS).map(|i| Value::Int(hash(i) as i64).encode()),
    )
    .unwrap();
    db.fill_column(
        t,
        x,
        (0..SWEEP_ROWS).map(|i| Value::Double(hash(i) as f64 / DOMAIN as f64).encode()),
    )
    .unwrap();
    (db, t)
}

/// Count + sum at selection fraction `p` (single-threaded, the kernels'
/// own per-core story).
fn sweep_query(
    db: &AnkerDb,
    t: TableId,
    reader: &SnapshotReader,
    p: f64,
) -> (u64, f64, anker_core::ScanStats) {
    let v = db.schema(t).col("v");
    let x = db.schema(t).col("x");
    let hi = (DOMAIN as f64 * p) as i64 - 1;
    let (count, cstats) = reader.scan(t).range_i64(v, 0, hi).count().unwrap();
    let (sum, _) = reader
        .scan(t)
        .range_i64(v, 0, hi)
        .project(&[x])
        .fold(0.0f64, |a, _, vals| a + vals[0].as_double(), |a, b| a + b)
        .unwrap();
    (count, sum, cstats)
}

/// Q6-style conjunctive predicate scan on TPC-H lineitem, single thread.
fn q6(t: &TpchDb, reader: &SnapshotReader) -> (f64, anker_core::ScanStats) {
    let li = &t.li;
    let lo = gen::days(1994, 1, 1) as i64;
    let hi = gen::days(1995, 1, 1) as i64;
    reader
        .scan(t.lineitem)
        .range_i64(li.shipdate, lo, hi - 1)
        .range_f64(li.discount, 0.05 - 1e-9, 0.07 + 1e-9)
        .lt_f64(li.quantity, 24.0)
        .project(&[li.extendedprice, li.discount])
        .fold(
            0.0f64,
            |acc, _, v| acc + v[0].as_double() * v[1].as_double(),
            |a, b| a + b,
        )
        .expect("q6 scan")
}

/// Median wall time of `reps` runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(0, |n| n.get())
}

fn bench_vector_scan(c: &mut Criterion) {
    let mut backends = vec![BackendKind::Sim];
    if cfg!(target_os = "linux") {
        backends.push(BackendKind::Os);
    }
    let mut group = c.benchmark_group("vector_scan");
    group.sample_size(10);
    for backend in backends {
        let bname = match backend {
            BackendKind::Sim => "sim",
            BackendKind::Os => "os",
        };

        // --- Selectivity sweep: scalar vs vectorized, same data. ---
        let (sdb, st) = build_sweep(backend, true);
        let (vdb, vt) = build_sweep(backend, false);
        let sreader = sdb.snapshot_reader().expect("hetero mode");
        let vreader = vdb.snapshot_reader().expect("hetero mode");
        // Warm both (materialise snapshots, build zone maps).
        sweep_query(&sdb, st, &sreader, 0.5);
        sweep_query(&vdb, vt, &vreader, 0.5);
        for p in FRACTIONS {
            let sel_label = format!("{:.1}%", p * 100.0);
            // Equivalence first: identical counts, bit-identical f64 sums.
            let (sc, ss, s_stats) = sweep_query(&sdb, st, &sreader, p);
            let (vc, vs, v_stats) = sweep_query(&vdb, vt, &vreader, p);
            assert_eq!(sc, vc, "count diverged at sel={sel_label}");
            assert_eq!(
                ss.to_bits(),
                vs.to_bits(),
                "f64 aggregate diverged at sel={sel_label}"
            );
            assert_eq!(s_stats.vector_blocks + s_stats.dense_blocks, 0);
            assert!(v_stats.vector_blocks > 0);
            // Criterion entries at the sweep's endpoints only (budget).
            if p == FRACTIONS[0] || p == FRACTIONS[FRACTIONS.len() - 1] {
                let label = format!("backend={bname}/sel={sel_label}");
                group.bench_with_input(BenchmarkId::new("scalar", &label), &p, |b, &p| {
                    b.iter(|| sweep_query(&sdb, st, &sreader, p));
                });
                group.bench_with_input(BenchmarkId::new("vector", &label), &p, |b, &p| {
                    b.iter(|| sweep_query(&vdb, vt, &vreader, p));
                });
            }
            let scalar_ns = median_ns(5, || {
                sweep_query(&sdb, st, &sreader, p);
            });
            let vector_ns = median_ns(5, || {
                sweep_query(&vdb, vt, &vreader, p);
            });
            append_bench_json_line(&format!(
                "{{\"bench\":\"vector_scan/sweep/backend={bname}/sel={sel_label}\",\
                 \"rows\":{},\"selected\":{},\"scalar_ns\":{},\"vector_ns\":{},\
                 \"improvement\":{:.3},\"vector_blocks\":{},\"dense_blocks\":{},\
                 \"sel_reorders\":{},\"proj_blocks\":{},\"host_cpus\":{}}}",
                SWEEP_ROWS,
                vc,
                scalar_ns,
                vector_ns,
                scalar_ns as f64 / vector_ns as f64,
                v_stats.vector_blocks,
                v_stats.dense_blocks,
                v_stats.sel_reorders,
                v_stats.proj_blocks,
                host_cpus()
            ));
        }
        drop((sreader, vreader, sdb, vdb));

        // --- Q6-style improvement on TPC-H lineitem. ---
        let tpch_cfg = TpchConfig {
            scale_factor: 0.05,
            seed: 42,
        };
        let st = gen::generate(cfg(backend, true), &tpch_cfg);
        let vt = gen::generate(cfg(backend, false), &tpch_cfg);
        let sreader = st.db.snapshot_reader().expect("hetero mode");
        let vreader = vt.db.snapshot_reader().expect("hetero mode");
        let (s_rev, s_stats) = q6(&st, &sreader);
        let (v_rev, v_stats) = q6(&vt, &vreader);
        assert_eq!(
            s_rev.to_bits(),
            v_rev.to_bits(),
            "Q6 revenue diverged between scalar and vectorized paths"
        );
        assert_eq!(s_stats.vector_blocks + s_stats.dense_blocks, 0);
        group.bench_with_input(
            BenchmarkId::new("q6", format!("backend={bname}/scalar")),
            &(),
            |b, ()| b.iter(|| q6(&st, &sreader)),
        );
        group.bench_with_input(
            BenchmarkId::new("q6", format!("backend={bname}/vector")),
            &(),
            |b, ()| b.iter(|| q6(&vt, &vreader)),
        );
        let scalar_ns = median_ns(5, || {
            q6(&st, &sreader);
        });
        let vector_ns = median_ns(5, || {
            q6(&vt, &vreader);
        });
        append_bench_json_line(&format!(
            "{{\"bench\":\"vector_scan/q6_improvement/backend={bname}\",\
             \"scalar_ns\":{},\"vector_ns\":{},\"improvement\":{:.3},\
             \"vector_blocks\":{},\"dense_blocks\":{},\"sel_reorders\":{},\
             \"blocks_skipped\":{},\"host_cpus\":{}}}",
            scalar_ns,
            vector_ns,
            scalar_ns as f64 / vector_ns as f64,
            v_stats.vector_blocks,
            v_stats.dense_blocks,
            v_stats.sel_reorders,
            v_stats.blocks_skipped,
            host_cpus()
        ));
    }
    group.finish();
}

criterion_group!(benches, bench_vector_scan);
criterion_main!(benches);
