//! Commit-latency cost of each [`DurabilityLevel`]: the same single-row
//! OLTP commit timed with no WAL (`off`), with a buffered append
//! (`buffered`), and with a group-commit fsync (`fsync`).
//!
//! Alongside the criterion timing entries, JSON lines (`ANKER_BENCH_JSON`)
//! record the WAL counters per level — appends, fsyncs, the group-commit
//! batching factor — plus `host_cpus` (single-core hosts cannot show
//! fsync batching: with one committer at a time every sync covers one
//! commit). `BENCH_durability.json` at the workspace root is the
//! committed reference run; note that `std::env::temp_dir()` may be
//! tmpfs, where an fsync never touches a real disk — treat the fsync
//! numbers as the *protocol* overhead bound, not device latency.

use anker_bench::args::append_bench_json_line;
use anker_core::{
    AnkerDb, ColumnDef, DbConfig, DurabilityLevel, LogicalType, Schema, TxnKind, Value,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const ROWS: u32 = 4_096;

fn build(level: DurabilityLevel, dir: &std::path::Path) -> AnkerDb {
    let _ = std::fs::remove_dir_all(dir);
    let mut config = DbConfig::heterogeneous_serializable()
        .with_snapshot_every(1_000)
        .with_gc_interval(None)
        .with_durability(level);
    if level != DurabilityLevel::Off {
        config = config.with_durability_dir(dir);
    }
    let db = AnkerDb::new(config);
    let t = db.create_table(
        "accounts",
        Schema::new(vec![ColumnDef::new("balance", LogicalType::Int)]),
        ROWS,
    );
    let c = db.schema(t).col("balance");
    db.fill_column(t, c, (0..ROWS).map(|_| Value::Int(100).encode()))
        .unwrap();
    db
}

fn bench_commit_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_overhead");
    group.sample_size(2_000);
    for level in [
        DurabilityLevel::Off,
        DurabilityLevel::Buffered,
        DurabilityLevel::Fsync,
    ] {
        let dir = std::env::temp_dir().join(format!(
            "anker-wal-overhead-{}-{}",
            std::process::id(),
            level.name()
        ));
        let db = build(level, &dir);
        let t = db.table_id("accounts").unwrap();
        let col = db.schema(t).col("balance");
        let mut i = 0u32;
        group.bench_function(BenchmarkId::new("commit", level.name()), |b| {
            b.iter(|| {
                let mut txn = db.begin(TxnKind::Oltp);
                txn.update_value(t, col, i % ROWS, Value::Int(i as i64))
                    .unwrap();
                i += 1;
                txn.commit().unwrap()
            })
        });
        if let Some(w) = db.wal_stats() {
            let batching = if w.syncs > 0 {
                w.commit_records as f64 / w.syncs as f64
            } else {
                0.0
            };
            append_bench_json_line(&format!(
                "{{\"bench\":\"wal_overhead/stats/level={}\",\"commits\":{},\
                 \"appends\":{},\"bytes\":{},\"syncs\":{},\"batching\":{:.3},\
                 \"host_cpus\":{}}}",
                level.name(),
                w.commit_records,
                w.appends,
                w.bytes_appended,
                w.syncs,
                batching,
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            ));
        }
        db.shutdown();
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_commit_latency);
criterion_main!(benches);
