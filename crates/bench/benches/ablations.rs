//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Block-skip scan optimisation on/off** (§5.5): per-row visibility
//!    checks for every row vs tight loops between versioned positions.
//! 2. **Snapshot trigger interval** (§2.2.3): throughput at different `n`.
//! 3. **Page size** (§3.3): COW write cost under 4 KiB vs 64 KiB vs 2 MiB
//!    pages.
//! 4. **`vm_snapshot` destination recycling** (§4.1.3): fresh area per
//!    snapshot vs recycling the dropped one.

use anker_core::DbConfig;
use anker_mvcc::{ScanStats, VersionedColumn};
use anker_snapshot::{Snapshotter, VmSnapshotter};
use anker_storage::{ColumnArea, LogicalType};
use anker_tpch::driver::{run_workload, WorkloadConfig};
use anker_tpch::gen::{self, TpchConfig};
use anker_vmem::{Kernel, KernelConfig, MapBacking, Prot, Share};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn ablation_block_skip(c: &mut Criterion) {
    // 64k rows, 1% versioned, scattered every 100 rows — the optimisation's
    // WORST case: every 1024-row block contains versions, so the skip index
    // buys nothing and its buffer+seqlock overhead shows up as a small
    // loss. Its win case (unversioned stretches scanned tight) is the
    // 0%-vs-10% contrast of Figure 9 and the scan unit tests.
    let kernel = Kernel::default();
    let space = kernel.create_space();
    let rows: u32 = 64 * 1024;
    let area = ColumnArea::alloc(&space, rows).unwrap();
    area.fill((0..rows as u64).map(|i| i * 3)).unwrap();
    let vc = VersionedColumn::new(rows, LogicalType::Int);
    for r in (0..rows / 100).map(|i| i * 100) {
        vc.install(&area, r, 7, 5).unwrap();
    }
    let mut group = c.benchmark_group("ablation_block_skip");
    group.bench_function("with_skip_index", |b| {
        b.iter(|| {
            let mut stats = ScanStats::default();
            let mut acc = 0u64;
            vc.scan_visible(&area, 3, |_, v| acc ^= v, &mut stats)
                .unwrap();
            acc
        });
    });
    group.bench_function("per_row_checks", |b| {
        b.iter(|| {
            let mut stats = ScanStats::default();
            let mut acc = 0u64;
            vc.scan_visible_unoptimized(&area, 3, |_, v| acc ^= v, &mut stats)
                .unwrap();
            acc
        });
    });
    group.finish();
}

fn ablation_backend_block_read(c: &mut Criterion) {
    // The raw scan primitive on each memory substrate: stream an 8 MiB
    // frozen column block-wise. The simulated kernel resolves a page-table
    // entry per page and loads word by word through the frame arena; the
    // OS backend reads straight through the real mapping (and `as_slice`
    // skips even the copy). This is the isolated version of the fig7
    // hetero speedup — end-to-end queries dilute it with per-row work.
    let rows: u32 = 1 << 20; // 8 MiB of u64s
    let mut group = c.benchmark_group("backend_block_read");
    group.sample_size(10);
    let mut bench_area = |name: &str, area: &ColumnArea| {
        let mut buf = vec![0u64; 4096];
        group.bench_function(format!("read_blocks/{name}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                let mut start = 0u32;
                while start < rows {
                    area.read_block_into(start, 4096, &mut buf).unwrap();
                    acc ^= buf[0] + buf[4095];
                    start += 4096;
                }
                acc
            });
        });
        // SAFETY(provenance: area): the bench areas live to the end of the
        // function and are never written after the fill; nothing unmaps
        // them.
        if let Some(s) = unsafe { area.as_slice() } {
            group.bench_function(format!("slice_sum/{name}"), |b| {
                b.iter(|| s.iter().copied().sum::<u64>());
            });
        }
    };
    let kernel = Kernel::default();
    let space = kernel.create_space();
    let sim_area = ColumnArea::alloc(&space, rows).unwrap();
    sim_area.fill((0..rows as u64).map(|i| i * 3)).unwrap();
    bench_area("sim", &sim_area);
    #[cfg(target_os = "linux")]
    {
        use anker_vmem::VmBackend;
        use std::sync::Arc;
        let os: Arc<dyn VmBackend> = Arc::new(anker_vmem::OsBackend::new().unwrap());
        let os_area = ColumnArea::alloc_on(os, rows).unwrap();
        os_area.fill((0..rows as u64).map(|i| i * 3)).unwrap();
        bench_area("os", &os_area);
    }
    group.finish();
}

fn ablation_snapshot_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_snapshot_interval");
    group.sample_size(10);
    for every in [50u64, 500, 5_000] {
        group.bench_with_input(BenchmarkId::new("oltp_batch", every), &every, |b, &n| {
            b.iter(|| {
                let t = gen::generate(
                    DbConfig::heterogeneous_serializable()
                        .with_snapshot_every(n)
                        .with_gc_interval(None),
                    &TpchConfig {
                        scale_factor: 0.004,
                        seed: 42,
                    },
                );
                // OLAP arrivals keep materialisation happening.
                run_workload(
                    &t,
                    &WorkloadConfig {
                        oltp_txns: 3_000,
                        olap_txns: 5,
                        threads: 2,
                        seed: 1,
                        think_us: 0.0,
                    },
                )
            });
        });
    }
    group.finish();
}

fn ablation_page_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_page_size_cow");
    for page_size in [4096usize, 65_536, 2 << 20] {
        group.bench_with_input(
            BenchmarkId::new("write_after_snapshot", page_size),
            &page_size,
            |b, &ps| {
                let kernel = Kernel::new(KernelConfig {
                    page_size: ps,
                    max_phys_bytes: 1 << 30,
                    ..Default::default()
                });
                let space = kernel.create_space();
                let bytes = 16 << 20; // 16 MiB column
                let col = space
                    .mmap(bytes, Prot::READ_WRITE, Share::Private, MapBacking::Anon)
                    .unwrap();
                for off in (0..bytes).step_by(ps) {
                    space.write_u64(col + off, 1).unwrap();
                }
                let mut snap = space.vm_snapshot(None, col, bytes).unwrap();
                let mut page = 0u64;
                let n_pages = bytes / ps as u64;
                b.iter(|| {
                    // One 8-byte write into a fresh COW page; re-snapshot
                    // when the column is exhausted.
                    space
                        .write_u64(col + (page % n_pages) * ps as u64, page)
                        .unwrap();
                    page += 1;
                    if page.is_multiple_of(n_pages) {
                        space.munmap(snap, bytes).unwrap();
                        snap = space.vm_snapshot(None, col, bytes).unwrap();
                    }
                });
            },
        );
    }
    group.finish();
}

fn ablation_recycling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dst_recycling");
    for recycle in [false, true] {
        let name = if recycle { "recycled_dst" } else { "fresh_dst" };
        group.bench_function(name, |b| {
            let mut s = if recycle {
                VmSnapshotter::new_recycling(1, 1024).unwrap()
            } else {
                VmSnapshotter::new(1, 1024).unwrap()
            };
            for p in 0..1024 {
                s.write_base(0, p, 0, p).unwrap();
            }
            let mut prev = None;
            b.iter(|| {
                let id = s.snapshot_columns(1).unwrap();
                if let Some(old) = prev.replace(id) {
                    s.drop_snapshot(old).unwrap();
                }
            });
        });
    }
    group.finish();
}

fn ablation_chain_order(c: &mut Criterion) {
    // §2.1: newest-to-oldest ordering favours young transactions. Build a
    // 512-version history and probe it as a young reader (the common case)
    // and as an old one.
    use anker_mvcc::chain_order::build_both;
    let history: Vec<(u64, u64)> = (1..=512).map(|i| (i * 10, i)).collect();
    let (nf, of) = build_both(&history);
    let mut group = c.benchmark_group("ablation_chain_order");
    for (reader, ts) in [("young_reader", 511u64), ("old_reader", 2u64)] {
        group.bench_with_input(BenchmarkId::new("newest_first", reader), &ts, |b, &ts| {
            b.iter(|| nf.find(ts))
        });
        group.bench_with_input(BenchmarkId::new("oldest_first", reader), &ts, |b, &ts| {
            b.iter(|| of.find(ts))
        });
    }
    group.finish();
}

fn ablation_lazy_vs_eager_materialisation(c: &mut Criterion) {
    // §2.2.2: the "trivial" eager alternative snapshots every column at
    // every trigger; lazy materialises only on demand.
    let mut group = c.benchmark_group("ablation_materialisation");
    group.sample_size(10);
    for eager in [false, true] {
        let name = if eager { "eager" } else { "lazy" };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = DbConfig::heterogeneous_serializable()
                    .with_snapshot_every(100)
                    .with_gc_interval(None);
                cfg.eager_materialization = eager;
                let t = gen::generate(
                    cfg,
                    &TpchConfig {
                        scale_factor: 0.004,
                        seed: 42,
                    },
                );
                run_workload(
                    &t,
                    &WorkloadConfig {
                        oltp_txns: 2_000,
                        olap_txns: 2,
                        threads: 2,
                        seed: 1,
                        think_us: 0.0,
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_block_skip,
    ablation_backend_block_read,
    ablation_snapshot_interval,
    ablation_page_size,
    ablation_recycling,
    ablation_chain_order,
    ablation_lazy_vs_eager_materialisation
);
criterion_main!(benches);
