//! Criterion bench for **Figure 5**: snapshot creation (5a) and 8-byte
//! writes into a snapshotted column (5b), rewiring vs `vm_snapshot`, at
//! three fragmentation levels.

use anker_snapshot::{RewiredSnapshotter, Snapshotter, VmSnapshotter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const PAGES: u64 = 512;

fn prepared_rewired(written: u64) -> RewiredSnapshotter {
    let mut s = RewiredSnapshotter::new(1, PAGES).unwrap();
    for p in 0..PAGES {
        s.write_base(0, p, 0, p).unwrap();
    }
    let arm = s.snapshot_columns(1).unwrap();
    for p in 0..written {
        s.write_base(0, p, 0, p + 1).unwrap();
    }
    s.drop_snapshot(arm).unwrap();
    s
}

fn prepared_vmsnap() -> VmSnapshotter {
    let mut s = VmSnapshotter::new(1, PAGES).unwrap();
    for p in 0..PAGES {
        s.write_base(0, p, 0, p).unwrap();
    }
    s
}

fn bench_fig5a_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_snapshot_creation");
    group.sample_size(30);
    for written in [0u64, PAGES / 4, PAGES] {
        group.bench_with_input(BenchmarkId::new("rewiring", written), &written, |b, &w| {
            let mut s = prepared_rewired(w);
            b.iter(|| {
                let id = s.snapshot_columns(1).unwrap();
                s.drop_snapshot(id).unwrap();
            });
        });
    }
    group.bench_function("vm_snapshot", |b| {
        let mut s = prepared_vmsnap();
        b.iter(|| {
            let id = s.snapshot_columns(1).unwrap();
            s.drop_snapshot(id).unwrap();
        });
    });
    group.finish();
}

fn bench_fig5b_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_write_into_snapshotted");
    group.sample_size(30);
    group.bench_function("rewiring_manual_cow", |b| {
        // Re-arm before every batch so each write pays the manual COW.
        let mut s = prepared_rewired(0);
        let mut page = 0u64;
        b.iter(|| {
            let id = s.snapshot_columns(1).unwrap();
            s.write_base(0, page % PAGES, 0, page).unwrap();
            page += 1;
            s.drop_snapshot(id).unwrap();
        });
    });
    group.bench_function("vm_snapshot_kernel_cow", |b| {
        let mut s = prepared_vmsnap();
        let mut page = 0u64;
        b.iter(|| {
            let id = s.snapshot_columns(1).unwrap();
            s.write_base(0, page % PAGES, 0, page).unwrap();
            page += 1;
            s.drop_snapshot(id).unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig5a_snapshot, bench_fig5b_write);
criterion_main!(benches);
