//! Concurrent commit-pipeline throughput: the same Zipf-skewed
//! read-compute-write OLTP mix driven by 1, 2 and 4 committer threads
//! under full serializability, with and without bounded conflict repair.
//!
//! Alongside the criterion timing entries, JSON lines (`ANKER_BENCH_JSON`)
//! record commits/sec per thread count plus the pipeline's outcome
//! counters — committed, write-write aborts, validation aborts, repaired
//! commits, repair rounds — and `host_cpus`. A final set of
//! `commit_pipeline/stage/*` lines carries the per-stage latency
//! histograms the `anker-obs` tracer collected across every run above
//! (sampled 1-in-32 attempts; see DESIGN.md, "Observability"). **A single-core host cannot
//! show commit scaling** (the committers time-slice one core; the run
//! measures pipeline overhead, not parallelism): `BENCH_commit_pipeline.json`
//! recorded with `host_cpus: 1` must be re-recorded on a ≥4-core host
//! before quoting any scaling claim.

use anker_bench::args::append_bench_json_line;
use anker_core::{AnkerDb, ColumnDef, DbConfig, LogicalType, Schema, TxnKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ROWS: u32 = 1_024;
const TXNS_PER_THREAD: usize = 200;
const ZIPF_THETA: f64 = 0.7;
const REPAIR_ROUNDS: u32 = 2;

fn build() -> (AnkerDb, anker_core::TableId, anker_storage::ColumnId) {
    let db = AnkerDb::new(DbConfig::homogeneous_serializable().with_gc_interval(None));
    let t = db.create_table(
        "t",
        Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]),
        ROWS,
    );
    let c = db.schema(t).col("v");
    db.fill_column(t, c, 0..ROWS as u64).unwrap();
    (db, t, c)
}

/// Zipf CDF sampler over `0..ROWS` (matches the stress harness in
/// `crates/core/tests/common`).
fn zipf_cdf() -> Vec<f64> {
    let mut cdf = Vec::with_capacity(ROWS as usize);
    let mut acc = 0.0f64;
    for i in 0..ROWS {
        acc += 1.0 / ((i + 1) as f64).powf(ZIPF_THETA);
        cdf.push(acc);
    }
    let total = *cdf.last().unwrap();
    for w in &mut cdf {
        *w /= total;
    }
    cdf
}

/// Run `threads × TXNS_PER_THREAD` read-compute-write transactions and
/// return the number that committed.
fn run(
    db: &AnkerDb,
    t: anker_core::TableId,
    c: anker_storage::ColumnId,
    cdf: &[f64],
    threads: usize,
    repair: bool,
) -> usize {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|k| {
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0xB_EEF ^ (k as u64) << 17);
                    let mut committed = 0usize;
                    for _ in 0..TXNS_PER_THREAD {
                        let sample = |rng: &mut SmallRng| {
                            let u = rng.random_range(0.0..1.0f64);
                            cdf.partition_point(|&x| x < u) as u32
                        };
                        let read_row = sample(&mut rng);
                        let write_row = loop {
                            let r = sample(&mut rng);
                            if r != read_row {
                                break r;
                            }
                        };
                        let mut txn = db.begin(TxnKind::Oltp);
                        let v = txn.get(t, c, read_row).unwrap();
                        std::thread::yield_now();
                        txn.update(t, c, write_row, v.wrapping_add(1)).unwrap();
                        let rounds = if repair { REPAIR_ROUNDS } else { 0 };
                        let result = txn.commit_with_repair(rounds, |tx, conflicts| {
                            let mut v = v;
                            for conf in conflicts {
                                for &(ct, cc, row) in &conf.keys {
                                    if row == read_row {
                                        v = tx.get(ct, cc, row)?;
                                    }
                                }
                            }
                            tx.update(t, c, write_row, v.wrapping_add(1))
                        });
                        if result.is_ok() {
                            committed += 1;
                        }
                    }
                    committed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn bench_commit_pipeline(c: &mut Criterion) {
    let cdf = zipf_cdf();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for repair in [false, true] {
        let mode = if repair { "repair" } else { "plain" };
        let mut group = c.benchmark_group(format!("commit_pipeline/{mode}"));
        group.sample_size(10);
        for threads in [1usize, 2, 4] {
            let (db, t, col) = build();
            group.bench_function(BenchmarkId::new("threads", threads), |b| {
                b.iter(|| run(&db, t, col, &cdf, threads, repair))
            });
            // One measured pass outside criterion's loop for the JSON
            // counters: commits/sec and the pipeline outcome mix.
            let before = db.stats();
            let started = std::time::Instant::now();
            let committed = run(&db, t, col, &cdf, threads, repair);
            let secs = started.elapsed().as_secs_f64();
            let after = db.stats();
            append_bench_json_line(&format!(
                "{{\"bench\":\"commit_pipeline/{mode}/threads={threads}\",\
                 \"commits\":{},\"commits_per_sec\":{:.0},\
                 \"aborted_ww\":{},\"aborted_validation\":{},\
                 \"repaired_commits\":{},\"repair_rounds\":{},\
                 \"host_cpus\":{host_cpus}}}",
                committed,
                committed as f64 / secs,
                after.aborted_ww - before.aborted_ww,
                after.aborted_validation - before.aborted_validation,
                after.repaired_commits - before.repaired_commits,
                after.repair_rounds - before.repair_rounds,
            ));
        }
        group.finish();
    }
    // The obs registry is process-global, so one snapshot at the end
    // carries the stage latencies every run above fed. Absent histograms
    // (an `obs-off` build) are skipped rather than written as zeros.
    let m = obs::snapshot();
    for stage in [
        "commit_stage_latch_ns",
        "commit_stage_validate_ns",
        "commit_stage_wal_ns",
        "commit_stage_install_ns",
        "commit_stage_fsync_ns",
        "commit_total_ns",
    ] {
        if let Some(h) = m.histogram(stage) {
            append_bench_json_line(&format!(
                "{{\"bench\":\"commit_pipeline/stage/{stage}\",\
                 \"count\":{},\"p50_ns\":{:.0},\"p95_ns\":{:.0},\
                 \"p99_ns\":{:.0},\"host_cpus\":{host_cpus}}}",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            ));
        }
    }
}

criterion_group!(benches, bench_commit_pipeline);
criterion_main!(benches);
