//! Reproduce **Figure 7**: latency of the 7 OLAP transactions while OLTP
//! transactions pressure the remaining threads, under the three
//! configurations, normalized to heterogeneous processing (paper §5.3).

use anker_bench::args::{write_results_file, RunScale};
use anker_bench::experiments::fig7_run;
use anker_util::TableBuilder;

fn main() {
    let scale = RunScale::from_env();
    println!(
        "Figure 7 — OLAP latency under load (sf={}, {} threads)\n",
        scale.sf, scale.threads
    );
    let rows = fig7_run(&scale, 5);
    let mut table = TableBuilder::new("").header([
        "OLAP transaction",
        "Homo/Ser [ms]",
        "Homo/SI [ms]",
        "Hetero [ms]",
        "Homo/Ser (norm)",
        "Homo/SI (norm)",
        "Hetero blocks skipped",
        "Hetero rows filtered",
        "Hetero vector/dense blocks",
    ]);
    for r in &rows {
        let (ns, si, _) = r.normalized();
        table.row([
            r.query.to_string(),
            format!("{:.2}", r.homo_ser_ms),
            format!("{:.2}", r.homo_si_ms),
            format!("{:.2}", r.hetero_ms),
            format!("{ns:.2}x"),
            format!("{si:.2}x"),
            r.hetero_stats.blocks_skipped.to_string(),
            r.hetero_stats.rows_filtered.to_string(),
            format!(
                "{}/{}",
                r.hetero_stats.vector_blocks, r.hetero_stats.dense_blocks
            ),
        ]);
    }
    println!("{}", table.render());
    println!("(paper: homogeneous is 2x-4x slower than heterogeneous across all 7;");
    println!(" blocks skipped = whole 1024-row blocks pruned by zone maps before reading;");
    println!(" vector/dense = blocks predicate-evaluated by the kernels vs proved all-match");
    println!(" by zone maps and never index-materialized)");
    write_results_file("fig7.csv", &table.render_csv());
}
