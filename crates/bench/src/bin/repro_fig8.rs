//! Reproduce **Figure 8**: end-to-end transaction throughput for a pure
//! OLTP batch and a mixed batch with 10 OLAP transactions, under the three
//! configurations (paper §5.4).

use anker_bench::args::{write_results_file, RunScale};
use anker_bench::experiments::fig8_run;
use anker_util::TableBuilder;

fn main() {
    let scale = RunScale::from_env();
    println!(
        "Figure 8 — throughput, {} OLTP transactions (sf={}, {} threads)\n",
        scale.oltp_txns, scale.sf, scale.threads
    );
    let rows = fig8_run(&scale);
    let mut table = TableBuilder::new("").header([
        "Configuration",
        "OLTP only [tps]",
        "OLTP+10 OLAP [tps]",
        "OLAP work [ms]",
        "aborts (pure/mixed)",
    ]);
    for r in &rows {
        table.row([
            r.config.to_string(),
            format!("{:.0}", r.oltp_only_tps),
            format!("{:.0}", r.mixed_tps),
            format!("{:.0}", r.olap_wall_ms),
            format!("{}/{}", r.oltp_aborts, r.mixed_aborts),
        ]);
    }
    println!("{}", table.render());
    let hetero = &rows[2];
    let homo_best = rows[0].mixed_tps.max(rows[1].mixed_tps);
    println!(
        "mixed-workload speedup of heterogeneous over best homogeneous: {:.2}x (paper: ~2x)",
        hetero.mixed_tps / homo_best
    );
    println!(
        "OLAP work for the same 10 queries: homogeneous pays {:.1}x (ser) / {:.1}x (SI) the\n\
         heterogeneous cost — the separation mechanism, isolated from scheduler noise",
        rows[0].olap_wall_ms / hetero.olap_wall_ms,
        rows[1].olap_wall_ms / hetero.olap_wall_ms,
    );
    write_results_file("fig8.csv", &table.render_csv());
}
