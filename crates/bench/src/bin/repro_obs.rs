//! The observability reproduction driver: run the HTAP workload with the
//! `anker-obs` tracer live and print the per-component overhead breakdown
//! the paper's evaluation narrates informally — commit-pipeline stage
//! latencies (latch → validate → wal → install → fsync), the
//! snapshot-creation breakdown (rewiring time, pages rewired, areas
//! recycled), and scan morsel timing.
//!
//! Modes (combinable with the usual `RunScale` flags, e.g. `--smoke`):
//!
//! * *default* — generate TPC-H, run the HTAP driver (durability at
//!   `Fsync` so the WAL stages are live), print the report.
//! * `--prom` — additionally dump the full Prometheus text exposition.
//! * `--trace` — additionally write the Chrome-tracing span journal to
//!   `results/obs_trace.json` (load in `chrome://tracing` / Perfetto).
//! * `--audit` — regenerate `METRICS.md` from the metric manifest
//!   ([`anker_core::obs_register_all`]) and exit; CI diffs the result
//!   against the committed file so metric renames/removals are loud.
//! * `--overhead` — measure the tracer's commit-path cost: a
//!   single-threaded commit loop whose ns/commit lands in
//!   `BENCH_obs_overhead.json` under `obs_on_ns_per_commit` or (when
//!   built with `--features obs-off`) `obs_off_ns_per_commit`; when both
//!   keys are present the file also carries `overhead_pct`.

use anker_bench::args::{write_results_file, RunScale};
use anker_core::obs::{HistogramSnapshot, MetricValue, MetricsSnapshot, BUCKETS};
use anker_core::{AnkerDb, ColumnDef, DbConfig, DurabilityLevel, LogicalType, Schema, TxnKind};
use anker_tpch::driver::{run_htap, run_workload, HtapConfig, WorkloadConfig};
use anker_tpch::{gen, TpchConfig};
use anker_util::TableBuilder;

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    let mut audit = false;
    let mut overhead = false;
    let mut prom = false;
    let mut trace = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| match a.as_str() {
            "--audit" => {
                audit = true;
                false
            }
            "--overhead" => {
                overhead = true;
                false
            }
            "--prom" => {
                prom = true;
                false
            }
            "--trace" => {
                trace = true;
                false
            }
            _ => true,
        })
        .collect();
    let scale = RunScale::from_args(rest).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if audit {
        run_audit();
    } else if overhead {
        run_overhead();
    } else {
        run_report(&scale, prom, trace);
    }
}

// ---------------------------------------------------------------------
// Default mode: HTAP run + per-component breakdown
// ---------------------------------------------------------------------

fn run_report(scale: &RunScale, prom: bool, trace: bool) {
    let dir = std::env::temp_dir().join(format!("anker-repro-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DbConfig::heterogeneous_serializable()
        .with_snapshot_every(scale.snapshot_every)
        .with_gc_interval(None)
        .with_backend(scale.backend)
        .with_durability(DurabilityLevel::Fsync)
        .with_durability_dir(&dir);
    let t = gen::generate(
        config,
        &TpchConfig {
            scale_factor: scale.sf,
            seed: scale.seed,
        },
    );
    // Move the bulk loads out of the WAL so the commit stages below
    // measure OLTP appends, not load replay.
    t.db.checkpoint().expect("post-load checkpoint");
    println!(
        "anker-obs HTAP breakdown (sf={}, {} updaters, {} scan threads, host_cpus {})\n",
        scale.sf,
        scale.threads,
        scale.threads,
        host_cpus()
    );
    // A fixed OLTP batch first: the HTAP phase below stops its updaters
    // as soon as the analytical side finishes, which at small scales can
    // be before a single commit lands — the commit-stage histograms need
    // a deterministic floor of attempts (`--smoke` runs 2 000, enough
    // for ~60 sampled chains at 1-in-32).
    let wl = run_workload(
        &t,
        &WorkloadConfig {
            oltp_txns: scale.oltp_txns,
            olap_txns: 0,
            threads: scale.threads.max(1),
            seed: scale.seed,
            think_us: scale.think_us,
        },
    );
    let res = run_htap(
        &t,
        &HtapConfig {
            updaters: scale.threads.max(1),
            scan_threads: scale.threads.max(1),
            scans: 12,
            seed: scale.seed,
            think_us: scale.think_us,
        },
    );
    // One explicit GC pass so the gc/graveyard metrics are live in the
    // report even though heterogeneous mode runs without a GC thread.
    t.db.run_gc_once();
    let m = t.db.metrics();

    println!(
        "workload: {} OLTP committed ({} aborted, {:.0} tps), then HTAP: \
         {} committed ({} aborted), {} OLAP scans ({:.1} qps)\n",
        wl.committed,
        wl.aborted,
        wl.tps,
        res.oltp_committed,
        res.oltp_aborted,
        res.scans_done,
        res.olap_qps
    );

    let mut stages = TableBuilder::new("commit pipeline (sampled 1-in-32 attempts)").header([
        "stage",
        "count",
        "p50 [µs]",
        "p95 [µs]",
        "p99 [µs]",
        "total [ms]",
    ]);
    for stage in [
        "commit_stage_latch_ns",
        "commit_stage_validate_ns",
        "commit_stage_wal_ns",
        "commit_stage_install_ns",
        "commit_stage_fsync_ns",
        "commit_total_ns",
    ] {
        hist_row(&mut stages, &m, stage);
    }
    println!("{}", stages.render());
    println!(
        "commit invariant: attempts={} sampled={} latch_samples={} \
         (total_ns.count == latch_ns.count at quiescence; ~attempts/32)\n",
        m.counter("commit_attempts_total").unwrap_or(0),
        m.histogram("commit_total_ns").map_or(0, |h| h.count()),
        m.histogram("commit_stage_latch_ns")
            .map_or(0, |h| h.count()),
    );

    let mut snap = TableBuilder::new("snapshot creation").header([
        "stage",
        "count",
        "p50 [µs]",
        "p95 [µs]",
        "p99 [µs]",
        "total [ms]",
    ]);
    hist_row(&mut snap, &m, "snapshot_materialize_ns");
    hist_row(&mut snap, &m, "snapshot_rewire_ns");
    println!("{}", snap.render());
    for (label, name) in [
        ("pages rewired", "snapshot_pages_rewired_total"),
        ("areas recycled", "snapshot_areas_recycled_total"),
        ("spare areas parked", "snapshot_spare_parked_total"),
        (
            "graveyard areas unmapped",
            "snapshot_graveyard_unmapped_total",
        ),
        ("epochs triggered", "db_epochs_triggered_total"),
        ("columns materialized", "db_columns_materialized_total"),
        ("epoch pins", "snapshot_epoch_pins_total"),
    ] {
        println!("  {label:<26} {}", m.counter(name).unwrap_or(0));
    }
    println!();

    let mut scans = TableBuilder::new("scans").header([
        "stage",
        "count",
        "p50 [µs]",
        "p95 [µs]",
        "p99 [µs]",
        "total [ms]",
    ]);
    hist_row(&mut scans, &m, "scan_morsel_ns");
    println!("{}", scans.render());
    for (label, name) in [
        ("morsels", "scan_morsels_total"),
        ("tight rows", "scan_tight_rows_total"),
        ("blocks skipped (zone maps)", "scan_blocks_skipped_total"),
        ("rows filtered", "scan_rows_filtered_total"),
    ] {
        println!("  {label:<26} {}", m.counter(name).unwrap_or(0));
    }
    println!();

    if prom {
        println!("--- prometheus exposition ---");
        println!("{}", m.render_text());
    }
    if trace {
        write_results_file("obs_trace.json", &t.db.trace_dump());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Append one histogram row (count, p50/p95/p99 in µs, total ms).
fn hist_row(table: &mut TableBuilder, m: &MetricsSnapshot, name: &str) {
    let empty = HistogramSnapshot {
        buckets: [0; BUCKETS],
        sum: 0,
    };
    let h = m.histogram(name).unwrap_or(&empty);
    table.row([
        name.trim_end_matches("_ns").to_string(),
        h.count().to_string(),
        format!("{:.1}", h.quantile(0.50) / 1e3),
        format!("{:.1}", h.quantile(0.95) / 1e3),
        format!("{:.1}", h.quantile(0.99) / 1e3),
        format!("{:.2}", h.sum as f64 / 1e6),
    ]);
}

// ---------------------------------------------------------------------
// --audit: regenerate METRICS.md from the manifest
// ---------------------------------------------------------------------

fn run_audit() {
    // The manifest registers first, so its helps are canonical for the
    // generated file (the registry is first-wins).
    anker_core::obs_register_all();
    // A durability-enabled database absorbs the `db_*`, `kernel_*`, and
    // `wal_*` namespaces through `AnkerDb::metrics`; the values are
    // irrelevant (only names/kinds/helps are emitted).
    let dir = std::env::temp_dir().join(format!("anker-obs-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = AnkerDb::new(
        DbConfig::heterogeneous_serializable()
            .with_gc_interval(None)
            .with_durability(DurabilityLevel::Buffered)
            .with_durability_dir(&dir),
    );
    let mut m = db.metrics();
    // The `os_*` namespace only exists on the Linux OS backend; register
    // it by hand so METRICS.md is identical on every platform. Helps must
    // match the absorb site in `anker-core`'s `AnkerDb::metrics`.
    m.set_counter(
        "os_snapshots_total",
        "vm_snapshot rewires served by the OS backend",
        0,
    );
    m.set_counter(
        "os_recycled_total",
        "OS-backend snapshots that reused a caller-provided destination",
        0,
    );
    m.set_counter("os_cow_copies_total", "Copy-on-write block splits", 0);
    m.set_counter(
        "os_cow_reclaims_total",
        "Copy-on-write blocks folded back on unmap",
        0,
    );
    m.set_counter(
        "os_huge_page_advices_total",
        "MADV_HUGEPAGE hints issued",
        0,
    );
    m.set_counter(
        "os_sequential_advices_total",
        "MADV_SEQUENTIAL hints issued",
        0,
    );
    let mut md = String::from(
        "# Metrics\n\n\
         Every metric the engine can emit, by name. **Generated** by\n\
         `cargo run -p anker-bench --bin repro_obs -- --audit` from the metric\n\
         manifest (`anker_core::obs_register_all`) plus the namespaces\n\
         `AnkerDb::metrics` absorbs from the legacy stats structs — do not edit\n\
         by hand; CI fails when this file drifts from the registry.\n\n\
         Span-derived `*_ns` histograms use log\u{2082} buckets (see\n\
         `crates/obs`); `render_text` exposes them in Prometheus exposition\n\
         format, `render_json` as one JSON document.\n\n\
         | Metric | Kind | Help |\n|---|---|---|\n",
    );
    for metric in m.iter() {
        let kind = match &metric.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        md.push_str(&format!(
            "| `{}` | {kind} | {} |\n",
            metric.name, metric.help
        ));
    }
    let path = repo_root().join("METRICS.md");
    std::fs::write(&path, md).expect("writing METRICS.md");
    println!("wrote {} ({} metrics)", path.display(), m.len());
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// --overhead: tracer cost on the commit path
// ---------------------------------------------------------------------

const OVERHEAD_WARMUP: u32 = 5_000;
const OVERHEAD_COMMITS: u32 = 60_000;
const OVERHEAD_REPS: usize = 5;

fn run_overhead() {
    let rows: u32 = 1_024;
    let db = AnkerDb::new(DbConfig::homogeneous_serializable().with_gc_interval(None));
    let t = db.create_table(
        "t",
        Schema::new(vec![ColumnDef::new("v", LogicalType::Int)]),
        rows,
    );
    let c = db.schema(t).col("v");
    db.fill_column(t, c, 0..rows as u64).unwrap();
    let run = |n: u32, offset: u32| {
        for i in 0..n {
            let row = (offset + i) % rows;
            let mut txn = db.begin(TxnKind::Oltp);
            let v = txn.get(t, c, row).unwrap();
            txn.update(t, c, (row + 1) % rows, v.wrapping_add(1))
                .unwrap();
            txn.commit().unwrap();
        }
    };
    run(OVERHEAD_WARMUP, 0);
    // Min over several reps: scheduling noise on a shared host only ever
    // *adds* time, so the minimum is the least-contaminated estimate of
    // the pipeline's intrinsic cost (what the on/off comparison is after).
    let mut best = f64::INFINITY;
    for rep in 0..OVERHEAD_REPS {
        let start = std::time::Instant::now();
        run(OVERHEAD_COMMITS, rep as u32);
        let ns = start.elapsed().as_nanos() as f64 / OVERHEAD_COMMITS as f64;
        best = best.min(ns);
    }
    let ns_per_commit = best;
    let key = if cfg!(feature = "obs-off") {
        "obs_off_ns_per_commit"
    } else {
        "obs_on_ns_per_commit"
    };
    println!(
        "{key}: {ns_per_commit:.1} (min of {OVERHEAD_REPS}×{OVERHEAD_COMMITS} \
         single-threaded commits)"
    );
    if cfg!(debug_assertions) {
        println!("debug build — not recorded; measure with --release");
        return;
    }

    // Merge into BENCH_obs_overhead.json, preserving the other build's
    // key so two runs (default and `--features obs-off`) fill one record.
    let path = repo_root().join("BENCH_obs_overhead.json");
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let (on, off) = if cfg!(feature = "obs-off") {
        (
            extract_num(&existing, "obs_on_ns_per_commit"),
            Some(ns_per_commit),
        )
    } else {
        (
            Some(ns_per_commit),
            extract_num(&existing, "obs_off_ns_per_commit"),
        )
    };
    let mut record = format!("{{\"bench\":\"obs_overhead\",\"commits\":{OVERHEAD_COMMITS}");
    if let Some(v) = on {
        record.push_str(&format!(",\"obs_on_ns_per_commit\":{v:.1}"));
    }
    if let Some(v) = off {
        record.push_str(&format!(",\"obs_off_ns_per_commit\":{v:.1}"));
    }
    if let (Some(on), Some(off)) = (on, off) {
        let pct = (on - off) / off * 100.0;
        record.push_str(&format!(",\"overhead_pct\":{pct:.1}"));
        println!("tracer overhead: {pct:.1}% (on {on:.1} ns vs off {off:.1} ns per commit)");
    }
    record.push_str(&format!(",\"host_cpus\":{}}}", host_cpus()));
    std::fs::write(&path, record + "\n").expect("writing BENCH_obs_overhead.json");
    println!("(recorded in {})", path.display());
}

/// Extract a bare JSON number field from a flat object (no nesting in
/// `BENCH_obs_overhead.json`).
fn extract_num(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
