//! Reproduce **Figure 5**: snapshot creation time (5a) and 8-byte write
//! cost (5b) for rewiring vs `vm_snapshot`, as one page after another is
//! written and re-snapshotted (paper §4.1.4).

use anker_bench::args::{write_results_file, RunScale};
use anker_snapshot::{fig5_run, Fig5Config};
use anker_util::TableBuilder;

fn main() {
    let scale = RunScale::from_env();
    let cfg = Fig5Config {
        pages: scale.pages_per_col,
        record_every: (scale.pages_per_col / 32).max(1),
    };
    println!(
        "Figure 5 — rewiring vs vm_snapshot over {} pages (snapshot after every write)\n",
        cfg.pages
    );
    let points = fig5_run(&cfg).expect("figure 5 experiment failed");
    let mut table = TableBuilder::new("").header([
        "Pages written",
        "VMAs (rewiring)",
        "5a rewiring snap [ms]",
        "5a vm_snapshot snap [ms]",
        "5b rewiring write [us]",
        "5b vm_snapshot write [us]",
    ]);
    for p in &points {
        table.row([
            p.pages_written.to_string(),
            p.rewiring_vmas.to_string(),
            format!("{:.3}", p.rewiring_snapshot_ns as f64 / 1e6),
            format!("{:.3}", p.vmsnap_snapshot_ns as f64 / 1e6),
            format!("{:.2}", p.rewiring_write_ns as f64 / 1e3),
            format!("{:.2}", p.vmsnap_write_ns as f64 / 1e3),
        ]);
    }
    println!("{}", table.render());
    let last = points.last().expect("at least one point");
    println!(
        "final speedup of vm_snapshot over rewiring: {:.1}x (paper: 68x at 51,200 pages)",
        last.rewiring_snapshot_ns as f64 / last.vmsnap_snapshot_ns as f64
    );
    write_results_file("fig5.csv", &table.render_csv());
}
