//! Reproduce **Figure 10**: cost of snapshotting each column of LINEITEM,
//! ORDERS, and PART individually via `vm_snapshot`, stacked per table, vs
//! forking the whole database process (paper §5.6).

use anker_bench::args::{write_results_file, RunScale};
use anker_bench::experiments::fig10_run;
use anker_util::TableBuilder;

fn main() {
    let scale = RunScale::from_env();
    println!(
        "Figure 10 — column snapshot cost vs fork (sf={})\n",
        scale.sf
    );
    let r = fig10_run(&scale);
    let mut table = TableBuilder::new("").header(["Table / column", "vm_snapshot [ms]"]);
    for (tname, cols) in &r.tables {
        let total: f64 = cols.iter().map(|(_, ms)| ms).sum();
        table.row([
            format!("{tname} (all {} columns)", cols.len()),
            format!("{total:.3}"),
        ]);
        for (col, ms) in cols {
            table.row([format!("  {col}"), format!("{ms:.3}")]);
        }
    }
    table.row(["ALL three tables".to_string(), format!("{:.3}", r.all_ms)]);
    table.row(["fork()".to_string(), format!("{:.3}", r.fork_ms)]);
    println!("{}", table.render());
    println!(
        "fork / all-columns: {:.2}x; fork / single LINEITEM column: {:.1}x\n\
         (paper: even snapshotting all columns of all three tables beats fork)",
        r.fork_ms / r.all_ms,
        r.fork_ms
            / r.tables[0]
                .1
                .iter()
                .map(|(_, ms)| ms)
                .fold(f64::INFINITY, |a, &b| a.min(b)),
    );
    write_results_file("fig10.csv", &table.render_csv());
}
