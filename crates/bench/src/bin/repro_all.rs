//! Run every reproduction experiment (Table 1, Figures 5, 7, 8, 9, 10, 11)
//! at the configured scale and print all paper-style tables. This is the
//! binary behind `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p anker-bench --bin repro_all              # scaled defaults
//! cargo run --release -p anker-bench --bin repro_all -- --smoke   # seconds
//! cargo run --release -p anker-bench --bin repro_all -- --paper-scale
//! ```

use anker_bench::args::{write_results_file, RunScale};
use anker_bench::experiments::{fig10_run, fig11_run, fig7_run, fig8_run, fig9_run};
use anker_snapshot::{fig5_run, table1_run, Fig5Config, Table1Config};
use anker_util::TableBuilder;

fn banner(title: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

fn main() {
    let scale = RunScale::from_env();

    // ------------------------------------------------ Table 1
    banner("Table 1 — snapshot creation, state of the art (virtual ms)");
    let t1cfg = Table1Config {
        n_cols: scale.n_cols,
        pages_per_col: scale.pages_per_col,
        col_counts: vec![1, scale.n_cols / 2, scale.n_cols],
        modified_pages: vec![
            0,
            scale.pages_per_col / 100,
            scale.pages_per_col / 10,
            scale.pages_per_col,
        ],
    };
    let rows = table1_run(&t1cfg).expect("table1");
    let mut table = TableBuilder::new("").header(
        ["Method", "Modified/Col", "VMAs/Col"]
            .into_iter()
            .map(String::from)
            .chain(t1cfg.col_counts.iter().map(|c| format!("{c} Col [ms]")))
            .collect::<Vec<_>>(),
    );
    for r in &rows {
        let mut cells = vec![
            r.method.to_string(),
            r.modified_per_col
                .map(|m| m.to_string())
                .unwrap_or_else(|| "-".into()),
            r.vmas_per_col.to_string(),
        ];
        cells.extend(r.virtual_ms.iter().map(|ms| format!("{ms:.2}")));
        table.row(cells);
    }
    println!("{}", table.render());
    write_results_file("table1.csv", &table.render_csv());

    // ------------------------------------------------ Figure 5
    banner("Figure 5 — rewiring vs vm_snapshot (snapshot after every page write)");
    let f5cfg = Fig5Config {
        pages: scale.pages_per_col,
        record_every: (scale.pages_per_col / 16).max(1),
    };
    let points = fig5_run(&f5cfg).expect("fig5");
    let mut table = TableBuilder::new("").header([
        "Pages written",
        "VMAs",
        "5a rewiring [ms]",
        "5a vm_snapshot [ms]",
        "5b rewiring write [us]",
        "5b vm_snapshot write [us]",
    ]);
    for p in &points {
        table.row([
            p.pages_written.to_string(),
            p.rewiring_vmas.to_string(),
            format!("{:.3}", p.rewiring_snapshot_ns as f64 / 1e6),
            format!("{:.3}", p.vmsnap_snapshot_ns as f64 / 1e6),
            format!("{:.2}", p.rewiring_write_ns as f64 / 1e3),
            format!("{:.2}", p.vmsnap_write_ns as f64 / 1e3),
        ]);
    }
    println!("{}", table.render());
    let last = points.last().unwrap();
    println!(
        "final vm_snapshot speedup: {:.1}x (paper: 68x at 51,200 pages)\n",
        last.rewiring_snapshot_ns as f64 / last.vmsnap_snapshot_ns as f64
    );
    write_results_file("fig5.csv", &table.render_csv());

    // ------------------------------------------------ Figure 7
    banner("Figure 7 — OLAP latency under OLTP load (normalized to heterogeneous)");
    let rows = fig7_run(&scale, 5);
    let mut table = TableBuilder::new("").header([
        "OLAP transaction",
        "Homo/Ser [ms]",
        "Homo/SI [ms]",
        "Hetero [ms]",
        "Homo/Ser (norm)",
        "Homo/SI (norm)",
    ]);
    for r in &rows {
        let (ns, si, _) = r.normalized();
        table.row([
            r.query.to_string(),
            format!("{:.2}", r.homo_ser_ms),
            format!("{:.2}", r.homo_si_ms),
            format!("{:.2}", r.hetero_ms),
            format!("{ns:.2}x"),
            format!("{si:.2}x"),
        ]);
    }
    println!("{}", table.render());
    write_results_file("fig7.csv", &table.render_csv());

    // ------------------------------------------------ Figure 8
    banner("Figure 8 — transaction throughput (pure OLTP and mixed)");
    let rows = fig8_run(&scale);
    let mut table =
        TableBuilder::new("").header(["Configuration", "OLTP only [tps]", "OLTP+10 OLAP [tps]"]);
    for r in &rows {
        table.row([
            r.config.to_string(),
            format!("{:.0}", r.oltp_only_tps),
            format!("{:.0}", r.mixed_tps),
        ]);
    }
    println!("{}", table.render());
    println!(
        "mixed speedup of heterogeneous over best homogeneous: {:.2}x (paper ~2x)\n",
        rows[2].mixed_tps / rows[0].mixed_tps.max(rows[1].mixed_tps)
    );
    write_results_file("fig8.csv", &table.render_csv());

    // ------------------------------------------------ Figure 9
    banner("Figure 9 — full-scan time vs fraction of versioned rows");
    let fractions: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let rows = fig9_run(&scale, &fractions);
    let mut table = TableBuilder::new("").header([
        "Versioned rows",
        "LineItem [ms]",
        "Orders [ms]",
        "Part [ms]",
    ]);
    for &f in &fractions {
        let find = |name: &str| {
            rows.iter()
                .find(|r| r.table == name && (r.fraction - f).abs() < 1e-9)
                .map(|r| format!("{:.2}", r.scan_ms))
                .unwrap_or_default()
        };
        table.row([
            format!("{:.0}%", f * 100.0),
            find("LineItem"),
            find("Orders"),
            find("Part"),
        ]);
    }
    println!("{}", table.render());
    write_results_file("fig9.csv", &table.render_csv());

    // ------------------------------------------------ Figure 10
    banner("Figure 10 — column snapshot cost vs fork (virtual ms)");
    let r = fig10_run(&scale);
    let mut table = TableBuilder::new("").header(["Target", "vm_snapshot [ms]"]);
    for (tname, cols) in &r.tables {
        let total: f64 = cols.iter().map(|(_, ms)| ms).sum();
        table.row([
            format!("{tname} ({} columns)", cols.len()),
            format!("{total:.3}"),
        ]);
    }
    table.row(["All three tables".to_string(), format!("{:.3}", r.all_ms)]);
    table.row(["fork()".to_string(), format!("{:.3}", r.fork_ms)]);
    println!("{}", table.render());
    write_results_file("fig10.csv", &table.render_csv());

    // ------------------------------------------------ Figure 11
    banner("Figure 11 — scaling with threads (heterogeneous, serializable)");
    let counts = [1usize, 2, 4, 8];
    let rows = fig11_run(&scale, &counts);
    let base = (rows[0].oltp_only_tps, rows[0].mixed_tps);
    let mut table = TableBuilder::new("").header([
        "Threads",
        "OLTP only [tps]",
        "speedup",
        "Mixed [tps]",
        "speedup",
    ]);
    for r in &rows {
        table.row([
            r.threads.to_string(),
            format!("{:.0}", r.oltp_only_tps),
            format!("{:.2}x", r.oltp_only_tps / base.0),
            format!("{:.0}", r.mixed_tps),
            format!("{:.2}x", r.mixed_tps / base.1),
        ]);
    }
    println!("{}", table.render());
    write_results_file("fig11.csv", &table.render_csv());

    println!("{}", "=".repeat(78));
    println!("all experiments completed");
}
