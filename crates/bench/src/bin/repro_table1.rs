//! Reproduce **Table 1**: snapshot creation cost of the state-of-the-art
//! techniques (physical, fork-based, rewired) for 1/25/50 of 50 columns,
//! with 0 … many pages modified per column (paper §3.3.2).

use anker_bench::args::{write_results_file, RunScale};
use anker_snapshot::{table1_run, Table1Config};
use anker_util::TableBuilder;

fn main() {
    let scale = RunScale::from_env();
    let cfg = Table1Config {
        n_cols: scale.n_cols,
        pages_per_col: scale.pages_per_col,
        col_counts: vec![1, scale.n_cols / 2, scale.n_cols],
        modified_pages: vec![
            0,
            scale.pages_per_col / 100,
            scale.pages_per_col / 10,
            scale.pages_per_col,
        ],
    };
    println!(
        "Table 1 — snapshot creation (virtual time). {} columns x {} pages ({} per column)\n",
        cfg.n_cols,
        cfg.pages_per_col,
        anker_util::stats::fmt_bytes(cfg.pages_per_col * 4096),
    );
    let rows = table1_run(&cfg).expect("table 1 experiment failed");
    let headers: Vec<String> = std::iter::once("Method".to_string())
        .chain(std::iter::once("Pages Modified/Col".to_string()))
        .chain(std::iter::once("VMAs/Col".to_string()))
        .chain(cfg.col_counts.iter().map(|c| format!("{c} Col [ms]")))
        .collect();
    let mut table = TableBuilder::new("").header(headers);
    for r in &rows {
        let mut cells = vec![
            r.method.to_string(),
            r.modified_per_col
                .map(|m| m.to_string())
                .unwrap_or_else(|| "-".into()),
            r.vmas_per_col.to_string(),
        ];
        cells.extend(r.virtual_ms.iter().map(|ms| format!("{ms:.2}")));
        table.row(cells);
    }
    println!("{}", table.render());
    println!("(wall-clock structural times of the simulator, for reference)");
    let mut wall = TableBuilder::new("").header(
        std::iter::once("Method".to_string())
            .chain(cfg.col_counts.iter().map(|c| format!("{c} Col [ms]")))
            .collect::<Vec<_>>(),
    );
    for r in &rows {
        let mut cells = vec![match r.modified_per_col {
            Some(m) => format!("{} ({m} mod)", r.method),
            None => r.method.to_string(),
        }];
        cells.extend(r.wall_ms.iter().map(|ms| format!("{ms:.2}")));
        wall.row(cells);
    }
    println!("{}", wall.render());
    write_results_file("table1.csv", &table.render_csv());
}
