//! Durability driver: WAL-overhead measurement and the crash-consistency
//! harness.
//!
//! Three modes:
//!
//! * `--mode=bench` (default) — run the fig-style OLTP stream once per
//!   [`DurabilityLevel`] (`off` → no WAL, `buffered` → append only,
//!   `fsync` → group commit) and report throughput plus the
//!   commit-latency distribution and WAL counters. CSV to
//!   `results/durability.csv`, JSON lines via `ANKER_BENCH_JSON`.
//! * `--mode=run --dir=D` — build a durable TPC-H database in `D`
//!   (fsync level), checkpoint away the bulk loads, then run a mixed
//!   stream of fig-style OLTP transactions and **audit transactions**
//!   (each writes the same value to two columns of one row in a single
//!   commit) with periodic checkpoints. Touches
//!   `D/.workload-started` once the stream is live so a harness can
//!   `kill -9` it mid-workload.
//! * `--mode=verify --dir=D` — recover `D` read-only and verify the
//!   crash contract: recovery succeeds (torn tails tolerated), the audit
//!   columns agree on every row (commit atomicity across the crash), and
//!   a second recovery reproduces the identical Q6 revenue fold
//!   (determinism). Exits non-zero on any violation.

use anker_bench::args::{append_bench_json_line, write_results_file};
use anker_core::{
    AnkerDb, ColumnDef, DbConfig, DurabilityLevel, LogicalType, Schema, TxnKind, Value,
};
use anker_tpch::driver::{run_durability, DurabilityRunConfig};
use anker_tpch::gen::{self, TpchConfig};
use anker_tpch::oltp::{is_abort, run_oltp, OltpKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

struct Args {
    mode: String,
    dir: Option<PathBuf>,
    sf: f64,
    txns: u64,
    threads: usize,
    seed: u64,
    ckpt_every: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: "bench".into(),
        dir: None,
        sf: 0.01,
        txns: 20_000,
        threads: 2,
        seed: 23,
        ckpt_every: 5_000,
    };
    for arg in std::env::args().skip(1) {
        let Some((key, value)) = arg.split_once('=') else {
            eprintln!("unrecognised argument {arg:?} (expected --key=value)");
            std::process::exit(2);
        };
        match key {
            "--mode" => args.mode = value.to_string(),
            "--dir" => args.dir = Some(PathBuf::from(value)),
            "--sf" => args.sf = value.parse().expect("bad --sf"),
            "--txns" => args.txns = value.parse().expect("bad --txns"),
            "--threads" => args.threads = value.parse().expect("bad --threads"),
            "--seed" => args.seed = value.parse().expect("bad --seed"),
            "--ckpt-every" => args.ckpt_every = value.parse().expect("bad --ckpt-every"),
            other => {
                eprintln!(
                    "unknown flag {other:?}; flags: --mode=bench|run|verify --dir= --sf= \
                     --txns= --threads= --seed= --ckpt-every="
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn base_config() -> DbConfig {
    DbConfig::heterogeneous_serializable()
        .with_snapshot_every(2_000)
        .with_gc_interval(None)
}

const AUDIT_ROWS: u32 = 1024;

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn mode_bench(args: &Args) {
    let mut csv = String::from(
        "level,committed,aborted,tps,p50_us,p95_us,p99_us,max_us,wal_syncs,wal_commits,batching\n",
    );
    println!(
        "WAL overhead on the fig-style OLTP stream (sf {}, {} txns, {} threads, host_cpus {}):",
        args.sf,
        args.txns,
        args.threads,
        host_cpus()
    );
    for level in [
        DurabilityLevel::Off,
        DurabilityLevel::Buffered,
        DurabilityLevel::Fsync,
    ] {
        let dir = std::env::temp_dir().join(format!(
            "anker-durability-bench-{}-{}",
            std::process::id(),
            level.name()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = base_config().with_durability(level);
        if level != DurabilityLevel::Off {
            config = config.with_durability_dir(&dir);
        }
        let t = gen::generate(
            config,
            &TpchConfig {
                scale_factor: args.sf,
                seed: 42,
            },
        );
        if level != DurabilityLevel::Off {
            // Move the bulk loads out of the WAL so the run measures
            // commit appends, not load replay.
            t.db.checkpoint().expect("post-load checkpoint");
        }
        let res = run_durability(
            &t,
            &DurabilityRunConfig {
                oltp_txns: args.txns,
                threads: args.threads,
                seed: args.seed,
                think_us: 0.0,
            },
        );
        let (syncs, commits) = res
            .wal
            .map(|w| (w.syncs, w.commit_records))
            .unwrap_or((0, 0));
        let batching = if syncs > 0 {
            commits as f64 / syncs as f64
        } else {
            0.0
        };
        println!(
            "  {:>8}: {:>8.0} tx/s  commit p50 {:>7.1}µs  p95 {:>7.1}µs  p99 {:>7.1}µs  \
             max {:>8.1}µs  syncs {:>6}  batching {:.2}",
            level.name(),
            res.tps,
            res.p50_us,
            res.p95_us,
            res.p99_us,
            res.max_us,
            syncs,
            batching
        );
        csv.push_str(&format!(
            "{},{},{},{:.0},{:.2},{:.2},{:.2},{:.2},{},{},{:.3}\n",
            level.name(),
            res.committed,
            res.aborted,
            res.tps,
            res.p50_us,
            res.p95_us,
            res.p99_us,
            res.max_us,
            syncs,
            commits,
            batching
        ));
        append_bench_json_line(&format!(
            "{{\"bench\":\"repro_durability/oltp/level={}\",\"tps\":{:.1},\
             \"p50_us\":{:.2},\"p95_us\":{:.2},\"p99_us\":{:.2},\"max_us\":{:.2},\
             \"committed\":{},\"aborted\":{},\"wal_syncs\":{},\"wal_commits\":{},\
             \"batching\":{:.3},\"host_cpus\":{}}}",
            level.name(),
            res.tps,
            res.p50_us,
            res.p95_us,
            res.p99_us,
            res.max_us,
            res.committed,
            res.aborted,
            syncs,
            commits,
            batching,
            host_cpus()
        ));
        t.db.shutdown();
        drop(t);
        let _ = std::fs::remove_dir_all(&dir);
    }
    write_results_file("durability.csv", &csv);
}

fn mode_run(args: &Args) {
    let dir = args.dir.clone().expect("--mode=run requires --dir=");
    let _ = std::fs::remove_dir_all(&dir);
    let config = base_config()
        .with_durability(DurabilityLevel::Fsync)
        .with_durability_dir(&dir);
    println!(
        "loading TPC-H sf {} into {} (fsync WAL)...",
        args.sf,
        dir.display()
    );
    let t = gen::generate(
        config,
        &TpchConfig {
            scale_factor: args.sf,
            seed: 42,
        },
    );
    let ckpt_ts = t.db.checkpoint().expect("post-load checkpoint");
    // The audit table: every audit transaction writes the same value to
    // `a[r]` and `b[r]` in one commit, so any recovered state must show
    // a == b on every row — atomicity across kill -9.
    let audit = t.db.create_table(
        "audit",
        Schema::new(vec![
            ColumnDef::new("a", LogicalType::Int),
            ColumnDef::new("b", LogicalType::Int),
        ]),
        AUDIT_ROWS,
    );
    let (ca, cb) = (t.db.schema(audit).col("a"), t.db.schema(audit).col("b"));
    t.db.fill_column(audit, ca, (0..AUDIT_ROWS).map(|_| 0))
        .unwrap();
    t.db.fill_column(audit, cb, (0..AUDIT_ROWS).map(|_| 0))
        .unwrap();
    std::fs::write(dir.join(".workload-started"), b"ok\n").unwrap();
    println!("workload started (checkpoint ts {ckpt_ts}); kill -9 me any time");
    let mut rng = SmallRng::seed_from_u64(args.seed);
    let mut committed = 0u64;
    for i in 0..args.txns {
        if i % 4 == 0 {
            let row = (i / 4) as u32 % AUDIT_ROWS;
            let v = Value::Int(i as i64 + 1);
            let mut txn = t.db.begin(TxnKind::Oltp);
            txn.update_value(audit, ca, row, v).unwrap();
            txn.update_value(audit, cb, row, v).unwrap();
            txn.commit().unwrap();
            committed += 1;
        } else {
            match run_oltp(&t, OltpKind::sample(&mut rng), &mut rng) {
                Ok(_) => committed += 1,
                Err(e) if is_abort(&e) => {}
                Err(e) => panic!("oltp failed: {e}"),
            }
        }
        if args.ckpt_every > 0 && i > 0 && i % args.ckpt_every == 0 {
            t.db.checkpoint().expect("periodic checkpoint");
        }
        if i % 1_000 == 0 {
            println!("progress: {i} transactions ({committed} committed)");
        }
    }
    t.db.shutdown();
    println!("workload finished cleanly ({committed} committed)");
}

fn q6_fold(db: &AnkerDb) -> f64 {
    let t = db.table_id("lineitem").expect("lineitem recovered");
    let schema = db.schema(t);
    let (ship, disc, price, qty) = (
        schema.col("l_shipdate"),
        schema.col("l_discount"),
        schema.col("l_extendedprice"),
        schema.col("l_quantity"),
    );
    let lo = gen::days(1994, 1, 1) as i64;
    let hi = gen::days(1995, 1, 1) as i64;
    let reader = db.snapshot_reader().expect("reader on recovered db");
    let (revenue, _stats) = reader
        .scan(t)
        .range_i64(ship, lo, hi - 1)
        .range_f64(disc, 0.05 - 1e-9, 0.07 + 1e-9)
        .lt_f64(qty, 24.0)
        .project(&[price, disc])
        .fold(
            0.0f64,
            |acc, _, v| acc + v[0].as_double() * v[1].as_double(),
            |a, b| a + b,
        )
        .expect("q6 fold");
    revenue
}

fn verify_once(dir: &Path) -> (f64, u64) {
    let db = AnkerDb::open(
        dir,
        base_config().with_durability(DurabilityLevel::Off), // read-only recovery
    )
    .expect("recovery failed");
    let report = db.recovery_report().expect("durable boot yields a report");
    println!(
        "recovered: checkpoint ts {}, {} tables, {} WAL commits replayed, last ts {}{}",
        report.checkpoint_ts,
        report.tables,
        report.commits_replayed,
        report.last_commit_ts,
        if report.torn_tail {
            " (torn tail repaired)"
        } else {
            ""
        }
    );
    for name in ["lineitem", "orders", "part"] {
        let t = db
            .table_id(name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert!(db.rows(t) > 0, "{name} recovered empty");
    }
    // Commit atomicity across the crash: both audit columns agree
    // everywhere.
    let audit = db.table_id("audit").expect(
        "audit table missing — was the process killed before the workload started? \
         (wait for .workload-started)",
    );
    let (ca, cb) = (db.schema(audit).col("a"), db.schema(audit).col("b"));
    let mut txn = db.begin(TxnKind::Oltp);
    let mut nonzero = 0u64;
    for r in 0..AUDIT_ROWS {
        let a = txn.get(audit, ca, r).expect("audit read");
        let b = txn.get(audit, cb, r).expect("audit read");
        assert_eq!(
            a, b,
            "audit row {r}: a={a} b={b} — a commit was half-recovered"
        );
        if a != 0 {
            nonzero += 1;
        }
    }
    txn.abort();
    let revenue = q6_fold(&db);
    db.shutdown();
    (revenue, nonzero)
}

fn mode_verify(args: &Args) {
    let dir = args.dir.clone().expect("--mode=verify requires --dir=");
    let (revenue_a, nonzero) = verify_once(&dir);
    // Determinism: a second recovery reproduces the identical fold.
    let (revenue_b, _) = verify_once(&dir);
    assert_eq!(
        revenue_a.to_bits(),
        revenue_b.to_bits(),
        "recovery is not deterministic: {revenue_a} vs {revenue_b}"
    );
    println!(
        "RECOVERY OK: q6 revenue {revenue_a:.4} (bit-identical across two recoveries), \
         {nonzero} audit rows written, atomicity holds"
    );
}

fn main() {
    let args = parse_args();
    match args.mode.as_str() {
        "bench" => mode_bench(&args),
        "run" => mode_run(&args),
        "verify" => mode_verify(&args),
        other => {
            eprintln!("unknown --mode={other} (bench|run|verify)");
            std::process::exit(2);
        }
    }
}
