//! Reproduce **Figure 11**: throughput scaling of heterogeneous processing
//! (full serializability) with 1–8 threads, pure OLTP and mixed
//! (paper §5.7). Note the host machine may have fewer hardware threads
//! than 8 — the paper's point (sub-linear scaling limited by the
//! partially-sequential commit validation) shows regardless.

use anker_bench::args::{write_results_file, RunScale};
use anker_bench::experiments::fig11_run;
use anker_util::TableBuilder;

fn main() {
    let scale = RunScale::from_env();
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Figure 11 — scaling (sf={}, {} OLTP txns, host has {host} hardware threads)\n",
        scale.sf, scale.oltp_txns
    );
    let counts = [1usize, 2, 4, 8];
    let rows = fig11_run(&scale, &counts);
    let base_oltp = rows[0].oltp_only_tps;
    let base_mixed = rows[0].mixed_tps;
    let mut table = TableBuilder::new("").header([
        "Threads",
        "OLTP only [tps]",
        "speedup",
        "OLTP+10 OLAP [tps]",
        "speedup",
    ]);
    for r in &rows {
        table.row([
            r.threads.to_string(),
            format!("{:.0}", r.oltp_only_tps),
            format!("{:.2}x", r.oltp_only_tps / base_oltp),
            format!("{:.0}", r.mixed_tps),
            format!("{:.2}x", r.mixed_tps / base_mixed),
        ]);
    }
    println!("{}", table.render());
    println!("(paper: 2.1x at 8 threads for OLTP, 2.6x mixed — sub-linear due to the");
    println!(" mutex-protected commit validation; same mechanism applies here)");
    write_results_file("fig11.csv", &table.render_csv());
}
