//! Reproduce **Figure 9**: runtime of a full scan as the fraction of
//! versioned rows grows from 0 % to 100 % (paper §5.5). The scanning
//! transaction is older than the updates, so every versioned row forces a
//! chain traversal — the homogeneous-processing situation.

use anker_bench::args::{write_results_file, RunScale};
use anker_bench::experiments::fig9_run;
use anker_util::TableBuilder;

fn main() {
    let scale = RunScale::from_env();
    println!(
        "Figure 9 — scan time vs versioned fraction (sf={})\n",
        scale.sf
    );
    let fractions: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let rows = fig9_run(&scale, &fractions);
    let mut table = TableBuilder::new("").header([
        "Versioned rows",
        "LineItem [ms]",
        "Orders [ms]",
        "Part [ms]",
        "LineItem chain walks",
    ]);
    for &f in &fractions {
        let find = |name: &str| {
            rows.iter()
                .find(|r| r.table == name && (r.fraction - f).abs() < 1e-9)
                .map(|r| format!("{:.2}", r.scan_ms))
                .unwrap_or_default()
        };
        let walks = rows
            .iter()
            .find(|r| r.table == "LineItem" && (r.fraction - f).abs() < 1e-9)
            .map(|r| r.chain_walks.to_string())
            .unwrap_or_default();
        table.row([
            format!("{:.0}%", f * 100.0),
            find("LineItem"),
            find("Orders"),
            find("Part"),
            walks,
        ]);
    }
    println!("{}", table.render());
    let ratio = |name: &str| {
        let t0 = rows
            .iter()
            .find(|r| r.table == name && r.fraction == 0.0)
            .unwrap()
            .scan_ms;
        let t1 = rows
            .iter()
            .find(|r| r.table == name && r.fraction == 1.0)
            .unwrap()
            .scan_ms;
        t1 / t0
    };
    println!(
        "fully-versioned / unversioned scan: LineItem {:.1}x, Orders {:.1}x, Part {:.1}x (paper: ~5x)",
        ratio("LineItem"),
        ratio("Orders"),
        ratio("Part")
    );
    write_results_file("fig9.csv", &table.render_csv());
}
