//! Drivers for the paper's system-level experiments (Figures 7–11).
//! Table 1 and Figure 5 drivers live in [`anker_snapshot::experiments`].

use crate::args::RunScale;
use anker_core::{DbConfig, ScanStats, TxnKind};
use anker_tpch::driver::{run_olap_latency, run_workload, LatencyConfig, WorkloadConfig};
use anker_tpch::gen::{self, TpchConfig, TpchDb};
use anker_tpch::queries::{scan_table, OlapQuery};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn db_configs(scale: &RunScale) -> [(&'static str, DbConfig); 3] {
    [
        (
            "Homogeneous (Full Serializability)",
            DbConfig::homogeneous_serializable()
                .with_gc_interval(Some(scale.gc))
                .with_backend(scale.backend),
        ),
        (
            "Homogeneous (Snapshot Isolation)",
            DbConfig::homogeneous_snapshot_isolation()
                .with_gc_interval(Some(scale.gc))
                .with_backend(scale.backend),
        ),
        (
            "Heterogeneous (Full Serializability)",
            DbConfig::heterogeneous_serializable()
                .with_snapshot_every(scale.snapshot_every)
                .with_gc_interval(None)
                .with_backend(scale.backend),
        ),
    ]
}

fn build(scale: &RunScale, cfg: DbConfig) -> TpchDb {
    gen::generate(
        cfg,
        &TpchConfig {
            scale_factor: scale.sf,
            seed: scale.seed,
        },
    )
}

// ---------------------------------------------------------------------
// Figure 7 — OLAP latency under OLTP load
// ---------------------------------------------------------------------

/// One row of the Figure 7 experiment.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    pub query: &'static str,
    /// Mean latency (ms) under each configuration.
    pub homo_ser_ms: f64,
    pub homo_si_ms: f64,
    pub hetero_ms: f64,
    /// Scan counters of the heterogeneous runs (summed over repetitions):
    /// zone-map pruning (`blocks_skipped`) and pushed-down filtering
    /// (`rows_filtered`) are the observable mechanism behind the latency
    /// column.
    pub hetero_stats: ScanStats,
}

impl Fig7Row {
    /// Latencies normalized to the heterogeneous configuration, as the
    /// paper plots them.
    pub fn normalized(&self) -> (f64, f64, f64) {
        (
            self.homo_ser_ms / self.hetero_ms,
            self.homo_si_ms / self.hetero_ms,
            1.0,
        )
    }
}

/// Run the Figure 7 experiment: for each of the 7 OLAP transactions,
/// measure mean latency while the other threads fire OLTP transactions,
/// under all three configurations.
pub fn fig7_run(scale: &RunScale, repetitions: usize) -> Vec<Fig7Row> {
    let lat_cfg = LatencyConfig {
        threads: scale.threads.max(2),
        repetitions,
        seed: scale.seed,
    };
    // One database per configuration, reused across queries (like the
    // paper's single loaded system).
    let dbs: Vec<(&'static str, TpchDb)> = db_configs(scale)
        .into_iter()
        .map(|(name, cfg)| (name, build(scale, cfg)))
        .collect();
    OlapQuery::ALL
        .iter()
        .map(|&q| {
            let mut by_config = [0.0f64; 3];
            let mut hetero_stats = ScanStats::default();
            for (i, (_, t)) in dbs.iter().enumerate() {
                let r = run_olap_latency(t, q, &lat_cfg);
                by_config[i] = r.mean.as_secs_f64() * 1e3;
                if i == 2 {
                    hetero_stats = r.stats;
                }
            }
            Fig7Row {
                query: q.name(),
                homo_ser_ms: by_config[0],
                homo_si_ms: by_config[1],
                hetero_ms: by_config[2],
                hetero_stats,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 8 — transaction throughput
// ---------------------------------------------------------------------

/// One configuration's throughput results.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    pub config: &'static str,
    /// Pure OLTP batch (paper's violet bars), transactions/second.
    pub oltp_only_tps: f64,
    /// Mixed batch with 10 OLAP transactions (orange bars).
    pub mixed_tps: f64,
    pub oltp_aborts: u64,
    pub mixed_aborts: u64,
    /// Wall time the mixed batch spent inside its 10 OLAP transactions —
    /// the paper's mechanism isolated from scheduling noise.
    pub olap_wall_ms: f64,
}

/// Run the Figure 8 experiment: a pure OLTP batch and a mixed batch
/// (10 OLAP transactions interleaved) under each configuration. Each cell
/// is the median of three runs on freshly built databases — the host this
/// reproduction targets shows multi-x run-to-run timing variance, which a
/// single sample (as in the paper, on dedicated hardware) cannot absorb.
pub fn fig8_run(scale: &RunScale) -> Vec<Fig8Row> {
    let median_run = |cfg: &DbConfig, olap: u64| -> (f64, u64, f64) {
        let mut tps = Vec::with_capacity(3);
        let mut olap_ms = Vec::with_capacity(3);
        let mut aborts = 0;
        for rep in 0..3 {
            let r = run_workload(
                &build(scale, cfg.clone()),
                &WorkloadConfig {
                    oltp_txns: scale.oltp_txns,
                    olap_txns: olap,
                    threads: scale.threads,
                    seed: scale.seed + rep,
                    think_us: scale.think_us,
                },
            );
            tps.push(r.tps);
            olap_ms.push(r.olap_wall.as_secs_f64() * 1e3);
            aborts += r.aborted;
        }
        tps.sort_by(|a, b| a.partial_cmp(b).expect("tps is finite"));
        olap_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (tps[1], aborts / 3, olap_ms[1])
    };
    db_configs(scale)
        .into_iter()
        .map(|(name, cfg)| {
            let (oltp_only_tps, oltp_aborts, _) = median_run(&cfg, 0);
            let (mixed_tps, mixed_aborts, olap_wall_ms) = median_run(&cfg, 10);
            Fig8Row {
                config: name,
                oltp_only_tps,
                mixed_tps,
                oltp_aborts,
                mixed_aborts,
                olap_wall_ms,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 9 — scan time vs fraction of versioned rows
// ---------------------------------------------------------------------

/// One measured point of the Figure 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    pub table: &'static str,
    /// Fraction of versioned rows (0.0 ..= 1.0).
    pub fraction: f64,
    /// Wall time of one full scan (ms).
    pub scan_ms: f64,
    /// Chain walks performed by the scan (diagnostics).
    pub chain_walks: u64,
}

/// Run the Figure 9 experiment: version a uniformly distributed fraction
/// of each table's rows (all columns, like an update-heavy history), then
/// measure a full scan from a transaction old enough to need the chains —
/// the situation of OLAP under homogeneous processing (§5.5).
pub fn fig9_run(scale: &RunScale, fractions: &[f64]) -> Vec<Fig9Row> {
    let mut out = Vec::new();
    // The fraction sweep is the point of this experiment, not table size;
    // cap the scale factor so versioning every column of every selected row
    // (the setup cost) stays tractable.
    let mut scale = scale.clone();
    scale.sf = scale.sf.min(0.05);
    let scale = &scale;
    for &fraction in fractions {
        // Fresh database per fraction so chains do not accumulate across
        // points.
        let t = build(
            scale,
            DbConfig::homogeneous_serializable()
                .with_gc_interval(None)
                .with_backend(scale.backend),
        );
        // The old reader starts before the updates...
        let mut reader = t.db.begin(TxnKind::Olap);
        // ...then the chosen fraction of every table's rows is versioned.
        let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0xF19);
        for (table, scan_q) in [
            (t.lineitem, OlapQuery::ScanLineitem),
            (t.orders, OlapQuery::ScanOrders),
            (t.part, OlapQuery::ScanPart),
        ] {
            let rows = t.db.rows(table);
            let schema = t.db.schema(table);
            let cols: Vec<_> = schema.iter().map(|(id, _)| id).collect();
            let mut selected: Vec<u32> = (0..rows)
                .filter(|_| rng.random_range(0.0..1.0) < fraction)
                .collect();
            // Version in batches: one commit per 256 rows, touching every
            // column of each selected row.
            for chunk in selected.chunks_mut(256) {
                let mut txn = t.db.begin(TxnKind::Oltp);
                for &mut row in chunk.iter_mut() {
                    for &col in &cols {
                        let cur = txn.get(table, col, row).expect("read");
                        txn.update(table, col, row, cur.wrapping_add(1))
                            .expect("write");
                    }
                }
                txn.commit().expect("batch commit");
            }
            // Median of three scans: the host shows multi-x timing noise.
            let mut times = Vec::with_capacity(3);
            let stats_before = reader.scan_stats();
            for _ in 0..3 {
                let begin = Instant::now();
                let _checksum = scan_table(&t, &mut reader, scan_q).expect("scan");
                times.push(begin.elapsed().as_secs_f64() * 1e3);
            }
            // Chain walks of one scan (the three repetitions are
            // identical: the reader and the data do not move).
            let chain_walks = (reader.scan_stats().chain_walks - stats_before.chain_walks) / 3;
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let scan_ms = times[1];
            let name = match scan_q {
                OlapQuery::ScanLineitem => "LineItem",
                OlapQuery::ScanOrders => "Orders",
                _ => "Part",
            };
            out.push(Fig9Row {
                table: name,
                fraction,
                scan_ms,
                chain_walks,
            });
        }
        reader.commit().expect("reader commit");
    }
    out
}

// ---------------------------------------------------------------------
// Figure 10 — per-column snapshot cost vs fork
// ---------------------------------------------------------------------

/// Results of the Figure 10 experiment (virtual milliseconds).
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Per table: `(table name, per-column (name, cost ms))`.
    pub tables: Vec<(&'static str, Vec<(String, f64)>)>,
    /// Snapshotting all columns of all three tables.
    pub all_ms: f64,
    /// Forking the whole database process.
    pub fork_ms: f64,
}

/// Run the Figure 10 experiment on a loaded heterogeneous database.
///
/// Always runs on the **simulated** backend regardless of `ANKER_BACKEND`:
/// the experiment compares *virtual-clock* costs, and its fork probe
/// cannot (and should not) fork the host process on real memory.
pub fn fig10_run(scale: &RunScale) -> Fig10Result {
    let t = build(
        scale,
        DbConfig::heterogeneous_serializable()
            .with_snapshot_every(scale.snapshot_every)
            .with_gc_interval(None)
            .with_backend(anker_core::BackendKind::Sim),
    );
    let mut tables = Vec::new();
    let mut all_ms = 0.0;
    for (table, name) in [
        (t.lineitem, "LINEITEM"),
        (t.orders, "ORDERS"),
        (t.part, "PART"),
    ] {
        let probe = t.db.snapshot_cost_probe(table).expect("probe");
        let cols: Vec<(String, f64)> = probe
            .into_iter()
            .map(|(col, stats)| (col, stats.virtual_ns as f64 / 1e6))
            .collect();
        all_ms += cols.iter().map(|(_, ms)| ms).sum::<f64>();
        tables.push((name, cols));
    }
    let fork_ms = t.db.fork_cost_probe().expect("fork probe").virtual_ns as f64 / 1e6;
    Fig10Result {
        tables,
        all_ms,
        fork_ms,
    }
}

// ---------------------------------------------------------------------
// Figure 11 — scaling with threads
// ---------------------------------------------------------------------

/// One measured point of the scaling experiment.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    pub threads: usize,
    pub oltp_only_tps: f64,
    pub mixed_tps: f64,
}

/// Run the Figure 11 experiment: heterogeneous/serializable throughput for
/// each thread count, pure OLTP and mixed.
pub fn fig11_run(scale: &RunScale, thread_counts: &[usize]) -> Vec<Fig11Row> {
    thread_counts
        .iter()
        .map(|&threads| {
            let cfg = DbConfig::heterogeneous_serializable()
                .with_snapshot_every(scale.snapshot_every)
                .with_gc_interval(None)
                .with_backend(scale.backend);
            let pure = run_workload(
                &build(scale, cfg.clone()),
                &WorkloadConfig {
                    oltp_txns: scale.oltp_txns,
                    olap_txns: 0,
                    threads,
                    seed: scale.seed,
                    think_us: scale.think_us,
                },
            );
            let mixed = run_workload(
                &build(scale, cfg),
                &WorkloadConfig {
                    oltp_txns: scale.oltp_txns,
                    olap_txns: 10,
                    threads,
                    seed: scale.seed,
                    think_us: scale.think_us,
                },
            );
            Fig11Row {
                threads,
                oltp_only_tps: pure.tps,
                mixed_tps: mixed.tps,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> RunScale {
        RunScale::smoke()
    }

    #[test]
    fn fig7_smoke_shapes() {
        let rows = fig7_run(&smoke(), 2);
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.hetero_ms > 0.0);
            let (ns, si, h) = r.normalized();
            assert_eq!(h, 1.0);
            assert!(ns > 0.0 && si > 0.0);
        }
    }

    #[test]
    fn fig8_smoke() {
        let rows = fig8_run(&smoke());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.oltp_only_tps > 0.0);
            assert!(r.mixed_tps > 0.0);
        }
    }

    #[test]
    fn fig9_scan_grows_with_fraction() {
        let rows = fig9_run(&smoke(), &[0.0, 1.0]);
        assert_eq!(rows.len(), 6);
        // For each table, the fully versioned scan must be slower than the
        // unversioned one and must report the chain walks that explain it.
        for table in ["LineItem", "Orders", "Part"] {
            let t0 = rows
                .iter()
                .find(|r| r.table == table && r.fraction == 0.0)
                .unwrap();
            let t1 = rows
                .iter()
                .find(|r| r.table == table && r.fraction == 1.0)
                .unwrap();
            assert!(
                t1.scan_ms > t0.scan_ms,
                "{table}: {:.3} !> {:.3}",
                t1.scan_ms,
                t0.scan_ms
            );
            assert_eq!(t0.chain_walks, 0, "{table}: unversioned scan walked chains");
            assert!(
                t1.chain_walks > 0,
                "{table}: fully versioned scan reported no chain walks"
            );
        }
    }

    #[test]
    fn fig10_fork_dominates_columns() {
        let r = fig10_run(&smoke());
        assert_eq!(r.tables.len(), 3);
        let max_col = r
            .tables
            .iter()
            .flat_map(|(_, cols)| cols.iter().map(|(_, ms)| *ms))
            .fold(0.0f64, f64::max);
        assert!(
            r.fork_ms > max_col,
            "fork {} !> max col {}",
            r.fork_ms,
            max_col
        );
        assert!(r.fork_ms > r.all_ms * 0.5, "fork should rival all-columns");
    }

    #[test]
    fn fig11_smoke() {
        let rows = fig11_run(&smoke(), &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.oltp_only_tps > 0.0));
    }
}
