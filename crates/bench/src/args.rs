//! Scaled run parameters and a tiny `--flag=value` parser for the
//! reproduction binaries (no CLI dependency needed).

use anker_core::BackendKind;
use std::time::Duration;

/// Scale knobs of a reproduction run. Defaults are laptop-scale; pass
/// `--paper-scale` to a `repro_*` binary for the paper's original numbers
/// (slow!).
#[derive(Debug, Clone)]
pub struct RunScale {
    /// TPC-H scale factor (paper ≈ 0.25; default 0.05).
    pub sf: f64,
    /// OLTP transactions per throughput run (paper 500 000).
    pub oltp_txns: u64,
    /// Snapshot trigger interval in commits (paper 10 000).
    pub snapshot_every: u64,
    /// Worker threads (paper 8).
    pub threads: usize,
    /// Homogeneous GC interval (paper: 1 s; kept unscaled — the chain
    /// build-up between GC passes is precisely what the mixed-workload
    /// experiments measure).
    pub gc: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Micro-benchmark pages per column (paper 51 200 = 200 MB).
    pub pages_per_col: u64,
    /// Micro-benchmark column count (paper 50).
    pub n_cols: usize,
    /// Per-OLTP-transaction busy work in microseconds (see
    /// `anker_tpch::driver::WorkloadConfig::think_us`). The default of
    /// 12 µs calibrates the per-transaction execution cost to the paper's
    /// system (~50 k transactions per second per thread); this streamlined
    /// reproduction would otherwise spend nearly the whole transaction
    /// inside the serialized commit section, which no machine can scale.
    pub think_us: f64,
    /// Memory backend the databases run on (`--backend=sim|os`). Defaults
    /// to the simulated kernel, or to `ANKER_BACKEND` when set. The
    /// fork-comparison experiments (Figure 10) always run simulated.
    pub backend: BackendKind,
}

impl Default for RunScale {
    fn default() -> Self {
        RunScale {
            sf: 0.2,
            oltp_txns: 120_000,
            snapshot_every: 2_000,
            threads: 2,
            gc: Duration::from_secs(1),
            seed: 42,
            pages_per_col: 4_096,
            n_cols: 50,
            think_us: 12.0,
            backend: BackendKind::from_env().unwrap_or(BackendKind::Sim),
        }
    }
}

impl RunScale {
    /// The paper's original scale (hours of runtime on this simulator).
    pub fn paper() -> RunScale {
        RunScale {
            sf: 0.25,
            oltp_txns: 500_000,
            snapshot_every: 10_000,
            threads: 8,
            gc: Duration::from_secs(1),
            seed: 42,
            pages_per_col: 51_200,
            n_cols: 50,
            think_us: 0.0,
            backend: BackendKind::from_env().unwrap_or(BackendKind::Sim),
        }
    }

    /// A very small scale for smoke tests.
    pub fn smoke() -> RunScale {
        RunScale {
            sf: 0.004,
            oltp_txns: 2_000,
            snapshot_every: 200,
            threads: 2,
            gc: Duration::from_millis(100),
            seed: 42,
            pages_per_col: 256,
            n_cols: 8,
            think_us: 0.0,
            backend: BackendKind::from_env().unwrap_or(BackendKind::Sim),
        }
    }

    /// Parse command-line flags (`--sf=0.1 --oltp=50000 --threads=4
    /// --snapshot-every=1000 --pages-per-col=4096 --cols=50 --seed=1
    /// --backend=sim|os --paper-scale --smoke`), starting from the defaults.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Result<RunScale, String> {
        let mut scale = RunScale::default();
        for arg in args {
            if arg == "--paper-scale" {
                scale = RunScale::paper();
                continue;
            }
            if arg == "--smoke" {
                scale = RunScale::smoke();
                continue;
            }
            let Some((key, value)) = arg.split_once('=') else {
                return Err(format!(
                    "unrecognised argument {arg:?} (expected --key=value)"
                ));
            };
            let parse = |what: &str, v: &str| -> Result<f64, String> {
                v.parse::<f64>()
                    .map_err(|e| format!("bad {what} {v:?}: {e}"))
            };
            match key {
                "--sf" => scale.sf = parse("scale factor", value)?,
                "--oltp" => scale.oltp_txns = parse("oltp count", value)? as u64,
                "--snapshot-every" => scale.snapshot_every = parse("interval", value)? as u64,
                "--threads" => scale.threads = parse("threads", value)? as usize,
                "--gc-ms" => scale.gc = Duration::from_millis(parse("gc ms", value)? as u64),
                "--seed" => scale.seed = parse("seed", value)? as u64,
                "--pages-per-col" => scale.pages_per_col = parse("pages", value)? as u64,
                "--cols" => scale.n_cols = parse("columns", value)? as usize,
                "--think-us" => scale.think_us = parse("think time", value)?,
                "--backend" => {
                    scale.backend = match value {
                        "sim" => BackendKind::Sim,
                        "os" => BackendKind::Os,
                        other => return Err(format!("unknown backend {other:?} (sim|os)")),
                    }
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(scale)
    }

    /// Parse from the process arguments, exiting with a message on error.
    pub fn from_env() -> RunScale {
        match Self::from_args(std::env::args().skip(1)) {
            Ok(s) => s,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "flags: --sf= --oltp= --snapshot-every= --threads= --gc-ms= --seed= \
                     --pages-per-col= --cols= --think-us= --backend=sim|os --paper-scale --smoke"
                );
                std::process::exit(2);
            }
        }
    }
}

/// Append one pre-formatted JSON line to the `ANKER_BENCH_JSON` file, next
/// to the timing records the criterion shim writes (best effort; no-op when
/// the variable is unset). Benches use this to record non-timing counters —
/// e.g. the `blocks_skipped`/`rows_filtered` scan statistics — alongside
/// their wall-clock entries. A relative path resolves against the workspace
/// root, mirroring the shim's behaviour.
pub fn append_bench_json_line(line: &str) {
    let Ok(path) = std::env::var("ANKER_BENCH_JSON") else {
        return;
    };
    let p = std::path::PathBuf::from(&path);
    let p = if p.is_absolute() {
        p
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    };
    use std::io::Write as _;
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&p)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = written {
        eprintln!(
            "warning: could not append bench JSON to {}: {e}",
            p.display()
        );
    }
}

/// Write `contents` to `results/<name>` relative to the workspace root
/// (best effort; prints the path on success).
pub fn write_results_file(name: &str, contents: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(name);
        if std::fs::write(&path, contents).is_ok() {
            if let Ok(canon) = path.canonicalize() {
                println!("(csv written to {})", canon.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_flags() {
        let s = RunScale::from_args(Vec::new()).unwrap();
        assert_eq!(s.threads, 2);
        let s = RunScale::from_args(
            ["--sf=0.1", "--threads=4", "--oltp=1000"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(s.sf, 0.1);
        assert_eq!(s.threads, 4);
        assert_eq!(s.oltp_txns, 1000);
    }

    #[test]
    fn paper_scale_flag() {
        let s = RunScale::from_args(["--paper-scale".to_string()]).unwrap();
        assert_eq!(s.oltp_txns, 500_000);
        assert_eq!(s.pages_per_col, 51_200);
    }

    #[test]
    fn bad_flags_error() {
        assert!(RunScale::from_args(["--nope=1".to_string()]).is_err());
        assert!(RunScale::from_args(["--sf".to_string()]).is_err());
        assert!(RunScale::from_args(["--sf=abc".to_string()]).is_err());
    }
}
