//! # anker-bench — benchmark and reproduction harness
//!
//! One driver per table/figure of the paper's evaluation, shared between
//! the criterion benches (`benches/`) and the `repro_*` binaries
//! (`src/bin/`), which print paper-style tables and CSV files.
//!
//! | Paper artifact | Driver | Binary | Criterion bench |
//! |---|---|---|---|
//! | Table 1  | [`anker_snapshot::table1_run`] | `repro_table1` | `table1_snapshot_creation` |
//! | Figure 5 | [`anker_snapshot::fig5_run`] | `repro_fig5` | `fig5_vmsnapshot_vs_rewiring` |
//! | Figure 7 | [`experiments::fig7_run`] | `repro_fig7` | `fig7_olap_latency` |
//! | Figure 8 | [`experiments::fig8_run`] | `repro_fig8` | `fig8_throughput` |
//! | Figure 9 | [`experiments::fig9_run`] | `repro_fig9` | `fig9_versioned_scan` |
//! | Figure 10 | [`experiments::fig10_run`] | `repro_fig10` | `fig10_column_snapshot` |
//! | Figure 11 | [`experiments::fig11_run`] | `repro_fig11` | `fig11_scaling` |
//! | Ablations | — | — | `ablations` |
//!
//! ## Example
//!
//! ```
//! use anker_bench::RunScale;
//!
//! // Laptop-scale defaults; `--paper-scale` switches to the paper's sizes.
//! let scale = RunScale::smoke();
//! assert!(scale.sf <= RunScale::paper().sf);
//! let custom = RunScale::from_args(["--sf=0.1".to_string()]).unwrap();
//! assert_eq!(custom.sf, 0.1);
//! ```
// No unsafe in the library or the repro binaries; the one unsafe block of
// this package (a zero-copy slice in `benches/ablations.rs`) lives in a
// bench target outside this attribute's scope.
#![forbid(unsafe_code)]

pub mod args;
pub mod experiments;

pub use args::RunScale;
pub use experiments::{
    fig10_run, fig11_run, fig7_run, fig8_run, fig9_run, Fig10Result, Fig11Row, Fig7Row, Fig8Row,
    Fig9Row,
};
