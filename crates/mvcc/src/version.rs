//! Version chains, epoch stores, and the versioned-column read/install
//! protocols (paper §2.1), including the 1024-row block-skip scan
//! optimisation of §5.5.

use crate::timestamp::PENDING;
use anker_storage::column::ColumnArea;
use anker_storage::value::LogicalType;
use anker_util::FxHashMap;
use parking_lot::RwLock;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Rows per skip block: "for every 1024 rows, we keep the position of the
/// first and of the last versioned row" (§5.5).
pub const BLOCK_ROWS: u32 = 1024;

const CHAIN_SHARDS: usize = 64;
const NO_ROW: u32 = u32::MAX;

/// One version: the value that was current *before* the write at `ts`
/// replaced it... more precisely, `value` was written at `ts` and stayed
/// current until the write that pushed this node.
#[derive(Debug)]
struct VersionNode {
    value: u64,
    ts: u64,
    next: Option<Box<VersionNode>>,
}

/// A newest-to-oldest version chain for one row.
#[derive(Debug, Default)]
struct Chain {
    head: Option<Box<VersionNode>>,
}

impl Chain {
    fn push(&mut self, value: u64, ts: u64) {
        debug_assert!(self.head.as_ref().map(|h| h.ts <= ts).unwrap_or(true) || ts == 0);
        self.head = Some(Box::new(VersionNode {
            value,
            ts,
            next: self.head.take(),
        }));
    }

    /// The newest version visible at `start_ts`, walking newest-to-oldest.
    fn find(&self, start_ts: u64) -> Option<u64> {
        let mut node = self.head.as_deref();
        while let Some(n) = node {
            if n.ts <= start_ts {
                return Some(n.value);
            }
            node = n.next.as_deref();
        }
        None
    }

    fn len(&self) -> usize {
        let mut n = 0;
        let mut node = self.head.as_deref();
        while let Some(v) = node {
            n += 1;
            node = v.next.as_deref();
        }
        n
    }

    /// Drop every version strictly older than the newest one visible at
    /// `min_active`. Returns the number of dropped versions.
    fn prune(&mut self, min_active: u64) -> u64 {
        let mut node = self.head.as_deref_mut();
        while let Some(n) = node {
            if n.ts <= min_active {
                // `n` is the newest version any active reader can need;
                // everything older is garbage.
                let mut dropped = 0;
                let mut tail = n.next.take();
                while let Some(mut t) = tail {
                    dropped += 1;
                    tail = t.next.take();
                }
                return dropped;
            }
            node = n.next.as_deref_mut();
        }
        0
    }
}

/// Seqlock-protected skip-block metadata.
#[derive(Debug)]
struct Block {
    seq: AtomicU32,
    first: AtomicU32,
    last: AtomicU32,
}

impl Block {
    fn new() -> Block {
        Block {
            seq: AtomicU32::new(0),
            first: AtomicU32::new(NO_ROW),
            last: AtomicU32::new(0),
        }
    }

    /// Acquire the seqlock writer side (even → odd). The commit pipeline
    /// installs concurrently, so writers targeting the same block must
    /// serialize here instead of assuming a single serialized committer.
    fn write_lock(&self) {
        let mut spins = 0u32;
        // ORDERING: the CAS's Acquire pairs with `write_unlock`'s Release,
        // so a new writer sees the previous writer's block updates; the
        // Release fence orders the odd `seq` ahead of the metadata writes
        // that follow, so a seqlock reader that observes those writes also
        // observes `seq` as odd and retries.
        loop {
            let s = self.seq.load(Ordering::Relaxed);
            if s & 1 == 0
                && self
                    .seq
                    .compare_exchange_weak(
                        s,
                        s.wrapping_add(1),
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                // ORDERING: see the Release-fence note above the loop.
                fence(Ordering::Release);
                return;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Release the seqlock writer side (odd → even).
    fn write_unlock(&self) {
        // ORDERING: Release publishes this writer's metadata updates
        // before `seq` returns to even; pairs with the Acquire reads in
        // `block_read`/`block_verify`.
        self.seq.fetch_add(1, Ordering::Release);
    }
}

/// One epoch's version chains for one column: sharded row → chain maps plus
/// the skip-block index. In the heterogeneous design a fresh store is
/// installed on every snapshot and the frozen one is handed over (§2.2,
/// Figure 1 step 4).
pub struct ChainStore {
    shards: Box<[RwLock<FxHashMap<u32, Chain>>]>,
    blocks: Box<[Block]>,
    versions: AtomicU64,
}

impl std::fmt::Debug for ChainStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainStore")
            .field("versions", &self.version_count())
            .finish()
    }
}

impl ChainStore {
    /// Empty store for a column of `rows` rows.
    pub fn new(rows: u32) -> ChainStore {
        let n_blocks = (rows as usize).div_ceil(BLOCK_ROWS as usize).max(1);
        ChainStore {
            shards: (0..CHAIN_SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            blocks: (0..n_blocks)
                .map(|_| Block::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            versions: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, row: u32) -> &RwLock<FxHashMap<u32, Chain>> {
        &self.shards[row as usize & (CHAIN_SHARDS - 1)]
    }

    /// Total number of version entries in the store.
    pub fn version_count(&self) -> u64 {
        self.versions.load(Ordering::Relaxed)
    }

    /// True if the store holds no versions.
    pub fn is_empty(&self) -> bool {
        self.version_count() == 0
    }

    /// Prepend a version to `row`'s chain and widen the row's skip block.
    ///
    /// Safe under concurrent pushers: the seqlock writer side is acquired
    /// exclusively (even → odd CAS), so pipeline installs landing in the
    /// same block serialize briefly; per-row ordering is the caller's
    /// responsibility (the commit pipeline's per-row install latch).
    pub fn push(&self, row: u32, value: u64, ts: u64) {
        // Seqlock write: mark the block dirty before touching chain or
        // range so concurrent tight scans retry.
        let block = &self.blocks[(row / BLOCK_ROWS) as usize];
        block.write_lock(); // now odd
        {
            let mut shard = self.shard(row).write();
            shard.entry(row).or_default().push(value, ts);
        }
        block.first.fetch_min(row, Ordering::Relaxed);
        block.last.fetch_max(row, Ordering::Relaxed);
        self.versions.fetch_add(1, Ordering::Relaxed);
        block.write_unlock(); // even again
    }

    /// The newest version of `row` visible at `start_ts`, if this store has
    /// one.
    pub fn find_version(&self, row: u32, start_ts: u64) -> Option<u64> {
        self.shard(row)
            .read()
            .get(&row)
            .and_then(|c| c.find(start_ts))
    }

    /// Chain length of `row` (0 when unversioned).
    pub fn chain_len(&self, row: u32) -> usize {
        self.shard(row)
            .read()
            .get(&row)
            .map(Chain::len)
            .unwrap_or(0)
    }

    /// Seqlock read of block metadata: `(seq, first, last)`.
    #[inline]
    fn block_read(&self, block: usize) -> (u32, u32, u32) {
        let b = &self.blocks[block];
        // ORDERING: Acquire on `seq` pairs with `write_unlock`'s Release —
        // if we read an even seq, the metadata loads below are at least as
        // new as the write section that published it.
        let seq = b.seq.load(Ordering::Acquire);
        let first = b.first.load(Ordering::Relaxed);
        let last = b.last.load(Ordering::Relaxed);
        (seq, first, last)
    }

    /// Validate that block metadata (and thus the block's chains) did not
    /// change since [`ChainStore::block_read`] returned `seq`.
    #[inline]
    fn block_verify(&self, block: usize, seq: u32) -> bool {
        // ORDERING: the Acquire fence orders the caller's data reads
        // before the re-read of `seq` (classic seqlock validation); the
        // Acquire load pairs with the writer's Release increments.
        fence(Ordering::Acquire);
        seq.is_multiple_of(2) && self.blocks[block].seq.load(Ordering::Acquire) == seq
    }

    /// Homogeneous-mode garbage collection: drop every version that no
    /// transaction with `start_ts >= min_active` can see. `row_ts` is the
    /// column's in-place write-timestamp array. Returns the number of
    /// removed versions.
    ///
    /// Must run in a **commit-quiescent window** — the engine freezes
    /// `begin_commit` and drains in-flight commits first
    /// ([`crate::TsOracle::freeze_commits`]): the pass recomputes every
    /// block's skip range from the retained chains, and a concurrent
    /// install between the retain and the range rewrite would be erased
    /// from the skip index (scans would then miss its version).
    pub fn gc(&self, min_active: u64, row_ts: &[AtomicU64]) -> u64 {
        let mut removed = 0u64;
        let n_blocks = self.blocks.len();
        // Recompute block ranges as we go.
        let mut block_first = vec![NO_ROW; n_blocks];
        let mut block_last = vec![0u32; n_blocks];
        for shard in self.shards.iter() {
            let mut shard = shard.write();
            shard.retain(|&row, chain| {
                let in_place = row_ts[row as usize].load(Ordering::Relaxed) & !PENDING;
                if in_place <= min_active {
                    // The in-place version satisfies every active reader.
                    removed += chain.len() as u64;
                    return false;
                }
                removed += chain.prune(min_active);
                let b = (row / BLOCK_ROWS) as usize;
                block_first[b] = block_first[b].min(row);
                block_last[b] = block_last[b].max(row);
                true
            });
        }
        for (i, block) in self.blocks.iter().enumerate() {
            block.write_lock();
            block.first.store(block_first[i], Ordering::Relaxed);
            block.last.store(block_last[i], Ordering::Relaxed);
            block.write_unlock();
        }
        self.versions.fetch_sub(removed, Ordering::Relaxed);
        if removed > 0 {
            obs::counter!(
                "mvcc_versions_pruned_total",
                "Chain versions reclaimed by GC passes across all columns"
            )
            .add(removed);
        }
        removed
    }
}

/// Statistics of one scan (or the running total of a transaction's scans),
/// for tests, benchmarks, and the `repro_*` reproduction output.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanStats {
    /// Rows delivered through the tight (unchecked) path.
    pub tight_rows: u64,
    /// Rows that went through per-row visibility checks.
    pub checked_rows: u64,
    /// Rows whose value came from a chain walk.
    pub chain_walks: u64,
    /// Blocks whose tight read failed seqlock validation and was redone.
    pub blocks_retried: u64,
    /// Blocks skipped wholesale because a pushed-down predicate could not
    /// match their zone-map range (snapshot scans only).
    pub blocks_skipped: u64,
    /// Rows read and then eliminated by pushed-down predicates (excludes
    /// rows inside skipped blocks, which were never read).
    pub rows_filtered: u64,
    /// Morsels (1024-row-aligned work ranges) this scan processed. A
    /// sequential scan counts as one morsel.
    pub morsels: u64,
    /// Dispatch width of the scan: the number of worker seats the morsels
    /// were offered to (the requested `parallel(n)`, clamped to the morsel
    /// count; 1 = sequential). On an oversubscribed host fewer threads may
    /// end up doing all the pulling — `morsels` counts actual work.
    pub threads: u64,
    /// Blocks whose filters ran through the selection-vector kernels
    /// (vectorized path; excludes dense and skipped blocks).
    pub vector_blocks: u64,
    /// Blocks the zone maps proved *all-match* for every filter: no
    /// selection vector was materialised and — on the fused count path —
    /// no column data was read at all.
    pub dense_blocks: u64,
    /// Times the adaptive conjunct ordering changed the filter evaluation
    /// order at a block boundary.
    pub sel_reorders: u64,
    /// Projection-column blocks gathered into a buffer (the sim backend's
    /// staging path; the count terminals must keep this at zero).
    pub proj_blocks: u64,
    /// Observed per-filter selectivity of the first
    /// [`TRACKED_FILTERS`] conjuncts, in the order the filters were
    /// declared on the builder (not evaluation order). Zone-map outcomes
    /// count: a filter skipped in an all-match block records `rows_in ==
    /// rows_out` for that block, and pruned blocks record nothing.
    pub filter_sel: [FilterSel; TRACKED_FILTERS],
}

/// Per-filter conjuncts tracked in [`ScanStats::filter_sel`]; filters past
/// this index still run, they just go untracked (kept inline and bounded
/// so `ScanStats` stays `Copy`).
pub const TRACKED_FILTERS: usize = 8;

/// Observed selectivity of one pushed-down filter: rows offered to it and
/// rows that survived it. `rows_out / rows_in` is its pass rate.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FilterSel {
    /// Rows the filter was offered (selection-vector length before it).
    pub rows_in: u64,
    /// Rows that passed (selection-vector length after it).
    pub rows_out: u64,
}

impl ScanStats {
    /// Accumulate another scan's counters into this one. All counters sum,
    /// except `threads`, which keeps the widest fan-out observed (summing
    /// per-morsel contributions would count the same worker repeatedly).
    pub fn merge(&mut self, other: &ScanStats) {
        self.tight_rows += other.tight_rows;
        self.checked_rows += other.checked_rows;
        self.chain_walks += other.chain_walks;
        self.blocks_retried += other.blocks_retried;
        self.blocks_skipped += other.blocks_skipped;
        self.rows_filtered += other.rows_filtered;
        self.morsels += other.morsels;
        self.threads = self.threads.max(other.threads);
        self.vector_blocks += other.vector_blocks;
        self.dense_blocks += other.dense_blocks;
        self.sel_reorders += other.sel_reorders;
        self.proj_blocks += other.proj_blocks;
        for (a, b) in self.filter_sel.iter_mut().zip(&other.filter_sel) {
            a.rows_in += b.rows_in;
            a.rows_out += b.rows_out;
        }
    }
}

/// MVCC state of one column: per-row write timestamps, the current chain
/// store, and frozen stores handed over to past snapshots.
pub struct VersionedColumn {
    ty: LogicalType,
    rows: u32,
    row_ts: Box<[AtomicU64]>,
    current: RwLock<Arc<ChainStore>>,
    older: RwLock<Vec<(u64, Arc<ChainStore>)>>,
    last_freeze_ts: AtomicU64,
}

impl std::fmt::Debug for VersionedColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedColumn")
            .field("rows", &self.rows)
            .field("ty", &self.ty)
            .field("versions", &self.current.read().version_count())
            .field("frozen_epochs", &self.older.read().len())
            .finish()
    }
}

impl VersionedColumn {
    /// Fresh, unversioned column state: all rows carry the load timestamp 0.
    pub fn new(rows: u32, ty: LogicalType) -> VersionedColumn {
        VersionedColumn {
            ty,
            rows,
            row_ts: (0..rows)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            current: RwLock::new(Arc::new(ChainStore::new(rows))),
            older: RwLock::new(Vec::new()),
            last_freeze_ts: AtomicU64::new(0),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Logical type of the column.
    pub fn ty(&self) -> LogicalType {
        self.ty
    }

    /// The raw write-timestamp word of `row` (may carry [`PENDING`]).
    #[inline]
    pub fn last_write_ts(&self, row: u32) -> u64 {
        // ORDERING: Acquire pairs with the Release stores in
        // `install_locked`/`unlock_row`, so a caller that sees a commit's
        // timestamp also sees the chain push that preceded it.
        self.row_ts[row as usize].load(Ordering::Acquire)
    }

    /// The current (newest-epoch) chain store.
    pub fn current_store(&self) -> Arc<ChainStore> {
        Arc::clone(&self.current.read())
    }

    /// Read `row` as of `start_ts`: the in-place value when visible,
    /// otherwise the newest chain version visible at `start_ts`.
    ///
    /// **Never waits on the install latch.** A committer holds a row's
    /// latch across validation and the WAL append — an unbounded window
    /// (a parked sched gate, a slow disk) — so a reader that spun on
    /// [`PENDING`] would stall for the whole pipeline and, under a
    /// deterministic schedule, deadlock against the latch holder. Instead
    /// the latch word is read *through*:
    ///
    /// * While the commit is pre-install, the word is
    ///   `old_ts | PENDING` and the in-place value is still the old
    ///   version — exactly the one a reader with `start_ts >= old_ts`
    ///   must see. It is stable as long as the word does not change:
    ///   [`VersionedColumn::install_locked`] advances the word to
    ///   `commit_ts | PENDING` *before* touching the value.
    /// * Once the word carries `commit_ts` (mid-install or released),
    ///   `commit_ts > start_ts` for every reader — an incomplete commit's
    ///   timestamp is above the stable-ts watermark that bounds all
    ///   reader snapshots — and the replaced value is already in the
    ///   chain (pushed before the word advanced), so the chain walk
    ///   serves the read without touching the in-place slot.
    pub fn read(&self, area: &ColumnArea, row: u32, start_ts: u64) -> anker_vmem::Result<u64> {
        // ORDERING: both Acquire loads pair with `install_locked`'s
        // Release stores — t1 orders the value load after the word it
        // observed, and t2 == t1 proves no install moved the word (and
        // hence nobody overwrote the value) across our read.
        loop {
            let t1 = self.row_ts[row as usize].load(Ordering::Acquire);
            if t1 & !PENDING > start_ts {
                return Ok(self.find_version(row, start_ts));
            }
            let v = area.get(row)?;
            // Re-validate: a concurrent install may have overwritten the
            // value after we loaded the timestamp (any overwrite first
            // moves the word, latched or not).
            let t2 = self.row_ts[row as usize].load(Ordering::Acquire);
            if t2 == t1 {
                return Ok(v);
            }
        }
    }

    /// Read the newest installed value of `row` (never waits on the
    /// install latch; a pre-install latched row reads as its old value,
    /// see [`VersionedColumn::read`]).
    pub fn read_latest(&self, area: &ColumnArea, row: u32) -> anker_vmem::Result<u64> {
        // ORDERING: same timestamp-bracket protocol as `read` — Acquire
        // pairs with the installer's Release stores; t2 == t1 validates
        // the in-place value loaded in between.
        loop {
            let t1 = self.row_ts[row as usize].load(Ordering::Acquire);
            let v = area.get(row)?;
            let t2 = self.row_ts[row as usize].load(Ordering::Acquire);
            if t2 == t1 {
                return Ok(v);
            }
        }
    }

    fn find_version(&self, row: u32, start_ts: u64) -> u64 {
        if let Some(v) = self.current.read().find_version(row, start_ts) {
            return v;
        }
        let older = self.older.read();
        for (_, store) in older.iter().rev() {
            if let Some(v) = store.find_version(row, start_ts) {
                return v;
            }
        }
        panic!(
            "no version of row {row} visible at ts {start_ts}: \
             retention (GC / snapshot drop) violated its contract"
        );
    }

    /// Acquire `row`'s **install latch**: atomically set [`PENDING`] on
    /// its write-timestamp word (spinning out a concurrent holder) and
    /// read the current in-place value. Returns
    /// `(old_ts, old_word)` — the pre-latch timestamp and value.
    ///
    /// This is stage 1 of the concurrent commit pipeline: a committer
    /// latches **all** its write rows in ascending `(col, row)` order
    /// before taking any validation-shard lock, which (with the sorted
    /// order) makes the two-phase acquisition deadlock-free. The caller
    /// decides write-write conflicts from `old_ts` and must end the latch
    /// with either [`VersionedColumn::install_locked`] (commit) or
    /// [`VersionedColumn::unlock_row`] (abort).
    pub fn lock_row(&self, area: &ColumnArea, row: u32) -> anker_vmem::Result<(u64, u64)> {
        let slot = &self.row_ts[row as usize];
        let mut spins = 0u32;
        // ORDERING: the Acquire load + AcqRel CAS pair with the Release
        // stores that end a latch hold (`install_locked`, `unlock_row`),
        // so the new latch holder sees the previous holder's install; the
        // Release half publishes nothing yet but keeps the latch word a
        // full synchronization point for the error-path restore below.
        let t_old = loop {
            let t = slot.load(Ordering::Acquire);
            if t & PENDING == 0
                && slot
                    .compare_exchange_weak(t, t | PENDING, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                break t;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        };
        // The in-place value is stable while we hold the latch: only
        // installers mutate it, and they need the latch first.
        match area.get(row) {
            Ok(old) => Ok((t_old, old)),
            Err(e) => {
                // ORDERING: Release so the latch hand-off synchronizes
                // with the next `lock_row`'s Acquire.
                slot.store(t_old, Ordering::Release);
                Err(e)
            }
        }
    }

    /// Release `row`'s install latch without installing anything (abort
    /// path): restore the pre-latch timestamp returned by
    /// [`VersionedColumn::lock_row`].
    pub fn unlock_row(&self, row: u32, old_ts: u64) {
        debug_assert_eq!(old_ts & PENDING, 0);
        let slot = &self.row_ts[row as usize];
        debug_assert_ne!(slot.load(Ordering::Relaxed) & PENDING, 0, "row not latched");
        // ORDERING: Release pairs with the Acquire in `lock_row` (and the
        // readers' timestamp brackets): everything this aborter did under
        // the latch happens-before the next holder's critical section.
        slot.store(old_ts, Ordering::Release);
    }

    /// Install one committed write on a row latched by
    /// [`VersionedColumn::lock_row`]: move the old value into the version
    /// chain, store the new value in place, and release the latch at
    /// `commit_ts`. `area` is re-resolved by the caller at install time
    /// (a heterogeneous snapshot may have swapped the column area since
    /// the latch was taken; contents are identical, so `old_word` stays
    /// valid).
    ///
    /// On error the row is left latched — the caller must treat a failed
    /// install after the commit is published as fatal.
    pub fn install_locked(
        &self,
        area: &ColumnArea,
        row: u32,
        old_ts: u64,
        old_word: u64,
        new_word: u64,
        commit_ts: u64,
    ) -> anker_vmem::Result<()> {
        debug_assert!(old_ts < commit_ts, "non-monotonic install");
        // ORDERING: order matters for latch-ignoring readers (see
        // [`VersionedColumn::read`]): (1) the replaced value enters the
        // chain, (2) the word advances to `commit_ts | PENDING` so no
        // reader trusts the in-place slot any more, (3) only then is the
        // value overwritten, (4) the latch releases at `commit_ts`. Both
        // stores are Release so a reader's Acquire load of the word also
        // sees the chain push (step 1) that preceded it.
        self.current.read().push(row, old_word, old_ts);
        self.row_ts[row as usize].store(commit_ts | PENDING, Ordering::Release);
        area.set(row, new_word)?;
        self.row_ts[row as usize].store(commit_ts, Ordering::Release);
        Ok(())
    }

    /// Install one committed write: move the old value into the version
    /// chain and store the new value in place, with the PENDING protocol
    /// making the switch atomic for readers. Returns the replaced value
    /// (commit records need it for predicate validation). Convenience
    /// composition of [`VersionedColumn::lock_row`] +
    /// [`VersionedColumn::install_locked`] for single-site callers; the
    /// engine's pipeline uses the split form.
    pub fn install(
        &self,
        area: &ColumnArea,
        row: u32,
        new_word: u64,
        commit_ts: u64,
    ) -> anker_vmem::Result<u64> {
        let (old_ts, old_word) = self.lock_row(area, row)?;
        match self.install_locked(area, row, old_ts, old_word, new_word, commit_ts) {
            Ok(()) => Ok(old_word),
            Err(e) => {
                // Unlike the pipeline's split form, nothing is published
                // yet when a single-site install fails, and the only
                // fallible step precedes the in-place overwrite — so this
                // is an abort, not a fatal state: restore the pre-latch
                // timestamp instead of leaking the latch (a leaked latch
                // spins every later writer of the row forever). The chain
                // entry already pushed is a harmless duplicate of history:
                // `old_word` was the value up to `old_ts` either way.
                self.unlock_row(row, old_ts);
                Err(e)
            }
        }
    }

    /// Freeze the current chain store for a snapshot at `freeze_ts` and
    /// install a fresh, empty one (Figure 1 steps 4/7: "the current version
    /// chains are handed over"). The frozen store stays reachable for
    /// readers older than `freeze_ts` until
    /// [`VersionedColumn::release_frozen`] retires it.
    ///
    /// Must be called inside the serialized commit section.
    pub fn freeze_epoch(&self, freeze_ts: u64) -> Arc<ChainStore> {
        let fresh = Arc::new(ChainStore::new(self.rows));
        let frozen = {
            let mut cur = self.current.write();
            std::mem::replace(&mut *cur, fresh)
        };
        self.older.write().push((freeze_ts, Arc::clone(&frozen)));
        // ORDERING: Release pairs with the Acquire in `scan_block_into` —
        // a scanner that sees the new freeze timestamp also sees the
        // frozen store already pushed onto `older`.
        self.last_freeze_ts.store(freeze_ts, Ordering::Release);
        frozen
    }

    /// Drop frozen stores that no active transaction can need: a store
    /// frozen at `T` serves only readers with `start_ts < T`.
    pub fn release_frozen(&self, min_active_start: u64) {
        self.older.write().retain(|(t, _)| *t > min_active_start);
    }

    /// Number of frozen epochs still retained.
    pub fn frozen_epochs(&self) -> usize {
        self.older.read().len()
    }

    /// Version entries held across the current store **and** every frozen
    /// epoch store still retained for old readers.
    pub fn total_version_count(&self) -> u64 {
        let current = self.current.read().version_count();
        let frozen: u64 = self
            .older
            .read()
            .iter()
            .map(|(_, store)| store.version_count())
            .sum();
        current + frozen
    }

    /// Homogeneous-mode GC of the current store (see [`ChainStore::gc`]
    /// for the commit-quiescence requirement).
    pub fn gc(&self, min_active: u64) -> u64 {
        let cur = self.current_store();
        cur.gc(min_active, &self.row_ts)
    }

    /// Full-column scan delivering the version of every row visible at
    /// `start_ts`, in row order, using the block-skip optimisation:
    /// unversioned 1024-row blocks are read in a tight loop (seqlock
    /// validated); blocks with versioned rows fall back to per-row checks
    /// inside the `[first, last]` range only.
    pub fn scan_visible(
        &self,
        area: &ColumnArea,
        start_ts: u64,
        mut f: impl FnMut(u32, u64),
        stats: &mut ScanStats,
    ) -> anker_vmem::Result<()> {
        let mut buf = vec![0u64; BLOCK_ROWS as usize];
        let mut block_start = 0u32;
        while block_start < self.rows {
            let n = BLOCK_ROWS.min(self.rows - block_start);
            self.gather_visible_block(area, start_ts, block_start, n, &mut buf, stats)?;
            for i in 0..n {
                f(block_start + i, buf[i as usize]);
            }
            block_start += n;
        }
        Ok(())
    }

    /// Ablation variant of [`VersionedColumn::scan_visible`] with the
    /// block-skip optimisation disabled: every row takes the per-row
    /// visibility check, as in an implementation without §5.5's
    /// first/last-versioned-row positions.
    pub fn scan_visible_unoptimized(
        &self,
        area: &ColumnArea,
        start_ts: u64,
        mut f: impl FnMut(u32, u64),
        stats: &mut ScanStats,
    ) -> anker_vmem::Result<()> {
        for row in 0..self.rows {
            f(row, self.read(area, row, start_ts)?);
            if self.row_ts[row as usize].load(Ordering::Relaxed) & !PENDING > start_ts {
                stats.chain_walks += 1;
            }
        }
        stats.checked_rows += self.rows as u64;
        Ok(())
    }

    /// Gather the visible values of rows `[block_start, block_start + n)`
    /// (one skip block or a prefix of it) into `buf[..n]`, applying the
    /// block-skip optimisation. `block_start` must be block aligned.
    ///
    /// This is the building block of multi-column scans: the executor
    /// gathers one block per column, then combines rows.
    pub fn gather_visible_block(
        &self,
        area: &ColumnArea,
        start_ts: u64,
        block_start: u32,
        n: u32,
        buf: &mut [u64],
        stats: &mut ScanStats,
    ) -> anker_vmem::Result<()> {
        debug_assert!(block_start.is_multiple_of(BLOCK_ROWS));
        debug_assert!(n <= BLOCK_ROWS && block_start + n <= self.rows);
        let store = self.current_store();
        // The skip index only knows versions of the current epoch; readers
        // older than the last freeze must check every row (cannot happen in
        // the paper's configurations — OLAP runs on snapshots — but stay
        // correct for any caller).
        // ORDERING: Acquire pairs with `freeze_epoch`'s Release store, so
        // seeing the freeze timestamp implies the frozen store is visible.
        let force_per_row = start_ts < self.last_freeze_ts.load(Ordering::Acquire);
        let block_idx = (block_start / BLOCK_ROWS) as usize;
        let (seq, first, last) = store.block_read(block_idx);
        let tight_ok = !force_per_row && seq % 2 == 0;
        if tight_ok && first == NO_ROW {
            // Fully unversioned block: copy, validate, deliver.
            area.read_block_into(block_start, n, buf)?;
            if store.block_verify(block_idx, seq) {
                stats.tight_rows += n as u64;
                return Ok(());
            }
            stats.blocks_retried += 1;
        } else if tight_ok {
            // Mixed block: tight head and tail, per-row middle.
            area.read_block_into(block_start, n, buf)?;
            let lo = first.max(block_start) - block_start;
            let hi = last.min(block_start + n - 1) - block_start;
            for i in lo..=hi {
                let row = block_start + i;
                buf[i as usize] = self.read(area, row, start_ts)?;
                stats.checked_rows += 1;
                if self.row_ts[row as usize].load(Ordering::Relaxed) & !PENDING > start_ts {
                    stats.chain_walks += 1;
                }
            }
            if store.block_verify(block_idx, seq) {
                stats.tight_rows += (n - (hi - lo + 1)) as u64;
                return Ok(());
            }
            stats.blocks_retried += 1;
        }
        // Per-row fallback: always correct.
        for i in 0..n {
            let row = block_start + i;
            buf[i as usize] = self.read(area, row, start_ts)?;
            if self.row_ts[row as usize].load(Ordering::Relaxed) & !PENDING > start_ts {
                stats.chain_walks += 1;
            }
        }
        stats.checked_rows += n as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anker_vmem::Kernel;

    fn setup(rows: u32) -> (Kernel, ColumnArea, VersionedColumn) {
        let k = Kernel::default();
        let s = k.create_space();
        let area = ColumnArea::alloc(&s, rows).unwrap();
        area.fill((0..rows as u64).map(|i| i * 10)).unwrap();
        let vc = VersionedColumn::new(rows, LogicalType::Int);
        (k, area, vc)
    }

    #[test]
    fn chain_newest_to_oldest() {
        let mut c = Chain::default();
        c.push(100, 0);
        c.push(200, 5);
        c.push(300, 9);
        assert_eq!(c.len(), 3);
        assert_eq!(c.find(10), Some(300));
        assert_eq!(c.find(9), Some(300));
        assert_eq!(c.find(8), Some(200));
        assert_eq!(c.find(5), Some(200));
        assert_eq!(c.find(4), Some(100));
        assert_eq!(c.find(0), Some(100));
    }

    #[test]
    fn chain_prune_keeps_visible_version() {
        let mut c = Chain::default();
        c.push(100, 0);
        c.push(200, 5);
        c.push(300, 9);
        // min_active = 6: a reader at 6 needs the ts-5 version; ts-0 is
        // garbage.
        assert_eq!(c.prune(6), 1);
        assert_eq!(c.find(6), Some(200));
        assert_eq!(c.find(20), Some(300));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn install_and_timed_reads() {
        let (_k, area, vc) = setup(100);
        // Commit ts 5 updates row 3 (old value 30 -> 999).
        vc.install(&area, 3, 999, 5).unwrap();
        // Reader at ts 4 sees the old value via the chain.
        assert_eq!(vc.read(&area, 3, 4).unwrap(), 30);
        // Reader at ts 5 sees the new value in place.
        assert_eq!(vc.read(&area, 3, 5).unwrap(), 999);
        // Unversioned row: direct read at any ts.
        assert_eq!(vc.read(&area, 7, 0).unwrap(), 70);
        // Multiple updates stack.
        vc.install(&area, 3, 1000, 8).unwrap();
        assert_eq!(vc.read(&area, 3, 4).unwrap(), 30);
        assert_eq!(vc.read(&area, 3, 7).unwrap(), 999);
        assert_eq!(vc.read(&area, 3, 8).unwrap(), 1000);
        assert_eq!(vc.current_store().chain_len(3), 2);
    }

    #[test]
    fn freeze_hands_over_chains() {
        let (_k, area, vc) = setup(50);
        vc.install(&area, 10, 111, 3).unwrap();
        let frozen = vc.freeze_epoch(4);
        assert_eq!(frozen.version_count(), 1);
        assert!(vc.current_store().is_empty());
        // Old reader still reaches the pre-freeze version via the frozen
        // store.
        assert_eq!(vc.read(&area, 10, 2).unwrap(), 100);
        // Updates after the freeze go to the fresh store.
        vc.install(&area, 10, 222, 6).unwrap();
        assert_eq!(vc.current_store().version_count(), 1);
        assert_eq!(vc.read(&area, 10, 5).unwrap(), 111);
        assert_eq!(vc.read(&area, 10, 2).unwrap(), 100);
        assert_eq!(vc.read(&area, 10, 6).unwrap(), 222);
        // Releasing the frozen epoch (no readers older than 4) drops the
        // old chains implicitly — the paper's "garbage collection for free".
        vc.release_frozen(4);
        assert_eq!(vc.frozen_epochs(), 0);
    }

    #[test]
    #[should_panic(expected = "retention")]
    fn dropping_needed_epoch_is_detected() {
        let (_k, area, vc) = setup(10);
        vc.install(&area, 0, 1, 3).unwrap();
        vc.freeze_epoch(4);
        vc.release_frozen(100); // violates retention for readers < 4
        vc.read(&area, 0, 2).unwrap(); // needs the dropped version
    }

    #[test]
    fn gc_removes_invisible_versions() {
        let (_k, area, vc) = setup(100);
        for ts in 1..=10u64 {
            vc.install(&area, 5, ts * 1000, ts).unwrap();
        }
        assert_eq!(vc.current_store().chain_len(5), 10);
        // Oldest active reader is at ts 7: versions below the newest-≤7
        // are garbage.
        let removed = vc.gc(7);
        assert!(removed >= 6, "removed {removed}");
        assert_eq!(vc.read(&area, 5, 7).unwrap(), 7000);
        assert_eq!(vc.read(&area, 5, 20).unwrap(), 10000);
        // GC with min_active at the in-place version drops the whole chain.
        let removed = vc.gc(10);
        assert!(removed > 0);
        assert_eq!(vc.current_store().chain_len(5), 0);
        assert_eq!(vc.read(&area, 5, 10).unwrap(), 10000);
    }

    #[test]
    fn scan_tight_when_unversioned() {
        let (_k, area, vc) = setup(3000);
        let mut stats = ScanStats::default();
        let mut sum = 0u64;
        vc.scan_visible(&area, 0, |_, v| sum += v, &mut stats)
            .unwrap();
        assert_eq!(sum, (0..3000u64).map(|i| i * 10).sum::<u64>());
        assert_eq!(stats.tight_rows, 3000);
        assert_eq!(stats.checked_rows, 0);
    }

    #[test]
    fn scan_respects_visibility_with_versions() {
        let (_k, area, vc) = setup(3000);
        // Update rows 100 and 2500 at ts 5.
        vc.install(&area, 100, 7, 5).unwrap();
        vc.install(&area, 2500, 9, 5).unwrap();
        // Reader at ts 3 must see the original values.
        let mut stats = ScanStats::default();
        let mut got = Vec::new();
        vc.scan_visible(&area, 3, |r, v| got.push((r, v)), &mut stats)
            .unwrap();
        assert_eq!(got.len(), 3000);
        assert_eq!(got[100], (100, 1000));
        assert_eq!(got[2500], (2500, 25000));
        assert!(stats.chain_walks >= 2, "chain walks: {:?}", stats);
        // Only the two versioned blocks pay per-row checks, and only for
        // the single versioned row each ([first,last] = [row,row]).
        assert_eq!(stats.checked_rows, 2);
        assert_eq!(stats.tight_rows, 2998);
        // Reader at ts 5 sees the updates.
        let mut stats = ScanStats::default();
        let mut got = Vec::new();
        vc.scan_visible(&area, 5, |r, v| got.push((r, v)), &mut stats)
            .unwrap();
        assert_eq!(got[100], (100, 7));
        assert_eq!(got[2500], (2500, 9));
    }

    #[test]
    fn scan_block_range_limits_checks() {
        let (_k, area, vc) = setup(2048);
        // Version rows 10..20 of block 0 at ts 2.
        for r in 10..20 {
            vc.install(&area, r, 0, 2).unwrap();
        }
        let mut stats = ScanStats::default();
        let mut n = 0u32;
        vc.scan_visible(&area, 1, |_, _| n += 1, &mut stats)
            .unwrap();
        assert_eq!(n, 2048);
        // Checked rows = the [first,last] = [10,19] range only.
        assert_eq!(stats.checked_rows, 10);
        assert_eq!(stats.tight_rows, 2048 - 10);
    }

    #[test]
    fn concurrent_scans_and_installs_never_tear() {
        // One writer installs serialized commits; several readers scan at
        // their snapshot timestamps and must always see consistent values:
        // every row is either old (row*10) or a committed even update.
        let (_k, area, vc) = setup(4096);
        let area = Arc::new(area);
        let vc = Arc::new(vc);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            {
                let (vc, area) = (vc.clone(), area.clone());
                let stop = &stop;
                s.spawn(move || {
                    for (ts, round) in (1u64..).zip(0..200u64) {
                        let row = (round * 37) % 4096;
                        vc.install(&area, row as u32, round * 2 + 1_000_000, ts)
                            .unwrap();
                    }
                    stop.store(true, Ordering::Release);
                });
            }
            for _ in 0..2 {
                let (vc, area) = (vc.clone(), area.clone());
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let mut stats = ScanStats::default();
                        // Read as of "now-ish": ts 0 (before all updates).
                        vc.scan_visible(
                            &area,
                            0,
                            |r, v| {
                                assert_eq!(v, r as u64 * 10, "reader at ts 0 saw an update");
                            },
                            &mut stats,
                        )
                        .unwrap();
                    }
                });
            }
        });
    }
}
