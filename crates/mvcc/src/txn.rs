//! Client-side transaction state: local write sets, read-own-writes, and
//! the predicate log.
//!
//! Uncommitted writes never touch shared state (paper Figure 1, step 2:
//! "instead of replacing the old value in the column with the new value
//! in-place, we store the new value locally inside the transaction"), which
//! makes aborts free (step 3).

use crate::predicate::{ColRef, Pred, PredicateSet};
use anker_util::FxHashMap;

/// Unique transaction identifier (diagnostics only; visibility is driven by
/// timestamps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnId(pub u64);

/// One buffered write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalWrite {
    pub col: ColRef,
    pub row: u32,
    pub new_word: u64,
}

/// A transaction in progress.
#[derive(Debug)]
pub struct Transaction {
    id: TxnId,
    start_ts: u64,
    writes: Vec<LocalWrite>,
    write_index: FxHashMap<(ColRef, u32), usize>,
    preds: PredicateSet,
    read_only: bool,
}

impl Transaction {
    /// Begin a transaction at `start_ts`.
    pub fn begin(id: TxnId, start_ts: u64) -> Transaction {
        Transaction {
            id,
            start_ts,
            writes: Vec::new(),
            write_index: FxHashMap::default(),
            preds: PredicateSet::new(),
            read_only: true,
        }
    }

    /// The transaction's identifier.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The snapshot timestamp all reads observe.
    pub fn start_ts(&self) -> u64 {
        self.start_ts
    }

    /// True while no write was buffered.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Move the snapshot forward to `new_start` (conflict repair): after a
    /// failed validation the transaction re-reads its conflicting keys at
    /// a fresh watermark and revalidates only against commits younger than
    /// it. Never moves backwards.
    pub fn advance_snapshot(&mut self, new_start: u64) {
        debug_assert!(
            new_start >= self.start_ts,
            "snapshot may only advance forwards"
        );
        self.start_ts = new_start;
    }

    /// Buffer a write; later writes to the same `(col, row)` overwrite the
    /// earlier buffered value (last-writer-wins within the transaction).
    pub fn write(&mut self, col: ColRef, row: u32, new_word: u64) {
        self.read_only = false;
        match self.write_index.entry((col, row)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.writes[*e.get()].new_word = new_word;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.writes.len());
                self.writes.push(LocalWrite { col, row, new_word });
            }
        }
    }

    /// The transaction's own buffered value for `(col, row)`, if any
    /// (read-own-writes).
    pub fn own_write(&self, col: ColRef, row: u32) -> Option<u64> {
        self.write_index
            .get(&(col, row))
            .map(|&i| self.writes[i].new_word)
    }

    /// The buffered writes in first-write order.
    pub fn writes(&self) -> &[LocalWrite] {
        &self.writes
    }

    /// Record a read predicate (serializable mode).
    pub fn log_predicate(&mut self, pred: Pred) {
        self.preds.add(pred);
    }

    /// Record a point read (serializable mode).
    pub fn log_row_read(&mut self, col: ColRef, row: u32) {
        self.preds.add_row(col, row);
    }

    /// The logged predicate set.
    pub fn predicates(&self) -> &PredicateSet {
        &self.preds
    }

    /// Mutable access to the predicate set (query operators log through
    /// this).
    pub fn predicates_mut(&mut self) -> &mut PredicateSet {
        &mut self.preds
    }

    /// Abort: drop all local state. Cheap by construction.
    pub fn abort(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: ColRef = ColRef { table: 1, col: 0 };
    const D: ColRef = ColRef { table: 1, col: 1 };

    #[test]
    fn writes_stay_local_and_dedupe() {
        let mut t = Transaction::begin(TxnId(1), 10);
        assert!(t.is_read_only());
        t.write(C, 5, 100);
        t.write(D, 5, 200);
        t.write(C, 5, 111); // overwrites the first buffered value
        assert!(!t.is_read_only());
        assert_eq!(t.writes().len(), 2);
        assert_eq!(t.own_write(C, 5), Some(111));
        assert_eq!(t.own_write(D, 5), Some(200));
        assert_eq!(t.own_write(C, 6), None);
    }

    #[test]
    fn predicate_logging() {
        let mut t = Transaction::begin(TxnId(2), 0);
        t.log_row_read(C, 1);
        t.log_row_read(C, 2);
        t.log_predicate(Pred::FullColumn { col: D });
        assert_eq!(t.predicates().len(), 2);
        assert!(t.predicates().intersects_write(C, 2, 0, 1));
        assert!(t.predicates().intersects_write(D, 99, 0, 1));
        assert!(!t.predicates().intersects_write(C, 3, 0, 1));
    }

    #[test]
    fn abort_is_free() {
        let mut t = Transaction::begin(TxnId(3), 0);
        t.write(C, 0, 1);
        t.abort(); // nothing shared was touched; nothing to roll back
    }
}
