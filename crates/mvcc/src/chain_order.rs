//! Ablation study of version-chain ordering (§2.1).
//!
//! AnKerDB (like HyPer) stores versions **newest-to-oldest**: "they will
//! find their version early on during the chain traversal" — young
//! transactions, which dominate, pay O(1); archaeologically old readers pay
//! O(chain length). The alternative — oldest-to-newest, as used by
//! append-to-tail designs — inverts that trade-off.
//!
//! This module implements both orders over the same node representation so
//! the `ablations` bench (and the tests below) can quantify the asymmetry.

/// One version record: `value` became current at `ts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Version {
    pub value: u64,
    pub ts: u64,
}

/// A chain that prepends new versions (the paper's layout).
#[derive(Debug, Default, Clone)]
pub struct NewestFirstChain {
    versions: Vec<Version>, // index 0 = newest
}

/// A chain that appends new versions (the rejected alternative).
#[derive(Debug, Default, Clone)]
pub struct OldestFirstChain {
    versions: Vec<Version>, // index 0 = oldest
}

impl NewestFirstChain {
    /// Record that `value` became current at `ts` (monotonically
    /// increasing).
    pub fn push(&mut self, value: u64, ts: u64) {
        debug_assert!(self.versions.first().map(|v| v.ts <= ts).unwrap_or(true));
        self.versions.insert(0, Version { value, ts });
    }

    /// The newest version visible at `start_ts`, and the number of nodes
    /// traversed to find it.
    pub fn find(&self, start_ts: u64) -> (Option<u64>, usize) {
        for (i, v) in self.versions.iter().enumerate() {
            if v.ts <= start_ts {
                return (Some(v.value), i + 1);
            }
        }
        (None, self.versions.len())
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when the chain holds no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

impl OldestFirstChain {
    /// Record that `value` became current at `ts`.
    pub fn push(&mut self, value: u64, ts: u64) {
        debug_assert!(self.versions.last().map(|v| v.ts <= ts).unwrap_or(true));
        self.versions.push(Version { value, ts });
    }

    /// The newest version visible at `start_ts`: walk from the oldest end
    /// until the first version that is too new, then take its predecessor.
    /// Returns the traversal length alongside.
    pub fn find(&self, start_ts: u64) -> (Option<u64>, usize) {
        let mut result = None;
        for (i, v) in self.versions.iter().enumerate() {
            if v.ts > start_ts {
                return (result, i + 1);
            }
            result = Some(v.value);
        }
        (result, self.versions.len())
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when the chain holds no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

/// Build both chain layouts from the same update history
/// (`(value, ts)` pairs in commit order).
pub fn build_both(history: &[(u64, u64)]) -> (NewestFirstChain, OldestFirstChain) {
    let mut nf = NewestFirstChain::default();
    let mut of = OldestFirstChain::default();
    for &(value, ts) in history {
        nf.push(value, ts);
        of.push(value, ts);
    }
    (nf, of)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history(n: u64) -> Vec<(u64, u64)> {
        (1..=n).map(|i| (i * 100, i)).collect()
    }

    #[test]
    fn both_orders_agree_on_visibility() {
        let (nf, of) = build_both(&history(50));
        for s in 0..=55 {
            let (a, _) = nf.find(s);
            let (b, _) = of.find(s);
            assert_eq!(a, b, "disagreement at start_ts {s}");
            if s >= 1 {
                assert_eq!(a, Some(s.min(50) * 100));
            } else {
                assert_eq!(a, None);
            }
        }
    }

    #[test]
    fn newest_first_favors_young_readers() {
        let (nf, of) = build_both(&history(1000));
        // A young reader (start_ts just below the newest version).
        let (_, nf_steps) = nf.find(999);
        let (_, of_steps) = of.find(999);
        assert_eq!(nf_steps, 2, "newest-first: constant for young readers");
        assert_eq!(of_steps, 1000, "oldest-first walks the whole history");
        // An old reader: the trade-off inverts.
        let (_, nf_steps) = nf.find(1);
        let (_, of_steps) = of.find(1);
        assert_eq!(nf_steps, 1000);
        assert_eq!(of_steps, 2);
    }

    #[test]
    fn empty_chain() {
        let (nf, of) = build_both(&[]);
        assert!(nf.is_empty() && of.is_empty());
        assert_eq!(nf.find(10), (None, 0));
        assert_eq!(of.find(10), (None, 0));
    }
}
