//! # anker-mvcc — multi-version concurrency control building blocks
//!
//! The MVCC scheme of the paper (§2.1), as used inside *both* components of
//! the heterogeneous design:
//!
//! * **Newest-to-oldest version chains**: the column always holds the most
//!   recent committed value in place; on commit the old value moves into the
//!   row's chain together with the timestamp that wrote it. Young
//!   transactions find their version early during traversal, like HyPer.
//! * **Atomic commit visibility**: the paper logs the start and end time of
//!   a transaction's commit phase so all its writes become visible
//!   atomically. Here, readers draw their start timestamp from a
//!   stable-timestamp watermark (commits may install out of order; the
//!   watermark advances as holes fill) and per-row write timestamps carry
//!   a PENDING bit while a committer holds the row's install latch
//!   ([`timestamp::TsOracle`], [`version::VersionedColumn`]).
//! * **Cheap aborts**: uncommitted writes live only in the transaction's
//!   local write set ([`txn::Transaction`]); an abort just drops them
//!   (paper Figure 1, step 3).
//! * **Write-write conflicts** are detected at commit time
//!   (first-updater-wins); **full serializability** adds read-set
//!   validation via precision locking ([`predicate`], [`commit`]): a
//!   committing transaction checks whether any recently committed write
//!   intersects the predicate ranges it read through.
//! * **Epoch hand-over** for the heterogeneous mode: on snapshot, the
//!   column's chain store is frozen and replaced by an empty one
//!   ([`version::VersionedColumn::freeze_epoch`]); pre-snapshot readers
//!   still reach old versions through the frozen stores, and dropping a
//!   frozen store *is* the garbage collection (§1.3.1).
//! * The **block-skip scan optimisation** of §5.5: per 1024-row block, the
//!   position of the first and last versioned row, so scans run in tight
//!   loops between versioned regions.
//!
//! The commit *protocol* (who takes which lock when) is composed by
//! `anker-core`, which owns tables and snapshot management; this crate
//! provides the pieces and their invariants.
//!
//! ## Example
//!
//! ```
//! use anker_mvcc::VersionedColumn;
//! use anker_storage::{ColumnArea, LogicalType};
//! use anker_vmem::Kernel;
//!
//! let kernel = Kernel::default();
//! let space = kernel.create_space();
//! let area = ColumnArea::alloc(&space, 100).unwrap();
//! area.fill((0..100u64).map(|r| r * 10)).unwrap();
//!
//! // Install a new version of row 5 committed at ts 1: the column holds
//! // the newest value in place, the old value moves into the chain.
//! let vc = VersionedColumn::new(100, LogicalType::Int);
//! vc.install(&area, 5, 999, 1).unwrap();
//!
//! assert_eq!(vc.read(&area, 5, 1).unwrap(), 999); // reader at ts 1
//! assert_eq!(vc.read(&area, 5, 0).unwrap(), 50);  // reader before the commit
//! ```
// No unsafe in this crate: verified by the compiler, inventoried by
// `anker-lint -- audit` (results/unsafe_audit.json records zero sites).
#![forbid(unsafe_code)]

pub mod chain_order;
pub mod commit;
pub mod predicate;
pub mod timestamp;
pub mod txn;
pub mod version;

pub use commit::{
    ActiveToken, ActiveTxns, CommitRecord, RecentCommits, ShardGuards, ValidationConflict,
    WriteRecord, VALIDATION_SHARDS,
};
pub use predicate::{ColRef, Pred, PredicateSet};
pub use timestamp::{TsOracle, PENDING};
pub use txn::{LocalWrite, Transaction, TxnId};
pub use version::{ChainStore, FilterSel, ScanStats, VersionedColumn, BLOCK_ROWS, TRACKED_FILTERS};

/// Isolation level of the engine, as configured in the paper's evaluation
/// (§5.1): snapshot isolation skips commit-time read-set validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationLevel {
    /// MVCC's native guarantee; write-skew anomalies are possible.
    SnapshotIsolation,
    /// Snapshot isolation plus precision-locking read validation.
    Serializable,
}
