//! Commit records, the recently-committed list, and the active-transaction
//! registry.
//!
//! The paper keeps "a list of recently committed transactions, that must be
//! mutex protected, ... to organize validation" (§5.7) — and observes that
//! this is exactly what limits scaling under full serializability. We keep
//! the same design on purpose.

use crate::predicate::{ColRef, PredicateSet};
use parking_lot::Mutex;
use std::collections::VecDeque;

/// One installed write of a committed transaction, with both the removed
/// and the introduced value (predicate intersection needs both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRecord {
    pub col: ColRef,
    pub row: u32,
    pub old: u64,
    pub new: u64,
}

/// The validation-relevant footprint of one committed transaction.
#[derive(Debug, Clone)]
pub struct CommitRecord {
    /// The commit timestamp.
    pub commit_ts: u64,
    /// All installed writes.
    pub writes: Vec<WriteRecord>,
}

/// The mutex-protected list of recently committed transactions.
#[derive(Debug, Default)]
pub struct RecentCommits {
    list: Mutex<VecDeque<CommitRecord>>,
}

impl RecentCommits {
    /// Empty list.
    pub fn new() -> RecentCommits {
        RecentCommits::default()
    }

    /// Append a commit record (called inside the serialized commit
    /// section).
    pub fn push(&self, record: CommitRecord) {
        self.list.lock().push_back(record);
    }

    /// Validate a committing transaction's read set: does any commit with
    /// `commit_ts > start_ts` intersect its predicates? Returns the
    /// offending commit timestamp for diagnostics.
    pub fn validate(&self, start_ts: u64, preds: &PredicateSet) -> Result<(), u64> {
        if preds.is_empty() {
            return Ok(());
        }
        let list = self.list.lock();
        // Records are appended in commit order: binary-search the first
        // record younger than start_ts.
        let idx = list.partition_point(|r| r.commit_ts <= start_ts);
        for record in list.iter().skip(idx) {
            for w in &record.writes {
                if preds.intersects_write(w.col, w.row, w.old, w.new) {
                    return Err(record.commit_ts);
                }
            }
        }
        Ok(())
    }

    /// Drop records no active transaction can conflict with (all commits
    /// with `commit_ts <= min_active_start`).
    pub fn prune(&self, min_active_start: u64) {
        let mut list = self.list.lock();
        while list
            .front()
            .map(|r| r.commit_ts <= min_active_start)
            .unwrap_or(false)
        {
            list.pop_front();
        }
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.list.lock().len()
    }

    /// True if no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A registration handle returned by [`ActiveTxns::register`]; hand it back
/// to [`ActiveTxns::deregister`].
#[derive(Debug)]
pub struct ActiveToken {
    slot: usize,
}

const ACTIVE_SLOTS: usize = 128;
const SLOT_EMPTY: u64 = u64::MAX;

/// Registry of active transactions' start timestamps, for GC horizons and
/// record pruning.
///
/// Lock-free: registration claims one of a fixed pool of atomic slots
/// (transactions are begun and finished on every operation's hot path, so
/// this must not serialize); the horizon query scans all slots, which is
/// fine for its rare callers (GC, pruning).
pub struct ActiveTxns {
    slots: Box<[std::sync::atomic::AtomicU64]>,
    /// Rotating hint where to start probing.
    next: std::sync::atomic::AtomicUsize,
}

impl std::fmt::Debug for ActiveTxns {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveTxns")
            .field("len", &self.len())
            .finish()
    }
}

impl Default for ActiveTxns {
    fn default() -> Self {
        ActiveTxns {
            slots: (0..ACTIVE_SLOTS)
                .map(|_| std::sync::atomic::AtomicU64::new(SLOT_EMPTY))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            next: std::sync::atomic::AtomicUsize::new(0),
        }
    }
}

impl ActiveTxns {
    /// Empty registry.
    pub fn new() -> ActiveTxns {
        ActiveTxns::default()
    }

    /// Register a transaction starting at `start_ts`.
    ///
    /// # Panics
    /// Panics when more than the supported number of transactions are
    /// simultaneously active (the paper's workloads run one transaction per
    /// worker thread; 128 concurrent transactions is far beyond that).
    pub fn register(&self, start_ts: u64) -> ActiveToken {
        use std::sync::atomic::Ordering;
        debug_assert_ne!(start_ts, SLOT_EMPTY);
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        for i in 0..ACTIVE_SLOTS {
            let slot = (start + i) % ACTIVE_SLOTS;
            if self.slots[slot]
                .compare_exchange(SLOT_EMPTY, start_ts, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return ActiveToken { slot };
            }
        }
        panic!("more than {ACTIVE_SLOTS} concurrently active transactions");
    }

    /// Deregister a transaction (on commit or abort).
    pub fn deregister(&self, token: ActiveToken) {
        use std::sync::atomic::Ordering;
        let prev = self.slots[token.slot].swap(SLOT_EMPTY, Ordering::AcqRel);
        debug_assert_ne!(prev, SLOT_EMPTY, "slot double-freed");
    }

    /// The oldest active start timestamp, or `fallback` when idle.
    /// Everything with `ts <=` this horizon is invisible history.
    pub fn min_active_or(&self, fallback: u64) -> u64 {
        use std::sync::atomic::Ordering;
        let mut min = u64::MAX;
        for s in self.slots.iter() {
            min = min.min(s.load(Ordering::Acquire));
        }
        if min == u64::MAX {
            fallback
        } else {
            min
        }
    }

    /// Number of active transactions.
    pub fn len(&self) -> usize {
        use std::sync::atomic::Ordering;
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != SLOT_EMPTY)
            .count()
    }

    /// True when no transaction is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Pred;
    use anker_storage::value::{LogicalType, Value};

    const C: ColRef = ColRef { table: 0, col: 0 };

    fn record(ts: u64, row: u32, old: i64, new: i64) -> CommitRecord {
        CommitRecord {
            commit_ts: ts,
            writes: vec![WriteRecord {
                col: C,
                row,
                old: Value::Int(old).encode(),
                new: Value::Int(new).encode(),
            }],
        }
    }

    #[test]
    fn validation_only_considers_younger_commits() {
        let rc = RecentCommits::new();
        rc.push(record(5, 0, 10, 50)); // touches range
        rc.push(record(8, 1, 0, 1)); // does not
        let mut preds = PredicateSet::new();
        preds.add(Pred::Range {
            col: C,
            ty: LogicalType::Int,
            lo: 0.0,
            hi: 20.0,
        });
        // Transaction started at 5: commit 5 is part of its snapshot, commit
        // 8 intersects? old=0 is inside [0,20] -> conflict.
        assert_eq!(rc.validate(5, &preds), Err(8));
        // Started at 8: nothing younger.
        assert_eq!(rc.validate(8, &preds), Ok(()));
        // Started at 2: commit 5 wrote old=10 (in range) -> conflict at 5.
        assert_eq!(rc.validate(2, &preds), Err(5));
    }

    #[test]
    fn empty_predicates_always_validate() {
        let rc = RecentCommits::new();
        rc.push(record(5, 0, 0, 1));
        assert_eq!(rc.validate(0, &PredicateSet::new()), Ok(()));
    }

    #[test]
    fn pruning_respects_horizon() {
        let rc = RecentCommits::new();
        for ts in 1..=10 {
            rc.push(record(ts, 0, 0, 1));
        }
        rc.prune(4);
        assert_eq!(rc.len(), 6); // commits 5..=10 retained
        let mut preds = PredicateSet::new();
        preds.add_full_column(C);
        assert_eq!(rc.validate(4, &preds), Err(5));
    }

    #[test]
    fn active_registry_min() {
        let a = ActiveTxns::new();
        assert_eq!(a.min_active_or(42), 42);
        let t1 = a.register(10);
        let t2 = a.register(10);
        let t3 = a.register(15);
        assert_eq!(a.min_active_or(42), 10);
        a.deregister(t1);
        assert_eq!(a.min_active_or(42), 10);
        a.deregister(t2);
        assert_eq!(a.min_active_or(42), 15);
        a.deregister(t3);
        assert!(a.is_empty());
        assert_eq!(a.min_active_or(42), 42);
    }

    #[test]
    fn concurrent_registry_usage() {
        let a = std::sync::Arc::new(ActiveTxns::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let a = a.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        let ts = t * 1000 + i;
                        let tok = a.register(ts);
                        a.deregister(tok);
                    }
                });
            }
        });
        assert!(a.is_empty());
    }

    #[test]
    fn registry_holds_many_concurrent() {
        let a = ActiveTxns::new();
        let tokens: Vec<_> = (0..100).map(|i| a.register(i)).collect();
        assert_eq!(a.len(), 100);
        assert_eq!(a.min_active_or(9999), 0);
        for t in tokens {
            a.deregister(t);
        }
        assert!(a.is_empty());
    }
}
