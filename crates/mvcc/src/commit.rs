//! Commit records, the sharded recently-committed list, and the
//! active-transaction registry.
//!
//! The paper keeps "a list of recently committed transactions, that must be
//! mutex protected, ... to organize validation" (§5.7) — and observes that
//! this is exactly what limits scaling under full serializability. The
//! concurrent commit pipeline keeps the *design* but splits the list into
//! [`VALIDATION_SHARDS`] shards keyed by **table id**, each under its own
//! mutex: transactions whose read predicates and write sets touch disjoint
//! table shards validate and publish fully in parallel.
//!
//! ## Locking protocol
//!
//! A committing transaction calls [`RecentCommits::lock_tables`] with the
//! sorted, deduplicated union of the tables it wrote and the tables its
//! predicates cover. Shard mutexes are always acquired in ascending shard
//! order, so concurrent committers cannot deadlock. While holding the
//! guard the committer allocates its commit timestamp, validates against
//! every locked shard, and (on success) pushes its own record — which
//! preserves the per-shard invariant that records are appended in
//! commit-timestamp order (any two transactions sharing a shard serialize
//! on its mutex *around* timestamp allocation), keeping the
//! `partition_point` pruning of the validation scan exact.

use crate::predicate::{ColRef, PredicateSet};
use anker_util::lockcheck::{self, classes};
use std::collections::VecDeque;

/// Number of table-id shards of [`RecentCommits`]. A small power of two:
/// the paper's workloads touch a handful of tables, and the shard lock is
/// held across validation, so more shards buy nothing.
pub const VALIDATION_SHARDS: usize = 16;

/// One installed write of a committed transaction, with both the removed
/// and the introduced value (predicate intersection needs both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRecord {
    pub col: ColRef,
    pub row: u32,
    pub old: u64,
    pub new: u64,
}

/// The validation-relevant footprint of one committed transaction.
#[derive(Debug, Clone)]
pub struct CommitRecord {
    /// The commit timestamp.
    pub commit_ts: u64,
    /// All installed writes.
    pub writes: Vec<WriteRecord>,
}

/// One committed transaction that a validating reader conflicts with:
/// the offending commit timestamp plus exactly the written keys the
/// reader's predicates intersect — the input of the conflict-repair path
/// (re-read precisely these keys, nothing else).
#[derive(Debug, Clone)]
pub struct ValidationConflict {
    pub commit_ts: u64,
    pub keys: Vec<(ColRef, u32)>,
}

/// The sharded, mutex-protected list of recently committed transactions.
#[derive(Debug)]
pub struct RecentCommits {
    /// Shard `i` is a `validation_shard`-class lock with order key `i`:
    /// the ascending-acquisition protocol below is exactly what the
    /// lockcheck witness verifies at runtime.
    shards: Box<[lockcheck::Mutex<VecDeque<CommitRecord>>]>,
}

impl Default for RecentCommits {
    fn default() -> Self {
        RecentCommits {
            shards: (0..VALIDATION_SHARDS)
                .map(|i| {
                    lockcheck::Mutex::new(&classes::VALIDATION_SHARD, i as u64, VecDeque::new())
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }
}

/// Guard over the locked subset of shards a committing transaction needs
/// (see the module docs for the protocol). Obtained from
/// [`RecentCommits::lock_tables`]; dropping it releases every shard.
pub struct ShardGuards<'a> {
    /// `(shard index, guard)` in ascending shard order.
    guards: Vec<(usize, lockcheck::MutexGuard<'a, VecDeque<CommitRecord>>)>,
}

impl RecentCommits {
    /// Empty list.
    pub fn new() -> RecentCommits {
        RecentCommits::default()
    }

    /// The shard a table's records live in.
    #[inline]
    pub fn shard_of(table: u16) -> usize {
        table as usize % VALIDATION_SHARDS
    }

    /// Lock the shards covering `tables` (ascending acquisition; `tables`
    /// need not be sorted or unique).
    pub fn lock_tables(&self, tables: &[u16]) -> ShardGuards<'_> {
        let mut idxs: Vec<usize> = tables.iter().map(|&t| Self::shard_of(t)).collect();
        idxs.sort_unstable();
        idxs.dedup();
        ShardGuards {
            guards: idxs
                .into_iter()
                .map(|i| (i, self.shards[i].lock()))
                .collect(),
        }
    }

    /// Drop records no active transaction can conflict with (all commits
    /// with `commit_ts <= min_active_start`).
    pub fn prune(&self, min_active_start: u64) {
        for shard in self.shards.iter() {
            let mut list = shard.lock();
            while list
                .front()
                .map(|r| r.commit_ts <= min_active_start)
                .unwrap_or(false)
            {
                list.pop_front();
            }
        }
    }

    /// Number of retained shard records (a commit spanning `k` table
    /// shards counts `k` times).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.lock().len()).sum()
    }

    /// True if no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ShardGuards<'_> {
    /// Validate a committing transaction's read set against every locked
    /// shard: collect each commit with `commit_ts > start_ts` whose writes
    /// intersect the predicates, together with the intersecting keys.
    /// Empty result = validation passed. Conflicts come back in ascending
    /// commit-timestamp order.
    pub fn conflicts(&self, start_ts: u64, preds: &PredicateSet) -> Vec<ValidationConflict> {
        if preds.is_empty() {
            return Vec::new();
        }
        let mut by_ts: std::collections::BTreeMap<u64, Vec<(ColRef, u32)>> =
            std::collections::BTreeMap::new();
        for (_, list) in &self.guards {
            // Records are appended in commit order per shard: binary-search
            // the first record younger than start_ts.
            let idx = list.partition_point(|r| r.commit_ts <= start_ts);
            for record in list.iter().skip(idx) {
                for w in &record.writes {
                    if preds.intersects_write(w.col, w.row, w.old, w.new) {
                        by_ts
                            .entry(record.commit_ts)
                            .or_default()
                            .push((w.col, w.row));
                    }
                }
            }
        }
        by_ts
            .into_iter()
            .map(|(commit_ts, keys)| ValidationConflict { commit_ts, keys })
            .collect()
    }

    /// Validation boiled down to the first offending commit timestamp
    /// (diagnostics / tests).
    pub fn validate(&self, start_ts: u64, preds: &PredicateSet) -> Result<(), u64> {
        match self.conflicts(start_ts, preds).first() {
            None => Ok(()),
            Some(c) => Err(c.commit_ts),
        }
    }

    /// Publish a commit record: its writes are split by table shard and
    /// appended to each (all of which must be locked by this guard).
    ///
    /// # Panics
    /// Panics if a write's table shard is not part of the locked set —
    /// that would break the per-shard commit-order invariant.
    pub fn push(&mut self, record: CommitRecord) {
        let mut rest = record.writes;
        while let Some(first) = rest.first() {
            let shard = RecentCommits::shard_of(first.col.table);
            let (ours, others): (Vec<_>, Vec<_>) = rest
                .into_iter()
                .partition(|w| RecentCommits::shard_of(w.col.table) == shard);
            rest = others;
            let list = self
                .guards
                .iter_mut()
                .find(|(i, _)| *i == shard)
                .map(|(_, g)| g)
                .expect("pushing a commit record into an unlocked shard");
            debug_assert!(
                list.back()
                    .map(|r| r.commit_ts < record.commit_ts)
                    .unwrap_or(true),
                "per-shard commit records must stay timestamp-ordered"
            );
            list.push_back(CommitRecord {
                commit_ts: record.commit_ts,
                writes: ours,
            });
        }
    }
}

/// A registration handle returned by [`ActiveTxns::register`]; hand it back
/// to [`ActiveTxns::deregister`].
#[derive(Debug)]
pub struct ActiveToken {
    slot: usize,
}

const ACTIVE_SLOTS: usize = 128;
const SLOT_EMPTY: u64 = u64::MAX;

/// Registry of active transactions' start timestamps, for GC horizons and
/// record pruning.
///
/// Lock-free: registration claims one of a fixed pool of atomic slots
/// (transactions are begun and finished on every operation's hot path, so
/// this must not serialize); the horizon query scans all slots, which is
/// fine for its rare callers (GC, pruning).
pub struct ActiveTxns {
    slots: Box<[std::sync::atomic::AtomicU64]>,
    /// Rotating hint where to start probing.
    next: std::sync::atomic::AtomicUsize,
}

impl std::fmt::Debug for ActiveTxns {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveTxns")
            .field("len", &self.len())
            .finish()
    }
}

impl Default for ActiveTxns {
    fn default() -> Self {
        ActiveTxns {
            slots: (0..ACTIVE_SLOTS)
                .map(|_| std::sync::atomic::AtomicU64::new(SLOT_EMPTY))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            next: std::sync::atomic::AtomicUsize::new(0),
        }
    }
}

impl ActiveTxns {
    /// Empty registry.
    pub fn new() -> ActiveTxns {
        ActiveTxns::default()
    }

    /// Register a transaction starting at `start_ts`.
    ///
    /// # Panics
    /// Panics when more than the supported number of transactions are
    /// simultaneously active (the paper's workloads run one transaction per
    /// worker thread; 128 concurrent transactions is far beyond that).
    pub fn register(&self, start_ts: u64) -> ActiveToken {
        use std::sync::atomic::Ordering;
        debug_assert_ne!(start_ts, SLOT_EMPTY);
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        // ORDERING: AcqRel — claiming a slot must be a full hand-off with
        // the previous `deregister`'s AcqRel swap, so slot reuse cannot
        // reorder across two transactions' lifetimes, and a horizon scan
        // that sees our start_ts knows the registration is complete.
        for i in 0..ACTIVE_SLOTS {
            let slot = (start + i) % ACTIVE_SLOTS;
            if self.slots[slot]
                .compare_exchange(SLOT_EMPTY, start_ts, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return ActiveToken { slot };
            }
        }
        panic!("more than {ACTIVE_SLOTS} concurrently active transactions");
    }

    /// Deregister a transaction (on commit or abort).
    pub fn deregister(&self, token: ActiveToken) {
        use std::sync::atomic::Ordering;
        // ORDERING: AcqRel — the Release half publishes every read this
        // transaction did before the horizon may move past it (GC and
        // area-recycling gate on `min_active_or`); the Acquire half pairs
        // with the next claimant's CAS.
        let prev = self.slots[token.slot].swap(SLOT_EMPTY, Ordering::AcqRel);
        debug_assert_ne!(prev, SLOT_EMPTY, "slot double-freed");
    }

    /// The oldest active start timestamp, or `fallback` when idle.
    /// Everything with `ts <=` this horizon is invisible history.
    pub fn min_active_or(&self, fallback: u64) -> u64 {
        use std::sync::atomic::Ordering;
        let mut min = u64::MAX;
        // ORDERING: Acquire pairs with the AcqRel slot RMWs — a scan that
        // misses a transaction (slot already empty) is ordered after that
        // transaction's deregistration, so acting on the horizon (unmap,
        // GC) cannot pull state out from under a still-active reader.
        for s in self.slots.iter() {
            min = min.min(s.load(Ordering::Acquire));
        }
        if min == u64::MAX {
            fallback
        } else {
            min
        }
    }

    /// Number of active transactions.
    pub fn len(&self) -> usize {
        use std::sync::atomic::Ordering;
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != SLOT_EMPTY)
            .count()
    }

    /// True when no transaction is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Pred;
    use anker_storage::value::{LogicalType, Value};

    const C: ColRef = ColRef { table: 0, col: 0 };

    fn record(ts: u64, row: u32, old: i64, new: i64) -> CommitRecord {
        CommitRecord {
            commit_ts: ts,
            writes: vec![WriteRecord {
                col: C,
                row,
                old: Value::Int(old).encode(),
                new: Value::Int(new).encode(),
            }],
        }
    }

    fn push(rc: &RecentCommits, r: CommitRecord) {
        let tables: Vec<u16> = r.writes.iter().map(|w| w.col.table).collect();
        rc.lock_tables(&tables).push(r);
    }

    fn validate(rc: &RecentCommits, start_ts: u64, preds: &PredicateSet) -> Result<(), u64> {
        // Tests validate against every shard.
        let all: Vec<u16> = (0..VALIDATION_SHARDS as u16).collect();
        rc.lock_tables(&all).validate(start_ts, preds)
    }

    #[test]
    fn validation_only_considers_younger_commits() {
        let rc = RecentCommits::new();
        push(&rc, record(5, 0, 10, 50)); // touches range
        push(&rc, record(8, 1, 0, 1)); // does not
        let mut preds = PredicateSet::new();
        preds.add(Pred::Range {
            col: C,
            ty: LogicalType::Int,
            lo: 0.0,
            hi: 20.0,
        });
        // Transaction started at 5: commit 5 is part of its snapshot, commit
        // 8 intersects? old=0 is inside [0,20] -> conflict.
        assert_eq!(validate(&rc, 5, &preds), Err(8));
        // Started at 8: nothing younger.
        assert_eq!(validate(&rc, 8, &preds), Ok(()));
        // Started at 2: commit 5 wrote old=10 (in range) -> conflict at 5.
        assert_eq!(validate(&rc, 2, &preds), Err(5));
    }

    #[test]
    fn empty_predicates_always_validate() {
        let rc = RecentCommits::new();
        push(&rc, record(5, 0, 0, 1));
        assert_eq!(validate(&rc, 0, &PredicateSet::new()), Ok(()));
    }

    #[test]
    fn pruning_respects_horizon() {
        let rc = RecentCommits::new();
        for ts in 1..=10 {
            push(&rc, record(ts, 0, 0, 1));
        }
        rc.prune(4);
        assert_eq!(rc.len(), 6); // commits 5..=10 retained
        let mut preds = PredicateSet::new();
        preds.add_full_column(C);
        assert_eq!(validate(&rc, 4, &preds), Err(5));
    }

    /// Tables in different shards validate and publish under different
    /// mutexes; conflicts are still found exactly where predicates and
    /// writes share a table.
    #[test]
    fn sharding_keeps_conflicts_table_local() {
        let t0 = ColRef { table: 0, col: 0 };
        let t1 = ColRef { table: 1, col: 0 };
        assert_ne!(RecentCommits::shard_of(0), RecentCommits::shard_of(1));
        let rc = RecentCommits::new();
        // A cross-table commit: its writes split across both shards.
        rc.lock_tables(&[0, 1]).push(CommitRecord {
            commit_ts: 7,
            writes: vec![
                WriteRecord {
                    col: t0,
                    row: 3,
                    old: 0,
                    new: 1,
                },
                WriteRecord {
                    col: t1,
                    row: 4,
                    old: 0,
                    new: 1,
                },
            ],
        });
        assert_eq!(rc.len(), 2, "one shard record per touched shard");
        // A reader over table 1 only locks table 1's shard and still sees
        // the conflict on its side of the split record.
        let mut preds = PredicateSet::new();
        preds.add_full_column(t1);
        let g = rc.lock_tables(&[1]);
        let confs = g.conflicts(2, &preds);
        assert_eq!(confs.len(), 1);
        assert_eq!(confs[0].commit_ts, 7);
        assert_eq!(confs[0].keys, vec![(t1, 4)]);
        // A reader over table 0 with a non-intersecting predicate passes.
        drop(g);
        let mut preds = PredicateSet::new();
        preds.add(Pred::Rows {
            col: t0,
            rows: vec![9].into_iter().collect(),
        });
        assert!(rc.lock_tables(&[0]).conflicts(2, &preds).is_empty());
    }

    /// The repair path needs *all* conflicting commits and the exact keys
    /// hit, in timestamp order.
    #[test]
    fn conflicts_reports_every_offender_with_keys() {
        let rc = RecentCommits::new();
        push(&rc, record(5, 0, 10, 50));
        push(&rc, record(6, 1, 11, 51));
        push(&rc, record(7, 2, 1000, 2000)); // outside the range below
        let mut preds = PredicateSet::new();
        preds.add(Pred::Range {
            col: C,
            ty: LogicalType::Int,
            lo: 0.0,
            hi: 100.0,
        });
        let g = rc.lock_tables(&[0]);
        let confs = g.conflicts(2, &preds);
        assert_eq!(confs.len(), 2);
        assert_eq!((confs[0].commit_ts, confs[0].keys[0].1), (5, 0));
        assert_eq!((confs[1].commit_ts, confs[1].keys[0].1), (6, 1));
    }

    #[test]
    fn active_registry_min() {
        let a = ActiveTxns::new();
        assert_eq!(a.min_active_or(42), 42);
        let t1 = a.register(10);
        let t2 = a.register(10);
        let t3 = a.register(15);
        assert_eq!(a.min_active_or(42), 10);
        a.deregister(t1);
        assert_eq!(a.min_active_or(42), 10);
        a.deregister(t2);
        assert_eq!(a.min_active_or(42), 15);
        a.deregister(t3);
        assert!(a.is_empty());
        assert_eq!(a.min_active_or(42), 42);
    }

    #[test]
    fn concurrent_registry_usage() {
        let a = std::sync::Arc::new(ActiveTxns::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let a = a.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        let ts = t * 1000 + i;
                        let tok = a.register(ts);
                        a.deregister(tok);
                    }
                });
            }
        });
        assert!(a.is_empty());
    }

    #[test]
    fn registry_holds_many_concurrent() {
        let a = ActiveTxns::new();
        let tokens: Vec<_> = (0..100).map(|i| a.register(i)).collect();
        assert_eq!(a.len(), 100);
        assert_eq!(a.min_active_or(9999), 0);
        for t in tokens {
            a.deregister(t);
        }
        assert!(a.is_empty());
    }
}
