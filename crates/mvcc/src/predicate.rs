//! Precision-locking predicates for serializability validation (§2.1).
//!
//! "We track the predicate ranges on which the transaction filtered the
//! query result. During validation, it is checked whether any write of any
//! recently committed transaction intersects with the predicate ranges."
//! (The technique goes back to precision locking [Weikum & Vossen].)
//!
//! A write intersects a range predicate if either the value it removed
//! (`old`) or the value it introduced (`new`) falls inside the range —
//! both directions can change a predicate query's result.

use anker_storage::value::{rank, LogicalType};

/// Global reference to a column: `(table, column)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    pub table: u16,
    pub col: u16,
}

impl ColRef {
    pub fn new(table: u16, col: u16) -> ColRef {
        ColRef { table, col }
    }
}

/// One read predicate of a transaction. Range predicates compare via
/// [`anker_storage::value::rank`] — the same ordering scan filters and zone
/// maps use, so validation and filtering can never disagree.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// The transaction read the whole column (unfiltered scan or
    /// aggregation input).
    FullColumn { col: ColRef },
    /// The transaction filtered `col` on `lo <= value <= hi`.
    Range {
        col: ColRef,
        ty: LogicalType,
        lo: f64,
        hi: f64,
    },
    /// The transaction filtered `col` on equality with a dictionary code.
    DictEq { col: ColRef, code: u32 },
    /// The transaction read specific rows of `col` (index point reads).
    Rows { col: ColRef, rows: Vec<u32> },
}

impl Pred {
    /// The column this predicate covers.
    pub fn col_ref(&self) -> ColRef {
        match self {
            Pred::FullColumn { col }
            | Pred::Range { col, .. }
            | Pred::DictEq { col, .. }
            | Pred::Rows { col, .. } => *col,
        }
    }

    /// Does the committed write `(col, row, old, new)` intersect this
    /// predicate?
    pub fn intersects(&self, col: ColRef, row: u32, old: u64, new: u64) -> bool {
        match self {
            Pred::FullColumn { col: c } => *c == col,
            Pred::Range { col: c, ty, lo, hi } => {
                *c == col && {
                    let o = rank(old, *ty);
                    let n = rank(new, *ty);
                    (o >= *lo && o <= *hi) || (n >= *lo && n <= *hi)
                }
            }
            Pred::DictEq { col: c, code } => {
                *c == col && (old as u32 == *code || new as u32 == *code)
            }
            Pred::Rows { col: c, rows } => *c == col && rows.contains(&row),
        }
    }
}

/// The read-predicate set of one transaction.
#[derive(Debug, Clone, Default)]
pub struct PredicateSet {
    preds: Vec<Pred>,
}

impl PredicateSet {
    /// Empty set.
    pub fn new() -> PredicateSet {
        PredicateSet::default()
    }

    /// Record a predicate.
    pub fn add(&mut self, pred: Pred) {
        self.preds.push(pred);
    }

    /// Record a full-column read.
    pub fn add_full_column(&mut self, col: ColRef) {
        self.preds.push(Pred::FullColumn { col });
    }

    /// Record a range filter `lo <= col <= hi` (on the decoded value).
    pub fn add_range(&mut self, col: ColRef, ty: LogicalType, lo: f64, hi: f64) {
        self.preds.push(Pred::Range { col, ty, lo, hi });
    }

    /// Record a dictionary-equality filter.
    pub fn add_dict_eq(&mut self, col: ColRef, code: u32) {
        self.preds.push(Pred::DictEq { col, code });
    }

    /// Record a point read of one row.
    pub fn add_row(&mut self, col: ColRef, row: u32) {
        // Merge into the last Rows predicate of the same column if possible
        // (point reads arrive in bursts from index lookups).
        if let Some(Pred::Rows { col: c, rows }) = self.preds.last_mut() {
            if *c == col {
                rows.push(row);
                return;
            }
        }
        self.preds.push(Pred::Rows {
            col,
            rows: vec![row],
        });
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The (unsorted, possibly repeating) table ids the predicates cover —
    /// the validation-shard footprint of the transaction's read set.
    pub fn tables(&self) -> impl Iterator<Item = u16> + '_ {
        self.preds.iter().map(|p| p.col_ref().table)
    }

    /// Does any predicate intersect the committed write
    /// `(col, row, old → new)`?
    pub fn intersects_write(&self, col: ColRef, row: u32, old: u64, new: u64) -> bool {
        self.preds.iter().any(|p| p.intersects(col, row, old, new))
    }

    /// Drop all predicates (transaction reset).
    pub fn clear(&mut self) {
        self.preds.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anker_storage::value::Value;

    const C: ColRef = ColRef { table: 0, col: 1 };
    const D: ColRef = ColRef { table: 0, col: 2 };

    #[test]
    fn full_column_intersects_everything_on_that_column() {
        let p = Pred::FullColumn { col: C };
        assert!(p.intersects(C, 0, 1, 2));
        assert!(!p.intersects(D, 0, 1, 2));
    }

    #[test]
    fn range_checks_old_and_new() {
        let p = Pred::Range {
            col: C,
            ty: LogicalType::Int,
            lo: 10.0,
            hi: 20.0,
        };
        let enc = |v: i64| Value::Int(v).encode();
        // Write moves a value out of the range: still intersects (the row
        // would vanish from the predicate's result).
        assert!(p.intersects(C, 0, enc(15), enc(50)));
        // Write moves a value into the range.
        assert!(p.intersects(C, 0, enc(5), enc(12)));
        // Both sides outside: no intersection.
        assert!(!p.intersects(C, 0, enc(5), enc(50)));
        // Other column: never.
        assert!(!p.intersects(D, 0, enc(15), enc(15)));
    }

    #[test]
    fn range_on_doubles() {
        let p = Pred::Range {
            col: C,
            ty: LogicalType::Double,
            lo: 0.05,
            hi: 0.07,
        };
        let enc = |v: f64| Value::Double(v).encode();
        assert!(p.intersects(C, 0, enc(0.06), enc(0.5)));
        assert!(!p.intersects(C, 0, enc(0.01), enc(0.5)));
    }

    #[test]
    fn dict_equality() {
        let p = Pred::DictEq { col: C, code: 3 };
        let enc = |c: u32| Value::Dict(c).encode();
        assert!(p.intersects(C, 0, enc(3), enc(1)));
        assert!(p.intersects(C, 0, enc(1), enc(3)));
        assert!(!p.intersects(C, 0, enc(1), enc(2)));
    }

    #[test]
    fn row_point_reads() {
        let mut s = PredicateSet::new();
        s.add_row(C, 5);
        s.add_row(C, 9);
        s.add_row(D, 5);
        // Bursts on the same column merge into one predicate.
        assert_eq!(s.len(), 2);
        assert!(s.intersects_write(C, 9, 0, 1));
        assert!(!s.intersects_write(C, 7, 0, 1));
        assert!(s.intersects_write(D, 5, 0, 1));
    }

    #[test]
    fn set_combines_predicates() {
        let mut s = PredicateSet::new();
        s.add_range(C, LogicalType::Int, 0.0, 10.0);
        s.add_dict_eq(D, 2);
        let enc_i = |v: i64| Value::Int(v).encode();
        let enc_d = |c: u32| Value::Dict(c).encode();
        assert!(s.intersects_write(C, 0, enc_i(5), enc_i(100)));
        assert!(s.intersects_write(D, 0, enc_d(2), enc_d(0)));
        assert!(!s.intersects_write(D, 0, enc_d(1), enc_d(0)));
    }
}
