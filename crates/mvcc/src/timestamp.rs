//! Timestamp allocation with atomic commit visibility.
//!
//! The paper (§2.2.1, step 3) logs "both the start and end time of a
//! transaction's commit phase to ensure that both writes become visible
//! atomically". We realise that with two counters:
//!
//! * `next_commit` hands out commit timestamps at the *start* of the
//!   (serialized) install phase;
//! * `last_completed` is advanced to the commit timestamp only after *all*
//!   of the transaction's writes are installed.
//!
//! Readers draw their start timestamp from `last_completed`, so a reader can
//! never observe a half-installed commit: every commit with
//! `ts <= start_ts` is fully visible, every commit with `ts > start_ts` is
//! fully invisible (rows mid-install additionally carry [`PENDING`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Bit set in a row's write-timestamp word while its new value is being
/// installed. Readers that encounter it briefly spin — the install window
/// is a handful of stores.
pub const PENDING: u64 = 1 << 63;

/// The timestamp oracle.
#[derive(Debug)]
pub struct TsOracle {
    next_commit: AtomicU64,
    last_completed: AtomicU64,
}

impl Default for TsOracle {
    fn default() -> Self {
        TsOracle {
            // Timestamp 0 is the load timestamp: all initially loaded data
            // carries ts 0 and is visible to everyone.
            next_commit: AtomicU64::new(1),
            last_completed: AtomicU64::new(0),
        }
    }
}

impl TsOracle {
    /// Fresh oracle starting after the load timestamp 0.
    pub fn new() -> TsOracle {
        TsOracle::default()
    }

    /// Start timestamp for a new transaction: the newest fully-installed
    /// commit.
    #[inline]
    pub fn start_ts(&self) -> u64 {
        self.last_completed.load(Ordering::Acquire)
    }

    /// Allocate the next commit timestamp. Must be called inside the
    /// serialized commit section.
    #[inline]
    pub fn begin_commit(&self) -> u64 {
        self.next_commit.fetch_add(1, Ordering::Relaxed)
    }

    /// Publish `commit_ts` as fully installed. Must be called inside the
    /// serialized commit section, after all writes are in place.
    #[inline]
    pub fn complete_commit(&self, commit_ts: u64) {
        debug_assert!(commit_ts < PENDING, "timestamp space exhausted");
        debug_assert!(
            self.last_completed.load(Ordering::Relaxed) < commit_ts,
            "commits must complete in order"
        );
        self.last_completed.store(commit_ts, Ordering::Release);
    }

    /// The newest fully-installed commit timestamp.
    #[inline]
    pub fn last_completed(&self) -> u64 {
        self.last_completed.load(Ordering::Acquire)
    }

    /// Fast-forward the oracle to `ts`: the next commit timestamp will be
    /// `ts + 1` and `ts` counts as fully installed. Crash **recovery**
    /// uses this after replaying the WAL so post-recovery commits are
    /// numbered strictly after every recovered one — the redo log's
    /// ordering invariant. Must only be called before the database serves
    /// transactions (never moves backwards).
    pub fn advance_to(&self, ts: u64) {
        debug_assert!(ts < PENDING, "timestamp space exhausted");
        let cur = self.last_completed.load(Ordering::Acquire);
        assert!(
            cur <= ts,
            "oracle may only advance forwards (at {cur}, asked for {ts})"
        );
        self.next_commit.store(ts + 1, Ordering::Release);
        self.last_completed.store(ts, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_ts_trails_completion() {
        let o = TsOracle::new();
        assert_eq!(o.start_ts(), 0);
        let c1 = o.begin_commit();
        assert_eq!(c1, 1);
        // Not yet visible to new readers.
        assert_eq!(o.start_ts(), 0);
        o.complete_commit(c1);
        assert_eq!(o.start_ts(), 1);
    }

    #[test]
    fn commit_timestamps_are_unique_and_monotonic() {
        let o = TsOracle::new();
        let a = o.begin_commit();
        let b = o.begin_commit();
        assert!(b > a);
        o.complete_commit(a);
        o.complete_commit(b);
        assert_eq!(o.last_completed(), b);
    }

    #[test]
    fn pending_bit_is_above_any_timestamp() {
        let o = TsOracle::new();
        for _ in 0..1000 {
            let c = o.begin_commit();
            assert_eq!(c & PENDING, 0);
        }
    }
}
