//! Timestamp allocation with atomic commit visibility.
//!
//! The paper (§2.2.1, step 3) logs "both the start and end time of a
//! transaction's commit phase to ensure that both writes become visible
//! atomically". We realise that with two counters and an in-flight set:
//!
//! * `next_commit` hands out commit timestamps ([`TsOracle::begin_commit`]
//!   registers the timestamp as *in flight* atomically with allocation);
//! * `last_completed` is the **stable-timestamp watermark**: the largest
//!   `w` such that every commit with `ts <= w` has either fully installed
//!   its writes ([`TsOracle::complete_commit`]) or aborted
//!   ([`TsOracle::abort_commit`]).
//!
//! Commits may complete **out of order** (the concurrent commit pipeline
//! installs independently per transaction); the watermark only advances
//! over a timestamp once every *earlier* timestamp has settled, so a
//! reader drawing its start timestamp from `last_completed` can never
//! observe a half-installed commit: every commit with `ts <= start_ts` is
//! fully visible, every commit with `ts > start_ts` is fully invisible
//! (rows mid-install additionally carry [`PENDING`]).
//!
//! The same watermark is the engine's GC/pruning fallback horizon: nothing
//! above it is guaranteed installed, so version-chain GC, snapshot-area
//! recycling and epoch triggering must never use the raw `next_commit`
//! counter as "now".
//!
//! **Known contention point.** `begin_commit` / `complete_commit` /
//! `abort_commit` all serialize on the single `inflight` mutex, so the
//! oracle is the one spot where the otherwise-decentralized commit
//! pipeline still rendezvouses — a deliberate trade: the critical section
//! is a `BTreeSet` insert/remove (no I/O, no validation, no install), so
//! it is orders of magnitude shorter than the old whole-commit mutex it
//! replaced. If commit scaling across many cores becomes a goal, replace
//! the set with a lock-free in-flight min-tracker (per-slot epochs or a
//! concurrent heap); the watermark contract above is the only thing a
//! replacement must preserve.

use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bit set in a row's write-timestamp word while its new value is being
/// installed (the per-row install latch of the commit pipeline). Readers
/// that encounter it briefly spin — writers hold it across validation +
/// WAL append + install, still microseconds.
pub const PENDING: u64 = 1 << 63;

#[derive(Debug, Default)]
struct Inflight {
    /// Commit timestamps handed out but neither completed nor aborted.
    set: BTreeSet<u64>,
    /// When set, [`TsOracle::begin_commit`] parks new commits (stop-the-
    /// world window for homogeneous version-chain GC).
    frozen: bool,
}

/// The timestamp oracle.
#[derive(Debug)]
pub struct TsOracle {
    next_commit: AtomicU64,
    last_completed: AtomicU64,
    inflight: Mutex<Inflight>,
}

impl Default for TsOracle {
    fn default() -> Self {
        TsOracle {
            // Timestamp 0 is the load timestamp: all initially loaded data
            // carries ts 0 and is visible to everyone.
            next_commit: AtomicU64::new(1),
            last_completed: AtomicU64::new(0),
            inflight: Mutex::new(Inflight::default()),
        }
    }
}

impl TsOracle {
    /// Fresh oracle starting after the load timestamp 0.
    pub fn new() -> TsOracle {
        TsOracle::default()
    }

    /// Start timestamp for a new transaction: the stable watermark.
    #[inline]
    pub fn start_ts(&self) -> u64 {
        // ORDERING: Acquire pairs with `finish`'s Release store — a
        // transaction that starts at watermark W sees every install of
        // every commit with ts <= W.
        self.last_completed.load(Ordering::Acquire)
    }

    /// Allocate the next commit timestamp and register it as in flight.
    /// Every caller must eventually hand the timestamp back through
    /// [`TsOracle::complete_commit`] or [`TsOracle::abort_commit`], or the
    /// watermark stalls forever.
    ///
    /// **Blocks while the oracle is frozen.** A caller that holds any lock
    /// an *in-flight* committer might need (validation shards, the commit
    /// section) must use [`TsOracle::try_begin_commit`] and release those
    /// locks before waiting, or the freezer's drain deadlocks: the freeze
    /// holder waits for in-flight commits, an in-flight commit waits for
    /// the caller's lock, and the caller waits for the unfreeze.
    #[inline]
    pub fn begin_commit(&self) -> u64 {
        loop {
            if let Some(ts) = self.try_begin_commit() {
                return ts;
            }
            self.wait_unfrozen();
        }
    }

    /// Non-blocking [`TsOracle::begin_commit`]: `None` when a freezer
    /// currently parks allocation (see [`TsOracle::freeze_commits`]).
    #[inline]
    pub fn try_begin_commit(&self) -> Option<u64> {
        let mut inf = self.inflight.lock();
        if inf.frozen {
            return None;
        }
        let ts = self.next_commit.fetch_add(1, Ordering::Relaxed);
        inf.set.insert(ts);
        Some(ts)
    }

    /// Spin (yielding) until no freezer holds the oracle. Purely advisory:
    /// a new freeze may land between this returning and the caller's next
    /// [`TsOracle::try_begin_commit`], so callers loop.
    pub fn wait_unfrozen(&self) {
        // The condition's lock guard is a temporary — dropped before the
        // yield, so the freezer is never blocked out by this poll.
        while self.inflight.lock().frozen {
            std::thread::yield_now();
        }
    }

    /// Publish `commit_ts` as fully installed. Commits may complete in any
    /// order; the watermark advances to the largest prefix of settled
    /// timestamps.
    #[inline]
    pub fn complete_commit(&self, commit_ts: u64) {
        debug_assert!(commit_ts < PENDING, "timestamp space exhausted");
        self.finish(commit_ts);
    }

    /// Retire an aborted commit timestamp: it will never install anything,
    /// so the watermark may advance over it.
    #[inline]
    pub fn abort_commit(&self, commit_ts: u64) {
        self.finish(commit_ts);
    }

    fn finish(&self, commit_ts: u64) {
        let mut inf = self.inflight.lock();
        let was = inf.set.remove(&commit_ts);
        debug_assert!(was, "timestamp {commit_ts} finished twice or never begun");
        // Watermark = everything below the oldest still-in-flight commit,
        // or everything allocated when none is in flight. `next_commit`
        // only moves under this lock, so the empty-set read is exact.
        let wm = match inf.set.first() {
            Some(&oldest) => oldest - 1,
            None => self.next_commit.load(Ordering::Relaxed) - 1,
        };
        // ORDERING: Release publishes every install that happened-before
        // this completion; pairs with the Acquire in `start_ts` /
        // `last_completed`. (The guard load may be Relaxed: the watermark
        // only moves under the `inflight` lock held here.)
        if wm > self.last_completed.load(Ordering::Relaxed) {
            self.last_completed.store(wm, Ordering::Release);
        }
    }

    /// The stable watermark (see module docs).
    #[inline]
    pub fn last_completed(&self) -> u64 {
        // ORDERING: Acquire, same pairing as `start_ts`.
        self.last_completed.load(Ordering::Acquire)
    }

    /// True when no commit timestamp is in flight — the watermark equals
    /// the newest allocated timestamp and the version store is quiescent.
    pub fn drained(&self) -> bool {
        self.inflight.lock().set.is_empty()
    }

    /// Park all future [`TsOracle::begin_commit`] calls. Combine with a
    /// [`TsOracle::drained`] wait to get a commit-quiescent window (the
    /// homogeneous GC pass, which rewrites chain blocks no lock protects
    /// against concurrent installers).
    ///
    /// # Panics
    /// Panics when already frozen (freezers must serialize, e.g. under the
    /// engine's commit lock).
    pub fn freeze_commits(&self) {
        let mut inf = self.inflight.lock();
        assert!(!inf.frozen, "commit freeze is not reentrant");
        inf.frozen = true;
    }

    /// Non-panicking [`TsOracle::freeze_commits`]: returns `false` (and
    /// changes nothing) when another freezer already holds the freeze.
    /// For freezers that cannot serialize on an outer lock — e.g. an OLAP
    /// arrival forcing a commit-quiescent epoch must *not* hold the commit
    /// lock while it drains, or the in-flight committers it waits for
    /// could never install.
    pub fn try_freeze_commits(&self) -> bool {
        let mut inf = self.inflight.lock();
        if inf.frozen {
            return false;
        }
        inf.frozen = true;
        true
    }

    /// Re-admit commits after [`TsOracle::freeze_commits`].
    pub fn unfreeze_commits(&self) {
        self.inflight.lock().frozen = false;
    }

    /// Fast-forward the oracle to `ts`: the next commit timestamp will be
    /// `ts + 1` and `ts` counts as fully installed. Crash **recovery**
    /// uses this after replaying the WAL so post-recovery commits are
    /// numbered strictly after every recovered one — the redo log's
    /// ordering invariant. Must only be called before the database serves
    /// transactions (never moves backwards).
    pub fn advance_to(&self, ts: u64) {
        debug_assert!(ts < PENDING, "timestamp space exhausted");
        debug_assert!(self.drained(), "advance_to with commits in flight");
        // ORDERING: the Acquire/Release pairs here mirror the normal
        // watermark protocol so the first post-recovery `start_ts` reader
        // also sees every replayed install.
        let cur = self.last_completed.load(Ordering::Acquire);
        assert!(
            cur <= ts,
            "oracle may only advance forwards (at {cur}, asked for {ts})"
        );
        self.next_commit.store(ts + 1, Ordering::Release);
        self.last_completed.store(ts, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_ts_trails_completion() {
        let o = TsOracle::new();
        assert_eq!(o.start_ts(), 0);
        let c1 = o.begin_commit();
        assert_eq!(c1, 1);
        // Not yet visible to new readers.
        assert_eq!(o.start_ts(), 0);
        o.complete_commit(c1);
        assert_eq!(o.start_ts(), 1);
    }

    #[test]
    fn commit_timestamps_are_unique_and_monotonic() {
        let o = TsOracle::new();
        let a = o.begin_commit();
        let b = o.begin_commit();
        assert!(b > a);
        o.complete_commit(a);
        o.complete_commit(b);
        assert_eq!(o.last_completed(), b);
    }

    #[test]
    fn out_of_order_completion_gates_the_watermark() {
        let o = TsOracle::new();
        let a = o.begin_commit(); // 1
        let b = o.begin_commit(); // 2
        let c = o.begin_commit(); // 3
                                  // The newest completes first: nothing below it has settled, so the
                                  // watermark must not move — a reader at ts 3 would otherwise see
                                  // commit 3 but miss the still-installing commits 1 and 2.
        o.complete_commit(c);
        assert_eq!(o.last_completed(), 0);
        o.complete_commit(a);
        assert_eq!(o.last_completed(), 1, "hole at 2 still open");
        o.complete_commit(b);
        assert_eq!(o.last_completed(), 3, "hole filled: watermark jumps");
    }

    #[test]
    fn aborts_fill_watermark_holes() {
        let o = TsOracle::new();
        let a = o.begin_commit();
        let b = o.begin_commit();
        o.complete_commit(b);
        assert_eq!(o.last_completed(), 0);
        o.abort_commit(a);
        assert_eq!(o.last_completed(), b);
        assert!(o.drained());
    }

    #[test]
    fn freeze_blocks_new_commits_until_unfrozen() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let o = Arc::new(TsOracle::new());
        o.freeze_commits();
        assert!(o.drained());
        let entered = Arc::new(AtomicBool::new(false));
        let h = {
            let o = Arc::clone(&o);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                let ts = o.begin_commit();
                entered.store(true, Ordering::SeqCst);
                o.complete_commit(ts);
                ts
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!entered.load(Ordering::SeqCst), "begin_commit parked");
        o.unfreeze_commits();
        let ts = h.join().unwrap();
        assert_eq!(o.last_completed(), ts);
    }

    #[test]
    fn pending_bit_is_above_any_timestamp() {
        let o = TsOracle::new();
        for _ in 0..1000 {
            let c = o.begin_commit();
            assert_eq!(c & PENDING, 0);
            o.complete_commit(c);
        }
    }
}
