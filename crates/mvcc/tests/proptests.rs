//! Property-based tests of the MVCC core against simple oracles.

use anker_mvcc::{ScanStats, VersionedColumn};
use anker_storage::{ColumnArea, LogicalType};
use anker_vmem::Kernel;
use proptest::prelude::*;

const ROWS: u32 = 600;

/// A full multi-version history oracle: for every row, the list of
/// `(commit_ts, value)` in commit order (starting with the load at ts 0).
struct Oracle {
    history: Vec<Vec<(u64, u64)>>,
}

impl Oracle {
    fn new(rows: u32) -> Oracle {
        Oracle {
            history: (0..rows).map(|r| vec![(0, r as u64 * 7)]).collect(),
        }
    }

    fn install(&mut self, row: u32, ts: u64, value: u64) {
        self.history[row as usize].push((ts, value));
    }

    fn visible(&self, row: u32, start_ts: u64) -> u64 {
        self.history[row as usize]
            .iter()
            .rev()
            .find(|(ts, _)| *ts <= start_ts)
            .expect("load version always visible")
            .1
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Install `n_rows` random-row writes as one commit.
    Commit { rows: Vec<u32> },
    /// Freeze the current epoch (snapshot hand-over).
    Freeze,
    /// GC with the horizon at the given fraction of elapsed commits.
    Gc { horizon_percent: u8 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            6 => proptest::collection::vec(0..ROWS, 1..4).prop_map(|rows| Op::Commit { rows }),
            1 => Just(Op::Freeze),
            1 => (0..=100u8).prop_map(|horizon_percent| Op::Gc { horizon_percent }),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reads and scans agree with the oracle at every historical timestamp
    /// that retention still guarantees (after GC at horizon H, only
    /// timestamps >= H are probed).
    #[test]
    fn versioned_column_matches_oracle(ops in ops()) {
        let kernel = Kernel::default();
        let space = kernel.create_space();
        let area = ColumnArea::alloc(&space, ROWS).unwrap();
        area.fill((0..ROWS as u64).map(|r| r * 7)).unwrap();
        let vc = VersionedColumn::new(ROWS, LogicalType::Int);
        let mut oracle = Oracle::new(ROWS);
        let mut ts = 0u64;
        let mut safe_horizon = 0u64; // oldest ts reads are still guaranteed
        let mut last_freeze = 0u64;

        for op in &ops {
            match op {
                Op::Commit { rows } => {
                    ts += 1;
                    // The engine's write set holds one write per (col,row);
                    // mirror that by deduplicating within the commit.
                    let mut unique: Vec<u32> = rows.clone();
                    unique.sort_unstable();
                    unique.dedup();
                    for row in unique {
                        let value = ts * 1000 + row as u64;
                        vc.install(&area, row, value, ts).unwrap();
                        oracle.install(row, ts, value);
                    }
                }
                Op::Freeze => {
                    vc.freeze_epoch(ts);
                    last_freeze = ts;
                }
                Op::Gc { horizon_percent } => {
                    let horizon = ts * (*horizon_percent as u64) / 100;
                    vc.gc(horizon);
                    vc.release_frozen(horizon);
                    safe_horizon = safe_horizon.max(horizon);
                }
            }
        }

        // Point reads across the retained timestamp range.
        for probe_ts in safe_horizon..=ts {
            for row in (0..ROWS).step_by(37) {
                let got = vc.read(&area, row, probe_ts).unwrap();
                prop_assert_eq!(got, oracle.visible(row, probe_ts),
                    "row {} at ts {}", row, probe_ts);
            }
        }
        // A full scan at "now" and at the last freeze point (both safe).
        for probe_ts in [ts, last_freeze.max(safe_horizon)] {
            let mut stats = ScanStats::default();
            let mut got = Vec::with_capacity(ROWS as usize);
            vc.scan_visible(&area, probe_ts, |_, v| got.push(v), &mut stats).unwrap();
            for (row, &v) in got.iter().enumerate() {
                prop_assert_eq!(v, oracle.visible(row as u32, probe_ts),
                    "scan row {} at ts {}", row, probe_ts);
            }
        }
        // The unoptimised scan agrees with the optimised one.
        let mut stats = ScanStats::default();
        let mut a = Vec::new();
        let mut b = Vec::new();
        vc.scan_visible(&area, ts, |_, v| a.push(v), &mut stats).unwrap();
        vc.scan_visible_unoptimized(&area, ts, |_, v| b.push(v), &mut stats).unwrap();
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The newest-first and oldest-first ablation chains agree with each
    /// other and with a brute-force oracle on arbitrary histories.
    #[test]
    fn chain_orders_agree(
        n_versions in 1usize..60,
        probes in proptest::collection::vec(0u64..80, 1..20),
    ) {
        use anker_mvcc::chain_order::build_both;
        let history: Vec<(u64, u64)> =
            (1..=n_versions as u64).map(|i| (i * 11, i)).collect();
        let (nf, of) = build_both(&history);
        for &p in &probes {
            let expected = history.iter().rev().find(|(_, ts)| *ts <= p).map(|(v, _)| *v);
            prop_assert_eq!(nf.find(p).0, expected);
            prop_assert_eq!(of.find(p).0, expected);
        }
    }
}
