//! The 9 hand-tailored OLTP transactions of Figure 6.
//!
//! Parameter rules (§5.2): VARCHAR attributes are set to an existing value
//! picked uniformly at random (a dictionary code here); DOUBLE attributes
//! are read and perturbed by ±x % with x ∈ {1..10}; DATE attributes are
//! shifted by ±x days with x ∈ {1..10}. Keys are sampled uniformly from the
//! loaded keys and resolved through the hash indexes.

use crate::gen::TpchDb;
use anker_core::{DbError, Result, Txn, TxnKind};
use anker_storage::Value;
use rand::Rng;

/// The nine transaction templates of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OltpKind {
    /// `update lineitem set l_returnflag=? where <key>`
    Q1,
    /// `update lineitem set l_linestatus=?, l_discount=? where <key>`
    Q2,
    /// `update lineitem set l_extendedprice=?, l_shipdate=? where <key>`
    Q3,
    /// `update orders set o_orderpriority=?, o_orderstatus=? where <key>`
    Q4,
    /// `update orders set o_orderpriority=? where <key>`
    Q5,
    /// `update orders set o_totalprice=? where <key>`
    Q6,
    /// lineitem price + orders status (two tables)
    Q7,
    /// `update part set p_brand=?, p_retailprice=? where <key>`
    Q8,
    /// lineitem flag + orders price + part price (three tables)
    Q9,
}

impl OltpKind {
    /// All nine templates.
    pub const ALL: [OltpKind; 9] = [
        OltpKind::Q1,
        OltpKind::Q2,
        OltpKind::Q3,
        OltpKind::Q4,
        OltpKind::Q5,
        OltpKind::Q6,
        OltpKind::Q7,
        OltpKind::Q8,
        OltpKind::Q9,
    ];

    /// Pick a template uniformly.
    pub fn sample(rng: &mut impl Rng) -> OltpKind {
        Self::ALL[rng.random_range(0..Self::ALL.len())]
    }
}

/// Perturb a double by ±x %, x ∈ {1..10} (§5.2).
fn perturb_double(v: f64, rng: &mut impl Rng) -> f64 {
    let x = rng.random_range(1..=10) as f64;
    let sign = if rng.random_range(0..2) == 0 {
        1.0
    } else {
        -1.0
    };
    v * (1.0 + sign * x / 100.0)
}

/// Shift a date by ±x days, x ∈ {1..10}, clamped to the epoch.
fn perturb_date(v: i32, rng: &mut impl Rng) -> i32 {
    let x = rng.random_range(1..=10);
    let sign = if rng.random_range(0..2) == 0 { 1 } else { -1 };
    (v + sign * x).max(0)
}

fn random_lineitem_row(t: &TpchDb, rng: &mut impl Rng) -> u32 {
    let key = t.lineitem_keys[rng.random_range(0..t.lineitem_keys.len())];
    t.li_by_key.get(&key).expect("key index complete")
}

fn random_order_row(t: &TpchDb, rng: &mut impl Rng) -> u32 {
    let key = t.order_keys[rng.random_range(0..t.order_keys.len())];
    t.ord_by_key.get(&key).expect("key index complete")
}

fn random_part_row(t: &TpchDb, rng: &mut impl Rng) -> u32 {
    // Part keys are dense 1..=n_parts.
    rng.random_range(0..t.n_parts) as u32
}

fn update_lineitem_returnflag(
    t: &TpchDb,
    txn: &mut Txn,
    row: u32,
    rng: &mut impl Rng,
) -> Result<()> {
    let code = rng.random_range(0..t.rf_dict.len() as u32);
    txn.update_value(t.lineitem, t.li.returnflag, row, Value::Dict(code))
}

fn update_orders_totalprice(t: &TpchDb, txn: &mut Txn, row: u32, rng: &mut impl Rng) -> Result<()> {
    let cur = txn.get_value(t.orders, t.ord.totalprice, row)?.as_double();
    txn.update_value(
        t.orders,
        t.ord.totalprice,
        row,
        Value::Double(perturb_double(cur, rng)),
    )
}

fn update_part_retailprice(t: &TpchDb, txn: &mut Txn, row: u32, rng: &mut impl Rng) -> Result<()> {
    let cur = txn.get_value(t.part, t.prt.retailprice, row)?.as_double();
    txn.update_value(
        t.part,
        t.prt.retailprice,
        row,
        Value::Double(perturb_double(cur, rng)),
    )
}

/// Execute one OLTP transaction of the given kind with freshly sampled
/// parameters. Returns `Ok(commit_ts)` or the abort it hit.
pub fn run_oltp(t: &TpchDb, kind: OltpKind, rng: &mut impl Rng) -> Result<u64> {
    let mut txn = t.db.begin(TxnKind::Oltp);
    let outcome = run_oltp_in(t, &mut txn, kind, rng);
    match outcome {
        Ok(()) => txn.commit(),
        Err(e) => {
            txn.abort();
            Err(e)
        }
    }
}

/// Execute the body of one OLTP transaction inside an existing transaction
/// (the driver uses this; tests can inspect before commit).
pub fn run_oltp_in(t: &TpchDb, txn: &mut Txn, kind: OltpKind, rng: &mut impl Rng) -> Result<()> {
    match kind {
        OltpKind::Q1 => {
            let row = random_lineitem_row(t, rng);
            update_lineitem_returnflag(t, txn, row, rng)?;
        }
        OltpKind::Q2 => {
            let row = random_lineitem_row(t, rng);
            let ls = rng.random_range(0..t.ls_dict.len() as u32);
            txn.update_value(t.lineitem, t.li.linestatus, row, Value::Dict(ls))?;
            let cur = txn.get_value(t.lineitem, t.li.discount, row)?.as_double();
            txn.update_value(
                t.lineitem,
                t.li.discount,
                row,
                Value::Double(perturb_double(cur, rng).clamp(0.0, 1.0)),
            )?;
        }
        OltpKind::Q3 => {
            let row = random_lineitem_row(t, rng);
            let price = txn
                .get_value(t.lineitem, t.li.extendedprice, row)?
                .as_double();
            txn.update_value(
                t.lineitem,
                t.li.extendedprice,
                row,
                Value::Double(perturb_double(price, rng)),
            )?;
            let ship = txn.get_value(t.lineitem, t.li.shipdate, row)?.as_date();
            txn.update_value(
                t.lineitem,
                t.li.shipdate,
                row,
                Value::Date(perturb_date(ship, rng)),
            )?;
        }
        OltpKind::Q4 => {
            let row = random_order_row(t, rng);
            let prio = rng.random_range(0..t.prio_dict.len() as u32);
            let status = rng.random_range(0..t.status_dict.len() as u32);
            txn.update_value(t.orders, t.ord.orderpriority, row, Value::Dict(prio))?;
            txn.update_value(t.orders, t.ord.orderstatus, row, Value::Dict(status))?;
        }
        OltpKind::Q5 => {
            let row = random_order_row(t, rng);
            let prio = rng.random_range(0..t.prio_dict.len() as u32);
            txn.update_value(t.orders, t.ord.orderpriority, row, Value::Dict(prio))?;
        }
        OltpKind::Q6 => {
            let row = random_order_row(t, rng);
            update_orders_totalprice(t, txn, row, rng)?;
        }
        OltpKind::Q7 => {
            let li_row = random_lineitem_row(t, rng);
            let price = txn
                .get_value(t.lineitem, t.li.extendedprice, li_row)?
                .as_double();
            txn.update_value(
                t.lineitem,
                t.li.extendedprice,
                li_row,
                Value::Double(perturb_double(price, rng)),
            )?;
            // The paper updates the *matching* order of the lineitem.
            let okey = t.lineitem_keys[li_row as usize].0;
            let o_row = t.ord_by_key.get(&okey).expect("order exists");
            let status = rng.random_range(0..t.status_dict.len() as u32);
            txn.update_value(t.orders, t.ord.orderstatus, o_row, Value::Dict(status))?;
        }
        OltpKind::Q8 => {
            let row = random_part_row(t, rng);
            let brand = rng.random_range(0..t.brand_dict.len() as u32);
            txn.update_value(t.part, t.prt.brand, row, Value::Dict(brand))?;
            update_part_retailprice(t, txn, row, rng)?;
        }
        OltpKind::Q9 => {
            let li_row = random_lineitem_row(t, rng);
            update_lineitem_returnflag(t, txn, li_row, rng)?;
            let okey = t.lineitem_keys[li_row as usize].0;
            let o_row = t.ord_by_key.get(&okey).expect("order exists");
            update_orders_totalprice(t, txn, o_row, rng)?;
            let p_row = random_part_row(t, rng);
            update_part_retailprice(t, txn, p_row, rng)?;
        }
    }
    Ok(())
}

/// True if the error is a normal optimistic abort (retryable), false for
/// real failures.
pub fn is_abort(e: &DbError) -> bool {
    matches!(e, DbError::Aborted(_))
}
