//! The OLAP side of the workload: TPC-H Q1, Q4, Q6, Q17 and the three
//! full-table scans (§5.2 — "in total, we have 7 OLAP transactions").
//!
//! Queries are hand-planned physical operators over the typed scan API:
//! predicates go through [`Txn::scan_on`]'s `ScanBuilder`, which pushes
//! them into the block loops (zone-map pruning on snapshots) and registers
//! the matching precision locks automatically; small-group aggregation
//! runs over dictionary codes, and index probes drive the Q4 semi-join and
//! the Q17 part → lineitem join.

use crate::gen::{days, TpchDb, LAST_ORDER_DATE};
use anker_core::{Result, Txn};
use rand::Rng;

/// The seven OLAP transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OlapQuery {
    Q1,
    Q4,
    Q6,
    Q17,
    ScanLineitem,
    ScanOrders,
    ScanPart,
}

impl OlapQuery {
    /// All seven, in the paper's order.
    pub const ALL: [OlapQuery; 7] = [
        OlapQuery::Q1,
        OlapQuery::Q4,
        OlapQuery::Q6,
        OlapQuery::Q17,
        OlapQuery::ScanLineitem,
        OlapQuery::ScanOrders,
        OlapQuery::ScanPart,
    ];

    /// Display name used in result tables.
    pub fn name(&self) -> &'static str {
        match self {
            OlapQuery::Q1 => "TPCH-Q1",
            OlapQuery::Q4 => "TPCH-Q4",
            OlapQuery::Q6 => "TPCH-Q6",
            OlapQuery::Q17 => "TPCH-Q17",
            OlapQuery::ScanLineitem => "LINEITEM-Scan",
            OlapQuery::ScanOrders => "ORDERS-Scan",
            OlapQuery::ScanPart => "PART-Scan",
        }
    }
}

/// One result row of Q1 (group by return flag, line status).
#[derive(Debug, Clone, PartialEq)]
pub struct Q1Row {
    pub returnflag: u32,
    pub linestatus: u32,
    pub sum_qty: f64,
    pub sum_base_price: f64,
    pub sum_disc_price: f64,
    pub sum_charge: f64,
    pub avg_qty: f64,
    pub avg_price: f64,
    pub avg_disc: f64,
    pub count: u64,
}

/// TPC-H Q1: pricing summary report over LINEITEM with
/// `l_shipdate <= '1998-12-01' - delta days`, `delta ∈ [60, 120]`.
pub fn q1(t: &TpchDb, txn: &mut Txn, delta_days: i32) -> Result<Vec<Q1Row>> {
    assert!((60..=120).contains(&delta_days), "per TPC-H spec");
    let cutoff = days(1998, 12, 1) - delta_days;
    let li = &t.li;
    // 3 return flags x 2 line statuses = 6 groups, array-aggregated.
    #[derive(Default, Clone, Copy)]
    struct Acc {
        qty: f64,
        base: f64,
        disc_price: f64,
        charge: f64,
        disc: f64,
        count: u64,
    }
    let mut groups = [Acc::default(); 6];
    txn.scan_on(t.lineitem)
        .range_i64(li.shipdate, i64::MIN, cutoff as i64)
        .project(&[
            li.returnflag,
            li.linestatus,
            li.quantity,
            li.extendedprice,
            li.discount,
            li.tax,
        ])
        .for_each(|_, v| {
            let rf = v[0] as u32 as usize;
            let ls = v[1] as u32 as usize;
            let qty = f64::from_bits(v[2]);
            let price = f64::from_bits(v[3]);
            let disc = f64::from_bits(v[4]);
            let tax = f64::from_bits(v[5]);
            let g = &mut groups[rf * 2 + ls];
            g.qty += qty;
            g.base += price;
            g.disc_price += price * (1.0 - disc);
            g.charge += price * (1.0 - disc) * (1.0 + tax);
            g.disc += disc;
            g.count += 1;
        })?;
    let mut rows = Vec::new();
    for rf in 0..3u32 {
        for ls in 0..2u32 {
            let g = groups[(rf * 2 + ls) as usize];
            if g.count == 0 {
                continue;
            }
            let n = g.count as f64;
            rows.push(Q1Row {
                returnflag: rf,
                linestatus: ls,
                sum_qty: g.qty,
                sum_base_price: g.base,
                sum_disc_price: g.disc_price,
                sum_charge: g.charge,
                avg_qty: g.qty / n,
                avg_price: g.base / n,
                avg_disc: g.disc / n,
                count: g.count,
            });
        }
    }
    Ok(rows)
}

/// TPC-H Q4: order-priority checking. Counts orders per priority placed in
/// a given quarter that have at least one lineitem with
/// `l_commitdate < l_receiptdate` (semi-join probed through the
/// orderkey → lineitem-range index).
pub fn q4(t: &TpchDb, txn: &mut Txn, quarter_start: i32) -> Result<Vec<(u32, u64)>> {
    let lo = quarter_start;
    // Three months, spec-approximate.
    let hi = quarter_start + 90;
    // Pass 1: collect qualifying orders from the ORDERS scan (dates are
    // integral, so `[lo, hi)` is `[lo, hi - 1]`).
    let mut candidates: Vec<(u32, i64)> = Vec::new(); // (priority, orderkey)
    txn.scan_on(t.orders)
        .range_i64(t.ord.orderdate, lo as i64, hi as i64 - 1)
        .project(&[t.ord.orderpriority, t.ord.orderkey])
        .for_each(|_, v| candidates.push((v[0] as u32, v[1] as i64)))?;
    // Pass 2: EXISTS probe per candidate order.
    let mut counts = [0u64; 5];
    for (prio, okey) in candidates {
        let Some((start, n)) = t.li_by_orderkey.get(&okey) else {
            continue;
        };
        for row in start..start + n {
            let commit = txn.get_value(t.lineitem, t.li.commitdate, row)?.as_date();
            let receipt = txn.get_value(t.lineitem, t.li.receiptdate, row)?.as_date();
            if commit < receipt {
                counts[prio as usize] += 1;
                break;
            }
        }
    }
    Ok((0..5u32).map(|p| (p, counts[p as usize])).collect())
}

/// TPC-H Q6: forecasting revenue change.
/// `sum(l_extendedprice * l_discount)` where shipdate in `[year, year+1)`,
/// `discount in [d - 0.01, d + 0.01]`, `quantity < qty`.
pub fn q6(t: &TpchDb, txn: &mut Txn, year: i32, discount: f64, qty: f64) -> Result<f64> {
    let lo = days(year, 1, 1);
    let hi = days(year + 1, 1, 1);
    let dlo = discount - 0.01;
    let dhi = discount + 0.01;
    let li = &t.li;
    let mut revenue = 0.0;
    // The shipdate range is the selective predicate: on chronologically
    // loaded lineitems, zone maps prune every block outside the year.
    txn.scan_on(t.lineitem)
        .range_i64(li.shipdate, lo as i64, hi as i64 - 1)
        .range_f64(li.discount, dlo - 1e-9, dhi + 1e-9)
        .lt_f64(li.quantity, qty)
        .project(&[li.extendedprice, li.discount])
        .for_each(|_, v| revenue += f64::from_bits(v[0]) * f64::from_bits(v[1]))?;
    Ok(revenue)
}

/// TPC-H Q17: small-quantity-order revenue. For parts of one brand and
/// container, sums the price of lineitems whose quantity is below 20 % of
/// the part's average quantity; probes lineitems through the partkey
/// multi-index.
pub fn q17(t: &TpchDb, txn: &mut Txn, brand_code: u32, container_code: u32) -> Result<f64> {
    // Scan PART for matching part keys (dense keys: partkey = row + 1).
    // Both equality predicates push down; no projection is needed — the
    // row id is the key.
    let mut parts: Vec<i64> = Vec::new();
    txn.scan_on(t.part)
        .dict_eq(t.prt.brand, brand_code)
        .dict_eq(t.prt.container, container_code)
        .for_each(|row, _| parts.push(row as i64 + 1))?;
    let mut total = 0.0;
    for pk in parts {
        let rows = t.li_by_partkey.get(&pk);
        if rows.is_empty() {
            continue;
        }
        let mut sum_q = 0.0;
        for &r in rows {
            sum_q += txn.get_value(t.lineitem, t.li.quantity, r)?.as_double();
        }
        let threshold = 0.2 * (sum_q / rows.len() as f64);
        for &r in rows {
            let q = txn.get_value(t.lineitem, t.li.quantity, r)?.as_double();
            if q < threshold {
                total += txn
                    .get_value(t.lineitem, t.li.extendedprice, r)?
                    .as_double();
            }
        }
    }
    Ok(total / 7.0)
}

/// Full-table scan transaction: reads every column of the table and folds
/// a checksum (the paper adds "a simple scan transaction that runs over the
/// respective table" for each table).
pub fn scan_table(t: &TpchDb, txn: &mut Txn, which: OlapQuery) -> Result<u64> {
    let (table, cols): (_, Vec<_>) = match which {
        OlapQuery::ScanLineitem => (
            t.lineitem,
            vec![
                t.li.orderkey,
                t.li.partkey,
                t.li.quantity,
                t.li.extendedprice,
                t.li.discount,
                t.li.tax,
                t.li.returnflag,
                t.li.linestatus,
                t.li.shipdate,
                t.li.commitdate,
                t.li.receiptdate,
            ],
        ),
        OlapQuery::ScanOrders => (
            t.orders,
            vec![
                t.ord.orderkey,
                t.ord.orderdate,
                t.ord.orderpriority,
                t.ord.orderstatus,
                t.ord.totalprice,
            ],
        ),
        OlapQuery::ScanPart => (
            t.part,
            vec![
                t.prt.partkey,
                t.prt.brand,
                t.prt.container,
                t.prt.retailprice,
            ],
        ),
        other => panic!("scan_table called with {other:?}"),
    };
    let mut checksum = 0u64;
    txn.scan_on(table).project(&cols).for_each(|_, v| {
        for &w in v {
            checksum = checksum.wrapping_mul(31).wrapping_add(w);
        }
    })?;
    Ok(checksum)
}

/// A sampled parameter set for one OLAP query, drawn per the TPC-H
/// specification bounds (§5.2: "we pick the configuration parameters of the
/// query randomly within the bounds given in the TPC-H specification").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OlapParams {
    Q1 { delta_days: i32 },
    Q4 { quarter_start: i32 },
    Q6 { year: i32, discount: f64, qty: f64 },
    Q17 { brand: u32, container: u32 },
    Scan(OlapQuery),
}

/// Sample parameters for `q` using `rng`.
pub fn sample_params(q: OlapQuery, rng: &mut impl Rng) -> OlapParams {
    match q {
        OlapQuery::Q1 => OlapParams::Q1 {
            delta_days: rng.random_range(60..=120),
        },
        OlapQuery::Q4 => {
            // A random quarter between 1993-01 and 1997-10.
            let quarter = rng.random_range(0..20);
            let year = 1993 + quarter / 4;
            let month = 1 + (quarter % 4) * 3;
            OlapParams::Q4 {
                quarter_start: days(year, month as u32, 1),
            }
        }
        OlapQuery::Q6 => OlapParams::Q6 {
            year: rng.random_range(1993..=1997),
            discount: rng.random_range(2..=9) as f64 / 100.0,
            qty: if rng.random_range(0..2) == 0 {
                24.0
            } else {
                25.0
            },
        },
        OlapQuery::Q17 => OlapParams::Q17 {
            brand: rng.random_range(0..25),
            container: rng.random_range(0..40),
        },
        scan => OlapParams::Scan(scan),
    }
}

/// Opaque result of one OLAP execution (comparable across configurations).
#[derive(Debug, Clone, PartialEq)]
pub enum OlapResult {
    Q1(Vec<Q1Row>),
    Q4(Vec<(u32, u64)>),
    Revenue(f64),
    Checksum(u64),
}

/// Execute `params` inside `txn`.
pub fn run_olap(t: &TpchDb, txn: &mut Txn, params: OlapParams) -> Result<OlapResult> {
    Ok(match params {
        OlapParams::Q1 { delta_days } => OlapResult::Q1(q1(t, txn, delta_days)?),
        OlapParams::Q4 { quarter_start } => OlapResult::Q4(q4(t, txn, quarter_start)?),
        OlapParams::Q6 {
            year,
            discount,
            qty,
        } => OlapResult::Revenue(q6(t, txn, year, discount, qty)?),
        OlapParams::Q17 { brand, container } => OlapResult::Revenue(q17(t, txn, brand, container)?),
        OlapParams::Scan(which) => OlapResult::Checksum(scan_table(t, txn, which)?),
    })
}

/// Sanity guard for Q4's date arithmetic.
#[allow(dead_code)]
fn _q4_quarters_fit() {
    debug_assert!(days(1997, 10, 1) + 90 < LAST_ORDER_DATE + 200);
}
