//! Deterministic TPC-H-shaped data generation for LINEITEM, ORDERS, and
//! PART (the tables of the paper's workload, §5.2).
//!
//! The official `dbgen` is not redistributable here; this generator
//! reproduces the schema, key structure (sparse order keys, dense part
//! keys, 1–7 lineitems per order), value domains, and the date and
//! selectivity relationships the evaluated queries depend on.

use anker_core::{AnkerDb, DbConfig, TableId};
use anker_storage::value::date;
use anker_storage::{
    ColumnDef, ColumnId, ContiguousIndex, Dictionary, HashIndex, LogicalType, MultiIndex, Schema,
    Value,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The day every TPC-H date ends by (1998-12-01 is the "current date").
pub const END_DATE_1998_12_01: i32 = 2526;
/// Last generatable order date: 1998-08-02.
pub const LAST_ORDER_DATE: i32 = 2405;
/// Cutoff deciding return flags and line status: 1995-06-17.
pub const CUTOFF_1995_06_17: i32 = 1263;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// TPC-H scale factor: SF 1 ≈ 1.5 M orders / 6 M lineitems / 200 k
    /// parts. The paper's experiments fit SF ≈ 0.25 (1.5 GB of tables); the
    /// scaled default here is 0.05.
    pub scale_factor: f64,
    /// RNG seed; identical seeds generate identical databases.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale_factor: 0.05,
            seed: 42,
        }
    }
}

impl TpchConfig {
    /// Configuration at a given scale factor (default seed).
    pub fn at_scale(scale_factor: f64) -> TpchConfig {
        TpchConfig {
            scale_factor,
            ..Default::default()
        }
    }
}

/// Cached column ids of LINEITEM.
#[derive(Debug, Clone, Copy)]
pub struct LineitemCols {
    pub orderkey: ColumnId,
    pub linenumber: ColumnId,
    pub partkey: ColumnId,
    pub quantity: ColumnId,
    pub extendedprice: ColumnId,
    pub discount: ColumnId,
    pub tax: ColumnId,
    pub returnflag: ColumnId,
    pub linestatus: ColumnId,
    pub shipdate: ColumnId,
    pub commitdate: ColumnId,
    pub receiptdate: ColumnId,
}

/// Cached column ids of ORDERS.
#[derive(Debug, Clone, Copy)]
pub struct OrdersCols {
    pub orderkey: ColumnId,
    pub orderdate: ColumnId,
    pub orderpriority: ColumnId,
    pub orderstatus: ColumnId,
    pub totalprice: ColumnId,
}

/// Cached column ids of PART.
#[derive(Debug, Clone, Copy)]
pub struct PartCols {
    pub partkey: ColumnId,
    pub brand: ColumnId,
    pub container: ColumnId,
    pub retailprice: ColumnId,
}

/// The loaded TPC-H database: an [`AnkerDb`] with the three tables, their
/// dictionaries, and the indexes used by OLTP point updates and the
/// Q4/Q17 join paths.
pub struct TpchDb {
    pub db: AnkerDb,
    pub lineitem: TableId,
    pub orders: TableId,
    pub part: TableId,
    pub li: LineitemCols,
    pub ord: OrdersCols,
    pub prt: PartCols,
    /// `(l_orderkey, l_linenumber)` → lineitem row.
    pub li_by_key: HashIndex<(i64, i64)>,
    /// `l_orderkey` → contiguous lineitem row range.
    pub li_by_orderkey: ContiguousIndex<i64>,
    /// `l_partkey` → lineitem rows.
    pub li_by_partkey: MultiIndex<i64>,
    /// `o_orderkey` → orders row.
    pub ord_by_key: HashIndex<i64>,
    /// All order keys (parameter sampling).
    pub order_keys: Vec<i64>,
    /// `(orderkey, linenumber)` of every lineitem row (parameter
    /// sampling).
    pub lineitem_keys: Vec<(i64, i64)>,
    /// Number of parts (part keys are dense `1..=n_parts`).
    pub n_parts: i64,
    pub rf_dict: Arc<Dictionary>,
    pub ls_dict: Arc<Dictionary>,
    pub prio_dict: Arc<Dictionary>,
    pub status_dict: Arc<Dictionary>,
    pub brand_dict: Arc<Dictionary>,
    pub container_dict: Arc<Dictionary>,
}

impl std::fmt::Debug for TpchDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TpchDb")
            .field("lineitem_rows", &self.db.rows(self.lineitem))
            .field("orders_rows", &self.db.rows(self.orders))
            .field("part_rows", &self.db.rows(self.part))
            .finish()
    }
}

/// The 5 order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

fn brands() -> Vec<String> {
    let mut v = Vec::with_capacity(25);
    for m in 1..=5 {
        for n in 1..=5 {
            v.push(format!("Brand#{m}{n}"));
        }
    }
    v
}

fn containers() -> Vec<String> {
    let sizes = ["SM", "LG", "MED", "JUMBO", "WRAP"];
    let types = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
    let mut v = Vec::with_capacity(40);
    for s in sizes {
        for t in types {
            v.push(format!("{s} {t}"));
        }
    }
    v
}

/// TPC-H retail price formula (scaled to dollars).
fn retail_price(partkey: i64) -> f64 {
    (90_000.0 + ((partkey % 20_001) as f64) / 10.0 + 100.0 * ((partkey % 1_000) as f64)) / 100.0
}

/// Generate and load a TPC-H database under the given database
/// configuration.
pub fn generate(db_config: DbConfig, cfg: &TpchConfig) -> TpchDb {
    let sf = cfg.scale_factor;
    assert!(sf > 0.0, "scale factor must be positive");
    let n_orders = ((150_000.0 * sf) as usize).max(16);
    let n_parts = ((200_000.0 * sf) as usize).max(64) as i64;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // ---------------- dictionaries ----------------
    let rf_dict = Arc::new(Dictionary::with_values(["A", "N", "R"]));
    let ls_dict = Arc::new(Dictionary::with_values(["F", "O"]));
    let prio_dict = Arc::new(Dictionary::with_values(PRIORITIES));
    let status_dict = Arc::new(Dictionary::with_values(["F", "O", "P"]));
    let brand_dict = Arc::new(Dictionary::with_values(brands()));
    let container_dict = Arc::new(Dictionary::with_values(containers()));

    // ---------------- ORDERS ----------------
    let mut o_orderkey = Vec::with_capacity(n_orders);
    let mut o_orderdate = Vec::with_capacity(n_orders);
    let mut o_priority = Vec::with_capacity(n_orders);
    let mut o_status = Vec::with_capacity(n_orders);
    let mut o_totalprice = Vec::with_capacity(n_orders);
    for i in 0..n_orders {
        // Sparse keys: the first 8 keys of every 32-key block, like dbgen.
        let key = ((i as i64) / 8) * 32 + (i as i64) % 8 + 1;
        o_orderkey.push(key);
        // Orders arrive roughly chronologically: the date advances with the
        // key, jittered by ±45 days. Key ranges and date ranges stay the
        // same as before; the correlation is what gives date predicates
        // their zone-map pruning on clustered storage (every real OLTP
        // system appends in arrival order).
        let base = (i as i64 * LAST_ORDER_DATE as i64 / n_orders.max(1) as i64) as i32;
        let jitter = rng.random_range(-45..=45);
        o_orderdate.push((base + jitter).clamp(0, LAST_ORDER_DATE));
        o_priority.push(rng.random_range(0..PRIORITIES.len() as u32));
        o_status.push(rng.random_range(0..3u32));
        o_totalprice.push(rng.random_range(1_000.0..500_000.0f64));
    }

    // ---------------- LINEITEM ----------------
    let mut l_orderkey: Vec<i64> = Vec::new();
    let mut l_linenumber: Vec<i64> = Vec::new();
    let mut l_partkey: Vec<i64> = Vec::new();
    let mut l_quantity: Vec<f64> = Vec::new();
    let mut l_extprice: Vec<f64> = Vec::new();
    let mut l_discount: Vec<f64> = Vec::new();
    let mut l_tax: Vec<f64> = Vec::new();
    let mut l_rf: Vec<u32> = Vec::new();
    let mut l_ls: Vec<u32> = Vec::new();
    let mut l_ship: Vec<i32> = Vec::new();
    let mut l_commit: Vec<i32> = Vec::new();
    let mut l_receipt: Vec<i32> = Vec::new();
    for (i, &okey) in o_orderkey.iter().enumerate() {
        let lines = rng.random_range(1..=7);
        let odate = o_orderdate[i];
        for line in 1..=lines {
            let partkey = rng.random_range(1..=n_parts);
            let qty = rng.random_range(1..=50) as f64;
            let ship = odate + rng.random_range(1..=121);
            let commit = odate + rng.random_range(30..=90);
            let receipt = ship + rng.random_range(1..=30);
            l_orderkey.push(okey);
            l_linenumber.push(line);
            l_partkey.push(partkey);
            l_quantity.push(qty);
            l_extprice.push(qty * retail_price(partkey));
            l_discount.push(rng.random_range(0..=10) as f64 / 100.0);
            l_tax.push(rng.random_range(0..=8) as f64 / 100.0);
            // Return-flag codes: A=0, N=1, R=2. Early receipts are returned
            // (A or R, uniform); later ones are N — like dbgen.
            l_rf.push(if receipt <= CUTOFF_1995_06_17 {
                if rng.random_range(0..2) == 0 {
                    0
                } else {
                    2
                }
            } else {
                1
            });
            l_ls.push(if ship > CUTOFF_1995_06_17 { 1 } else { 0 }); // O : F
            l_ship.push(ship);
            l_commit.push(commit);
            l_receipt.push(receipt);
        }
    }

    let n_lineitem = l_orderkey.len();

    // ---------------- PART ----------------
    let mut p_brand = Vec::with_capacity(n_parts as usize);
    let mut p_container = Vec::with_capacity(n_parts as usize);
    for _ in 0..n_parts {
        p_brand.push(rng.random_range(0..25u32));
        p_container.push(rng.random_range(0..40u32));
    }

    // ---------------- load into AnKerDB ----------------
    let db = AnkerDb::new(db_config);
    let lineitem = db.create_table(
        "lineitem",
        Schema::new(vec![
            ColumnDef::new("l_orderkey", LogicalType::Int),
            ColumnDef::new("l_linenumber", LogicalType::Int),
            ColumnDef::new("l_partkey", LogicalType::Int),
            ColumnDef::new("l_quantity", LogicalType::Double),
            ColumnDef::new("l_extendedprice", LogicalType::Double),
            ColumnDef::new("l_discount", LogicalType::Double),
            ColumnDef::new("l_tax", LogicalType::Double),
            ColumnDef::dict("l_returnflag", Arc::clone(&rf_dict)),
            ColumnDef::dict("l_linestatus", Arc::clone(&ls_dict)),
            ColumnDef::new("l_shipdate", LogicalType::Date),
            ColumnDef::new("l_commitdate", LogicalType::Date),
            ColumnDef::new("l_receiptdate", LogicalType::Date),
        ]),
        n_lineitem as u32,
    );
    let orders = db.create_table(
        "orders",
        Schema::new(vec![
            ColumnDef::new("o_orderkey", LogicalType::Int),
            ColumnDef::new("o_orderdate", LogicalType::Date),
            ColumnDef::dict("o_orderpriority", Arc::clone(&prio_dict)),
            ColumnDef::dict("o_orderstatus", Arc::clone(&status_dict)),
            ColumnDef::new("o_totalprice", LogicalType::Double),
        ]),
        n_orders as u32,
    );
    let part = db.create_table(
        "part",
        Schema::new(vec![
            ColumnDef::new("p_partkey", LogicalType::Int),
            ColumnDef::dict("p_brand", Arc::clone(&brand_dict)),
            ColumnDef::dict("p_container", Arc::clone(&container_dict)),
            ColumnDef::new("p_retailprice", LogicalType::Double),
        ]),
        n_parts as u32,
    );

    let ls = db.schema(lineitem);
    let li = LineitemCols {
        orderkey: ls.col("l_orderkey"),
        linenumber: ls.col("l_linenumber"),
        partkey: ls.col("l_partkey"),
        quantity: ls.col("l_quantity"),
        extendedprice: ls.col("l_extendedprice"),
        discount: ls.col("l_discount"),
        tax: ls.col("l_tax"),
        returnflag: ls.col("l_returnflag"),
        linestatus: ls.col("l_linestatus"),
        shipdate: ls.col("l_shipdate"),
        commitdate: ls.col("l_commitdate"),
        receiptdate: ls.col("l_receiptdate"),
    };
    let os = db.schema(orders);
    let ord = OrdersCols {
        orderkey: os.col("o_orderkey"),
        orderdate: os.col("o_orderdate"),
        orderpriority: os.col("o_orderpriority"),
        orderstatus: os.col("o_orderstatus"),
        totalprice: os.col("o_totalprice"),
    };
    let ps = db.schema(part);
    let prt = PartCols {
        partkey: ps.col("p_partkey"),
        brand: ps.col("p_brand"),
        container: ps.col("p_container"),
        retailprice: ps.col("p_retailprice"),
    };

    let fill_i = |t, c, v: &Vec<i64>| {
        db.fill_column(t, c, v.iter().map(|&x| Value::Int(x).encode()))
            .unwrap();
    };
    let fill_f = |t, c, v: &Vec<f64>| {
        db.fill_column(t, c, v.iter().map(|&x| Value::Double(x).encode()))
            .unwrap();
    };
    let fill_d = |t, c, v: &Vec<i32>| {
        db.fill_column(t, c, v.iter().map(|&x| Value::Date(x).encode()))
            .unwrap();
    };
    let fill_u = |t, c, v: &Vec<u32>| {
        db.fill_column(t, c, v.iter().map(|&x| Value::Dict(x).encode()))
            .unwrap();
    };

    fill_i(lineitem, li.orderkey, &l_orderkey);
    fill_i(lineitem, li.linenumber, &l_linenumber);
    fill_i(lineitem, li.partkey, &l_partkey);
    fill_f(lineitem, li.quantity, &l_quantity);
    fill_f(lineitem, li.extendedprice, &l_extprice);
    fill_f(lineitem, li.discount, &l_discount);
    fill_f(lineitem, li.tax, &l_tax);
    fill_u(lineitem, li.returnflag, &l_rf);
    fill_u(lineitem, li.linestatus, &l_ls);
    fill_d(lineitem, li.shipdate, &l_ship);
    fill_d(lineitem, li.commitdate, &l_commit);
    fill_d(lineitem, li.receiptdate, &l_receipt);

    fill_i(orders, ord.orderkey, &o_orderkey);
    fill_d(orders, ord.orderdate, &o_orderdate);
    fill_u(orders, ord.orderpriority, &o_priority);
    fill_u(orders, ord.orderstatus, &o_status);
    fill_f(orders, ord.totalprice, &o_totalprice);

    fill_i(part, prt.partkey, &(1..=n_parts).collect::<Vec<_>>());
    fill_u(part, prt.brand, &p_brand);
    fill_u(part, prt.container, &p_container);
    fill_f(
        part,
        prt.retailprice,
        &(1..=n_parts).map(retail_price).collect::<Vec<_>>(),
    );

    // ---------------- indexes ----------------
    let li_by_key = HashIndex::new();
    let mut lineitem_keys = Vec::with_capacity(n_lineitem);
    for row in 0..n_lineitem {
        let key = (l_orderkey[row], l_linenumber[row]);
        li_by_key.insert(key, row as u32);
        lineitem_keys.push(key);
    }
    let li_by_orderkey = ContiguousIndex::from_grouped_keys(l_orderkey.iter().copied());
    let li_by_partkey =
        MultiIndex::from_pairs(l_partkey.iter().enumerate().map(|(r, &k)| (k, r as u32)));
    let ord_by_key = HashIndex::new();
    for (row, &k) in o_orderkey.iter().enumerate() {
        ord_by_key.insert(k, row as u32);
    }

    TpchDb {
        db,
        lineitem,
        orders,
        part,
        li,
        ord,
        prt,
        li_by_key,
        li_by_orderkey,
        li_by_partkey,
        ord_by_key,
        order_keys: o_orderkey,
        lineitem_keys,
        n_parts,
        rf_dict,
        ls_dict,
        prio_dict,
        status_dict,
        brand_dict,
        container_dict,
    }
}

/// Convenience: generate with [`TpchConfig::default`] scale.
pub fn generate_default(db_config: DbConfig) -> TpchDb {
    generate(db_config, &TpchConfig::default())
}

/// Days-since-epoch for a calendar date (re-exported convenience).
pub fn days(y: i32, m: u32, d: u32) -> i32 {
    date::to_days(y, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TpchDb {
        generate(
            DbConfig::heterogeneous_serializable().with_gc_interval(None),
            &TpchConfig {
                scale_factor: 0.002,
                seed: 7,
            },
        )
    }

    #[test]
    fn sizes_scale() {
        let t = tiny();
        let orders = t.db.rows(t.orders) as f64;
        let lineitem = t.db.rows(t.lineitem) as f64;
        assert!(orders >= 16.0);
        let per_order = lineitem / orders;
        assert!((2.0..6.0).contains(&per_order), "lines/order = {per_order}");
        assert_eq!(t.db.rows(t.part) as i64, t.n_parts);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.order_keys, b.order_keys);
        assert_eq!(a.lineitem_keys, b.lineitem_keys);
    }

    #[test]
    fn keys_and_indexes_agree() {
        let t = tiny();
        for (row, key) in t.lineitem_keys.iter().enumerate() {
            assert_eq!(t.li_by_key.get(key), Some(row as u32));
        }
        // Sparse order keys: 8 per 32-block.
        assert_eq!(t.order_keys[0], 1);
        assert_eq!(t.order_keys[8], 33);
        // Contiguous lineitem ranges match the key arrays.
        let (start, count) = t.li_by_orderkey.get(&t.order_keys[3]).unwrap();
        for r in start..start + count {
            assert_eq!(t.lineitem_keys[r as usize].0, t.order_keys[3]);
        }
    }

    #[test]
    fn date_relationships_hold() {
        let t = tiny();
        let mut txn = t.db.begin(anker_core::TxnKind::Olap);
        let rows = t.db.rows(t.lineitem);
        for row in (0..rows).step_by(17) {
            let ship = txn
                .get_value(t.lineitem, t.li.shipdate, row)
                .unwrap()
                .as_date();
            let receipt = txn
                .get_value(t.lineitem, t.li.receiptdate, row)
                .unwrap()
                .as_date();
            assert!(receipt > ship, "receipt after ship");
            let rf = txn
                .get_value(t.lineitem, t.li.returnflag, row)
                .unwrap()
                .as_dict();
            if receipt <= CUTOFF_1995_06_17 {
                assert!(rf == 0 || rf == 2, "early receipts are A or R");
            } else {
                assert_eq!(rf, 1, "late receipts are N");
            }
        }
        txn.commit().unwrap();
    }

    #[test]
    fn dictionaries_cover_domains() {
        let t = tiny();
        assert_eq!(t.brand_dict.len(), 25);
        assert_eq!(t.container_dict.len(), 40);
        assert_eq!(t.prio_dict.len(), 5);
        assert_eq!(&*t.rf_dict.value(2), "R");
    }
}
