//! Multi-threaded workload execution: the experiments of §5.3 (OLAP
//! latency under load), §5.4 (throughput, pure and mixed), and §5.7
//! (scaling).

use crate::gen::TpchDb;
use crate::oltp::{is_abort, run_oltp_in, OltpKind};
use crate::queries::{run_olap, sample_params, OlapQuery};
use anker_core::{ScanStats, TxnKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Configuration of a throughput run (Figure 8 / Figure 11).
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of OLTP transactions to fire (paper: 500 000).
    pub oltp_txns: u64,
    /// Number of OLAP transactions interleaved into the stream (paper: 10
    /// for the mixed workload, 0 for pure OLTP).
    pub olap_txns: u64,
    /// Worker threads (paper: 8).
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Busy-work per OLTP transaction in microseconds, outside any lock.
    /// Models the per-request processing cost (parsing, planning, network)
    /// of a full system; 0 disables it. The paper's system spent ~20 µs per
    /// transaction per thread, ~7x this reproduction's streamlined path —
    /// without comparable per-transaction work, the serialized commit
    /// section dominates and thread scaling cannot appear on any machine.
    pub think_us: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            oltp_txns: 100_000,
            olap_txns: 0,
            threads: 2,
            seed: 7,
            think_us: 0.0,
        }
    }
}

/// Spin for approximately `us` microseconds (calibration-free busy work).
fn think(us: f64) {
    if us <= 0.0 {
        return;
    }
    let start = Instant::now();
    while start.elapsed().as_secs_f64() * 1e6 < us {
        std::hint::spin_loop();
    }
}

/// Outcome of a throughput run.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    pub wall: Duration,
    /// Committed OLTP transactions.
    pub committed: u64,
    /// Aborted OLTP transactions (write-write or validation).
    pub aborted: u64,
    /// Completed OLAP transactions.
    pub olap_done: u64,
    /// Total wall time spent inside OLAP transactions (sum across
    /// workers). The mixed-workload mechanism in one number: how much scan
    /// work the configuration had to do for the same 10 queries.
    pub olap_wall: Duration,
    /// End-to-end transactions per second (committed + aborted + OLAP over
    /// wall time, matching the paper's batch measure).
    pub tps: f64,
}

/// Run a batch of `oltp_txns` transactions (with `olap_txns` analytical
/// transactions spread uniformly through the stream) on `threads` workers
/// and measure end-to-end throughput.
pub fn run_workload(t: &TpchDb, cfg: &WorkloadConfig) -> WorkloadResult {
    let next = AtomicU64::new(0);
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let olap_done = AtomicU64::new(0);
    let olap_nanos = AtomicU64::new(0);
    // Interleave OLAP transactions at evenly spaced stream positions.
    let olap_every = cfg
        .oltp_txns
        .checked_div(cfg.olap_txns)
        .unwrap_or(u64::MAX)
        .max(1);
    let start = Instant::now();
    std::thread::scope(|s| {
        for worker in 0..cfg.threads {
            let next = &next;
            let committed = &committed;
            let aborted = &aborted;
            let olap_done = &olap_done;
            let olap_nanos = &olap_nanos;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (worker as u64) << 32);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cfg.oltp_txns {
                        break;
                    }
                    // OLAP slots sit mid-interval so none lands at stream
                    // position 0 (before any update history exists).
                    if i % olap_every == olap_every / 2 && i / olap_every < cfg.olap_txns {
                        let q = OlapQuery::ALL[(i / olap_every) as usize % OlapQuery::ALL.len()];
                        let params = sample_params(q, &mut rng);
                        let began = Instant::now();
                        let mut txn = t.db.begin(TxnKind::Olap);
                        run_olap(t, &mut txn, params).expect("olap query failed");
                        txn.commit().expect("read-only commit cannot fail");
                        olap_nanos.fetch_add(began.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        olap_done.fetch_add(1, Ordering::Relaxed);
                    }
                    think(cfg.think_us);
                    let kind = OltpKind::sample(&mut rng);
                    let mut txn = t.db.begin(TxnKind::Oltp);
                    match run_oltp_in(t, &mut txn, kind, &mut rng) {
                        Ok(()) => match txn.commit() {
                            Ok(_) => {
                                committed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) if is_abort(&e) => {
                                aborted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("commit failed: {e}"),
                        },
                        Err(e) if is_abort(&e) => {
                            txn.abort();
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("oltp body failed: {e}"),
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    let committed = committed.load(Ordering::Relaxed);
    let aborted = aborted.load(Ordering::Relaxed);
    let olap_done = olap_done.load(Ordering::Relaxed);
    WorkloadResult {
        wall,
        committed,
        aborted,
        olap_done,
        olap_wall: Duration::from_nanos(olap_nanos.load(Ordering::Relaxed)),
        tps: (committed + aborted + olap_done) as f64 / wall.as_secs_f64(),
    }
}

/// Configuration of the OLAP-latency experiment (Figure 7).
#[derive(Debug, Clone)]
pub struct LatencyConfig {
    /// Total worker threads; one runs the measured OLAP transaction, the
    /// rest pressure the system with OLTP transactions (paper: 8 threads,
    /// 7 OLTP + 1 OLAP).
    pub threads: usize,
    /// Repetitions of the OLAP transaction (paper: 5, averaged).
    pub repetitions: usize,
    pub seed: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            threads: 2,
            repetitions: 5,
            seed: 11,
        }
    }
}

/// Outcome of the latency experiment for one OLAP query.
#[derive(Debug, Clone)]
pub struct LatencyResult {
    pub query: OlapQuery,
    /// Mean latency over the repetitions.
    pub mean: Duration,
    pub samples: Vec<Duration>,
    /// Scan statistics summed over the repetitions (tight vs checked rows,
    /// chain walks, zone-map block skips, filtered rows).
    pub stats: ScanStats,
}

/// Measure the latency of `query` while the remaining threads continuously
/// fire OLTP transactions (§5.3).
pub fn run_olap_latency(t: &TpchDb, query: OlapQuery, cfg: &LatencyConfig) -> LatencyResult {
    let stop = AtomicBool::new(false);
    let pressure_threads = cfg.threads.saturating_sub(1).max(1);
    let mut samples = Vec::with_capacity(cfg.repetitions);
    let mut stats = ScanStats::default();
    std::thread::scope(|s| {
        for worker in 0..pressure_threads {
            let stop = &stop;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xABCD ^ (worker as u64) << 24);
                while !stop.load(Ordering::Acquire) {
                    let kind = OltpKind::sample(&mut rng);
                    let _ = crate::oltp::run_oltp(t, kind, &mut rng);
                }
            });
        }
        // Let the pressure build up before measuring.
        std::thread::sleep(Duration::from_millis(30));
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        for _ in 0..cfg.repetitions {
            let params = sample_params(query, &mut rng);
            let begin = Instant::now();
            let mut txn = t.db.begin(TxnKind::Olap);
            run_olap(t, &mut txn, params).expect("olap query failed");
            stats.merge(&txn.scan_stats());
            txn.commit().expect("read-only commit cannot fail");
            samples.push(begin.elapsed());
        }
        stop.store(true, Ordering::Release);
    });
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    LatencyResult {
        query,
        mean,
        samples,
        stats,
    }
}
