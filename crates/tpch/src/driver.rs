//! Multi-threaded workload execution: the experiments of §5.3 (OLAP
//! latency under load), §5.4 (throughput, pure and mixed), §5.7
//! (scaling), and the detached-reader HTAP mode (M updaters + N
//! morsel-parallel scan threads, the shape of the paper's figs. 8–9
//! analytical fleet).

use crate::gen::{days, TpchDb};
use crate::oltp::{is_abort, run_oltp, run_oltp_in, OltpKind};
use crate::queries::{run_olap, sample_params, OlapParams, OlapQuery};
use anker_core::{ScanStats, TxnKind, WalStatsSnapshot};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of a throughput run (Figure 8 / Figure 11).
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of OLTP transactions to fire (paper: 500 000).
    pub oltp_txns: u64,
    /// Number of OLAP transactions interleaved into the stream (paper: 10
    /// for the mixed workload, 0 for pure OLTP).
    pub olap_txns: u64,
    /// Worker threads (paper: 8).
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Busy-work per OLTP transaction in microseconds, outside any lock.
    /// Models the per-request processing cost (parsing, planning, network)
    /// of a full system; 0 disables it. The paper's system spent ~20 µs per
    /// transaction per thread, ~7x this reproduction's streamlined path —
    /// without comparable per-transaction work, the serialized commit
    /// section dominates and thread scaling cannot appear on any machine.
    pub think_us: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            oltp_txns: 100_000,
            olap_txns: 0,
            threads: 2,
            seed: 7,
            think_us: 0.0,
        }
    }
}

/// Spin for approximately `us` microseconds (calibration-free busy work).
fn think(us: f64) {
    if us <= 0.0 {
        return;
    }
    let start = Instant::now();
    while start.elapsed().as_secs_f64() * 1e6 < us {
        std::hint::spin_loop();
    }
}

/// Outcome of a throughput run.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    pub wall: Duration,
    /// Committed OLTP transactions.
    pub committed: u64,
    /// Aborted OLTP transactions (write-write or validation).
    pub aborted: u64,
    /// Completed OLAP transactions.
    pub olap_done: u64,
    /// Total wall time spent inside OLAP transactions (sum across
    /// workers). The mixed-workload mechanism in one number: how much scan
    /// work the configuration had to do for the same 10 queries.
    pub olap_wall: Duration,
    /// End-to-end transactions per second (committed + aborted + OLAP over
    /// wall time, matching the paper's batch measure).
    pub tps: f64,
}

/// Run a batch of `oltp_txns` transactions (with `olap_txns` analytical
/// transactions spread uniformly through the stream) on `threads` workers
/// and measure end-to-end throughput.
pub fn run_workload(t: &TpchDb, cfg: &WorkloadConfig) -> WorkloadResult {
    let next = AtomicU64::new(0);
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let olap_done = AtomicU64::new(0);
    let olap_nanos = AtomicU64::new(0);
    // Interleave OLAP transactions at evenly spaced stream positions.
    let olap_every = cfg
        .oltp_txns
        .checked_div(cfg.olap_txns)
        .unwrap_or(u64::MAX)
        .max(1);
    let start = Instant::now();
    std::thread::scope(|s| {
        for worker in 0..cfg.threads {
            let next = &next;
            let committed = &committed;
            let aborted = &aborted;
            let olap_done = &olap_done;
            let olap_nanos = &olap_nanos;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (worker as u64) << 32);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cfg.oltp_txns {
                        break;
                    }
                    // OLAP slots sit mid-interval so none lands at stream
                    // position 0 (before any update history exists).
                    if i % olap_every == olap_every / 2 && i / olap_every < cfg.olap_txns {
                        let q = OlapQuery::ALL[(i / olap_every) as usize % OlapQuery::ALL.len()];
                        let params = sample_params(q, &mut rng);
                        let began = Instant::now();
                        let mut txn = t.db.begin(TxnKind::Olap);
                        run_olap(t, &mut txn, params).expect("olap query failed");
                        txn.commit().expect("read-only commit cannot fail");
                        olap_nanos.fetch_add(began.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        olap_done.fetch_add(1, Ordering::Relaxed);
                    }
                    think(cfg.think_us);
                    let kind = OltpKind::sample(&mut rng);
                    let mut txn = t.db.begin(TxnKind::Oltp);
                    match run_oltp_in(t, &mut txn, kind, &mut rng) {
                        Ok(()) => match txn.commit() {
                            Ok(_) => {
                                committed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) if is_abort(&e) => {
                                aborted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("commit failed: {e}"),
                        },
                        Err(e) if is_abort(&e) => {
                            txn.abort();
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("oltp body failed: {e}"),
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    let committed = committed.load(Ordering::Relaxed);
    let aborted = aborted.load(Ordering::Relaxed);
    let olap_done = olap_done.load(Ordering::Relaxed);
    WorkloadResult {
        wall,
        committed,
        aborted,
        olap_done,
        olap_wall: Duration::from_nanos(olap_nanos.load(Ordering::Relaxed)),
        tps: (committed + aborted + olap_done) as f64 / wall.as_secs_f64(),
    }
}

/// Configuration of the HTAP mode: `updaters` OLTP threads run
/// continuously while the calling thread executes `scans` analytical
/// queries, each on a **fresh** [`anker_core::SnapshotReader`] (so every
/// query sees a current epoch) fanned out over `scan_threads`
/// morsel-parallel workers.
#[derive(Debug, Clone)]
pub struct HtapConfig {
    /// Concurrent OLTP updater threads (`M` in the paper's mixed runs).
    pub updaters: usize,
    /// Threads per analytical scan (`N`; 1 = sequential).
    pub scan_threads: usize,
    /// Analytical queries to run (alternating Q6-style predicate scans
    /// and full LINEITEM scans).
    pub scans: u64,
    /// RNG seed (query parameters and updater streams).
    pub seed: u64,
    /// Busy-work per OLTP transaction in microseconds (see
    /// [`WorkloadConfig::think_us`]).
    pub think_us: f64,
}

impl Default for HtapConfig {
    fn default() -> Self {
        HtapConfig {
            updaters: 1,
            scan_threads: 2,
            scans: 8,
            seed: 13,
            think_us: 0.0,
        }
    }
}

/// Outcome of an HTAP run.
#[derive(Debug, Clone)]
pub struct HtapResult {
    pub wall: Duration,
    /// Analytical queries completed.
    pub scans_done: u64,
    /// Wall time spent inside the analytical queries (reader open + scan).
    pub scan_wall: Duration,
    /// Analytical queries per second over the whole run.
    pub olap_qps: f64,
    /// OLTP transactions committed / aborted by the updaters meanwhile.
    pub oltp_committed: u64,
    pub oltp_aborted: u64,
    /// Updater throughput (committed + aborted per second).
    pub oltp_tps: f64,
    /// Scan statistics summed over all analytical queries (`morsels`
    /// counts the work ranges processed; `threads` the dispatch width the
    /// scans fanned out over).
    pub stats: ScanStats,
    /// Sum of the Q6-style revenues (result validation across configs).
    pub revenue: f64,
}

/// Run the HTAP mode: `cfg.updaters` threads fire OLTP transactions until
/// the analytical side — the calling thread, opening a fresh detached
/// reader per query and scanning morsel-parallel with
/// `cfg.scan_threads` — has completed `cfg.scans` queries. Requires
/// heterogeneous mode (detached readers pin snapshot epochs).
pub fn run_htap(t: &TpchDb, cfg: &HtapConfig) -> HtapResult {
    let stop = AtomicBool::new(false);
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let mut stats = ScanStats::default();
    let mut revenue = 0.0f64;
    let mut scan_nanos = 0u64;
    let start = Instant::now();
    std::thread::scope(|s| {
        for worker in 0..cfg.updaters {
            let stop = &stop;
            let committed = &committed;
            let aborted = &aborted;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x717A ^ (worker as u64) << 20);
                // ORDERING: Acquire pairs with the scan thread's Release
                // store of `stop`, so a stopping updater sees the final
                // scan state that ended the run.
                while !stop.load(Ordering::Acquire) {
                    think(cfg.think_us);
                    match run_oltp(t, OltpKind::sample(&mut rng), &mut rng) {
                        Ok(_) => committed.fetch_add(1, Ordering::Relaxed),
                        Err(e) if is_abort(&e) => aborted.fetch_add(1, Ordering::Relaxed),
                        Err(e) => panic!("oltp failed: {e}"),
                    };
                }
            });
        }
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let li = &t.li;
        for i in 0..cfg.scans {
            let began = Instant::now();
            let reader =
                t.db.snapshot_reader()
                    .expect("HTAP mode needs heterogeneous processing");
            if i % 2 == 0 {
                // Q6-style predicate scan, parameters drawn by the same
                // sampler as the transactional Q6 (paper §5.2 bounds) and
                // the same predicate epsilons as `queries::q6`.
                let OlapParams::Q6 {
                    year,
                    discount,
                    qty,
                } = sample_params(OlapQuery::Q6, &mut rng)
                else {
                    unreachable!("Q6 sampler returns Q6 params")
                };
                let lo = days(year, 1, 1) as i64;
                let hi = days(year + 1, 1, 1) as i64;
                let (rev, s) = reader
                    .scan(t.lineitem)
                    .range_i64(li.shipdate, lo, hi - 1)
                    .range_f64(li.discount, discount - 0.01 - 1e-9, discount + 0.01 + 1e-9)
                    .lt_f64(li.quantity, qty)
                    .project(&[li.extendedprice, li.discount])
                    .parallel(cfg.scan_threads)
                    .fold(
                        0.0f64,
                        |acc, _, v| acc + v[0].as_double() * v[1].as_double(),
                        |a, b| a + b,
                    )
                    .expect("q6 scan failed");
                revenue += rev;
                stats.merge(&s);
            } else {
                // Full LINEITEM scan: every column, commutative checksum
                // (parallel `for_each` delivers morsels in any order).
                let cols = [
                    li.orderkey,
                    li.partkey,
                    li.quantity,
                    li.extendedprice,
                    li.discount,
                    li.shipdate,
                ];
                let checksum = AtomicU64::new(0);
                let s = reader
                    .scan(t.lineitem)
                    .project(&cols)
                    .parallel(cfg.scan_threads)
                    .for_each(|row, words| {
                        let mut h = row as u64;
                        for &w in words {
                            h = h.rotate_left(7) ^ w;
                        }
                        checksum.fetch_add(h, Ordering::Relaxed);
                    })
                    .expect("full scan failed");
                stats.merge(&s);
            }
            scan_nanos += began.elapsed().as_nanos() as u64;
        }
        // ORDERING: Release pairs with the updaters' Acquire polls.
        stop.store(true, Ordering::Release);
    });
    let wall = start.elapsed();
    let committed = committed.load(Ordering::Relaxed);
    let aborted = aborted.load(Ordering::Relaxed);
    HtapResult {
        wall,
        scans_done: cfg.scans,
        scan_wall: Duration::from_nanos(scan_nanos),
        olap_qps: cfg.scans as f64 / wall.as_secs_f64(),
        oltp_committed: committed,
        oltp_aborted: aborted,
        oltp_tps: (committed + aborted) as f64 / wall.as_secs_f64(),
        stats,
        revenue,
    }
}

/// Configuration of the durability mode: the fig-8-style pure-OLTP
/// stream, instrumented per commit, against a database whose
/// [`anker_core::DurabilityLevel`] decides what each commit pays before
/// returning.
#[derive(Debug, Clone)]
pub struct DurabilityRunConfig {
    /// OLTP transactions to fire.
    pub oltp_txns: u64,
    /// Worker threads (group commit only batches with > 1).
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Busy-work per transaction in microseconds (see
    /// [`WorkloadConfig::think_us`]).
    pub think_us: f64,
}

impl Default for DurabilityRunConfig {
    fn default() -> Self {
        DurabilityRunConfig {
            oltp_txns: 20_000,
            threads: 2,
            seed: 23,
            think_us: 0.0,
        }
    }
}

/// Outcome of a durability run: throughput plus the commit-latency
/// distribution (the WAL overhead made visible) and the WAL's own
/// counters (`commit_records / syncs` = group-commit batching factor).
#[derive(Debug, Clone)]
pub struct DurabilityRunResult {
    pub wall: Duration,
    pub committed: u64,
    pub aborted: u64,
    pub tps: f64,
    /// Commit-latency percentiles over every *committed* transaction
    /// (begin → commit returned), in microseconds.
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    pub max_us: f64,
    /// WAL counters delta over the run (`None` when the database has no
    /// durability directory).
    pub wal: Option<WalStatsSnapshot>,
}

/// Run `cfg.oltp_txns` fig-style OLTP transactions on `threads` workers,
/// recording each committed transaction's end-to-end latency. The
/// database's durability level decides whether commits pay nothing
/// (`Off`), a buffered WAL append (`Buffered`), or a group-commit fsync
/// (`Fsync`) — this driver measures exactly that difference.
pub fn run_durability(t: &TpchDb, cfg: &DurabilityRunConfig) -> DurabilityRunResult {
    let before_wal = t.db.wal_stats();
    let next = AtomicU64::new(0);
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let all_latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for worker in 0..cfg.threads.max(1) {
            let next = &next;
            let committed = &committed;
            let aborted = &aborted;
            let all_latencies = &all_latencies;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xD17A ^ (worker as u64) << 28);
                let mut local = Vec::with_capacity(4096);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cfg.oltp_txns {
                        break;
                    }
                    think(cfg.think_us);
                    let kind = OltpKind::sample(&mut rng);
                    let began = Instant::now();
                    match run_oltp(t, kind, &mut rng) {
                        Ok(_) => {
                            local.push(began.elapsed().as_nanos() as u64);
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if is_abort(&e) => {
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("oltp failed: {e}"),
                    }
                }
                all_latencies.lock().unwrap().extend_from_slice(&local);
            });
        }
    });
    let wall = start.elapsed();
    let committed = committed.load(Ordering::Relaxed);
    let aborted = aborted.load(Ordering::Relaxed);
    let mut lat = all_latencies.into_inner().unwrap();
    lat.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
        lat[idx] as f64 / 1_000.0
    };
    let wal = match (before_wal, t.db.wal_stats()) {
        (Some(before), Some(after)) => Some(WalStatsSnapshot {
            appends: after.appends - before.appends,
            commit_records: after.commit_records - before.commit_records,
            bytes_appended: after.bytes_appended - before.bytes_appended,
            syncs: after.syncs - before.syncs,
            segments_created: after.segments_created - before.segments_created,
            segments_retired: after.segments_retired - before.segments_retired,
        }),
        _ => None,
    };
    DurabilityRunResult {
        wall,
        committed,
        aborted,
        tps: (committed + aborted) as f64 / wall.as_secs_f64(),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        max_us: lat.last().map(|&n| n as f64 / 1_000.0).unwrap_or(0.0),
        wal,
    }
}

/// Configuration of the OLAP-latency experiment (Figure 7).
#[derive(Debug, Clone)]
pub struct LatencyConfig {
    /// Total worker threads; one runs the measured OLAP transaction, the
    /// rest pressure the system with OLTP transactions (paper: 8 threads,
    /// 7 OLTP + 1 OLAP).
    pub threads: usize,
    /// Repetitions of the OLAP transaction (paper: 5, averaged).
    pub repetitions: usize,
    pub seed: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            threads: 2,
            repetitions: 5,
            seed: 11,
        }
    }
}

/// Outcome of the latency experiment for one OLAP query.
#[derive(Debug, Clone)]
pub struct LatencyResult {
    pub query: OlapQuery,
    /// Mean latency over the repetitions.
    pub mean: Duration,
    pub samples: Vec<Duration>,
    /// Scan statistics summed over the repetitions (tight vs checked rows,
    /// chain walks, zone-map block skips, filtered rows).
    pub stats: ScanStats,
}

/// Measure the latency of `query` while the remaining threads continuously
/// fire OLTP transactions (§5.3).
pub fn run_olap_latency(t: &TpchDb, query: OlapQuery, cfg: &LatencyConfig) -> LatencyResult {
    let stop = AtomicBool::new(false);
    let pressure_threads = cfg.threads.saturating_sub(1).max(1);
    let mut samples = Vec::with_capacity(cfg.repetitions);
    let mut stats = ScanStats::default();
    std::thread::scope(|s| {
        for worker in 0..pressure_threads {
            let stop = &stop;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xABCD ^ (worker as u64) << 24);
                // ORDERING: Acquire pairs with the measuring thread's
                // Release store of `stop` once sampling finishes.
                while !stop.load(Ordering::Acquire) {
                    let kind = OltpKind::sample(&mut rng);
                    let _ = run_oltp(t, kind, &mut rng);
                }
            });
        }
        // Let the pressure build up before measuring.
        std::thread::sleep(Duration::from_millis(30));
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        for _ in 0..cfg.repetitions {
            let params = sample_params(query, &mut rng);
            let begin = Instant::now();
            let mut txn = t.db.begin(TxnKind::Olap);
            run_olap(t, &mut txn, params).expect("olap query failed");
            stats.merge(&txn.scan_stats());
            txn.commit().expect("read-only commit cannot fail");
            samples.push(begin.elapsed());
        }
        // ORDERING: Release pairs with the pressure workers' Acquire polls.
        stop.store(true, Ordering::Release);
    });
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    LatencyResult {
        query,
        mean,
        samples,
        stats,
    }
}
