//! # anker-tpch — the paper's evaluation workload (§5.2)
//!
//! * [`gen`] — a deterministic, seeded generator for the three TPC-H tables
//!   the paper uses (LINEITEM, ORDERS, PART) with TPC-H-shaped
//!   distributions, plus the hash indexes the OLTP transactions need.
//! * [`queries`] — the OLAP side: TPC-H Q1, Q4, Q6, Q17 with
//!   specification-conform random parameters, and full-table scan
//!   transactions for each table (7 OLAP transactions in total).
//! * [`oltp`] — the 9 hand-tailored OLTP update transactions of Figure 6.
//! * [`driver`] — multi-threaded workload execution: pure OLTP streams,
//!   mixed OLTP+OLAP batches (Figure 8/11), and the OLAP latency-under-load
//!   experiment (Figure 7).

pub mod driver;
pub mod gen;
pub mod oltp;
pub mod queries;

pub use driver::{
    run_olap_latency, run_workload, LatencyConfig, LatencyResult, WorkloadConfig, WorkloadResult,
};
pub use gen::{TpchConfig, TpchDb};
pub use oltp::OltpKind;
pub use queries::OlapQuery;
