//! # anker-tpch — the paper's evaluation workload (§5.2)
//!
//! * [`gen`] — a deterministic, seeded generator for the three TPC-H tables
//!   the paper uses (LINEITEM, ORDERS, PART) with TPC-H-shaped
//!   distributions, plus the hash indexes the OLTP transactions need.
//! * [`queries`] — the OLAP side: TPC-H Q1, Q4, Q6, Q17 with
//!   specification-conform random parameters, and full-table scan
//!   transactions for each table (7 OLAP transactions in total).
//! * [`oltp`] — the 9 hand-tailored OLTP update transactions of Figure 6.
//! * [`driver`] — multi-threaded workload execution: pure OLTP streams,
//!   mixed OLTP+OLAP batches (Figure 8/11), and the OLAP latency-under-load
//!   experiment (Figure 7).
//!
//! ## Example
//!
//! ```
//! use anker_core::{DbConfig, TxnKind};
//! use anker_tpch::{gen, queries, OlapQuery, TpchConfig};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // A small deterministic TPC-H instance on the heterogeneous engine.
//! let t = gen::generate(
//!     DbConfig::heterogeneous_serializable().with_snapshot_every(500),
//!     &TpchConfig { scale_factor: 0.01, seed: 42 },
//! );
//!
//! // One OLTP transaction from the paper's Figure 6 set...
//! let mut rng = SmallRng::seed_from_u64(7);
//! anker_tpch::oltp::run_oltp(&t, anker_tpch::OltpKind::sample(&mut rng), &mut rng).unwrap();
//!
//! // ...and TPC-H Q6 on a virtual snapshot.
//! let mut olap = t.db.begin(TxnKind::Olap);
//! let revenue = queries::q6(&t, &mut olap, 1994, 0.06, 24.0).unwrap();
//! olap.commit().unwrap();
//! assert!(revenue > 0.0);
//! # let _ = OlapQuery::Q6;
//! ```
// No unsafe in this crate: verified by the compiler, inventoried by
// `anker-lint -- audit` (results/unsafe_audit.json records zero sites).
#![forbid(unsafe_code)]

pub mod driver;
pub mod gen;
pub mod oltp;
pub mod queries;

pub use driver::{
    run_olap_latency, run_workload, LatencyConfig, LatencyResult, WorkloadConfig, WorkloadResult,
};
pub use gen::{TpchConfig, TpchDb};
pub use oltp::OltpKind;
pub use queries::OlapQuery;
