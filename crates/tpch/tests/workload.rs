//! Workload-level integration tests: query correctness across the paper's
//! three configurations, driver smoke tests, and freshness semantics.

use anker_core::{DbConfig, TxnKind};
use anker_tpch::driver::{
    run_htap, run_olap_latency, run_workload, HtapConfig, LatencyConfig, WorkloadConfig,
};
use anker_tpch::gen::{self, TpchConfig, TpchDb};
use anker_tpch::oltp::{run_oltp, OltpKind};
use anker_tpch::queries::{self, sample_params, OlapQuery, OlapResult};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn tiny_cfg() -> TpchConfig {
    TpchConfig {
        scale_factor: 0.004,
        seed: 99,
    }
}

fn build(db: DbConfig) -> TpchDb {
    gen::generate(db.with_gc_interval(None), &tiny_cfg())
}

/// On a freshly loaded (unmodified) database, every configuration must
/// produce identical answers for all seven OLAP transactions.
#[test]
fn queries_agree_across_configurations() {
    let hetero = build(DbConfig::heterogeneous_serializable());
    let homo_ser = build(DbConfig::homogeneous_serializable());
    let homo_si = build(DbConfig::homogeneous_snapshot_isolation());
    let mut rng = SmallRng::seed_from_u64(5);
    for q in OlapQuery::ALL {
        let params = sample_params(q, &mut rng);
        let mut results = Vec::new();
        for t in [&hetero, &homo_ser, &homo_si] {
            let mut txn = t.db.begin(TxnKind::Olap);
            results.push(queries::run_olap(t, &mut txn, params).unwrap());
            txn.commit().unwrap();
        }
        assert_eq!(results[0], results[1], "{q:?} differs hetero vs homo-ser");
        assert_eq!(results[1], results[2], "{q:?} differs homo-ser vs homo-si");
    }
}

/// Q1's aggregates must be internally consistent (avg = sum / count) and
/// cover every lineitem row passing the filter.
#[test]
fn q1_aggregates_consistent() {
    let t = build(DbConfig::heterogeneous_serializable());
    let mut txn = t.db.begin(TxnKind::Olap);
    let rows = queries::q1(&t, &mut txn, 90).unwrap();
    txn.commit().unwrap();
    assert!(!rows.is_empty());
    let mut total = 0u64;
    for r in &rows {
        assert!((r.avg_qty - r.sum_qty / r.count as f64).abs() < 1e-9);
        assert!((r.avg_price - r.sum_base_price / r.count as f64).abs() < 1e-9);
        assert!(r.sum_disc_price <= r.sum_base_price * 1.0000001);
        assert!(r.sum_charge >= r.sum_disc_price * 0.9999999);
        total += r.count;
    }
    // The 90-day cutoff leaves most rows in (ship dates end 121 days after
    // the last order date).
    let all = t.db.rows(t.lineitem) as u64;
    assert!(total > all / 2, "{total} of {all} rows");
}

/// Q6 must match a brute-force reference evaluation.
#[test]
fn q6_matches_reference() {
    let t = build(DbConfig::heterogeneous_serializable());
    let (year, disc, qty) = (1994, 0.05, 24.0);
    let mut txn = t.db.begin(TxnKind::Olap);
    let revenue = queries::q6(&t, &mut txn, year, disc, qty).unwrap();
    // Reference: row-at-a-time reads through the same transaction.
    let lo = gen::days(year, 1, 1);
    let hi = gen::days(year + 1, 1, 1);
    let mut expected = 0.0;
    for row in 0..t.db.rows(t.lineitem) {
        let ship = txn
            .get_value(t.lineitem, t.li.shipdate, row)
            .unwrap()
            .as_date();
        let d = txn
            .get_value(t.lineitem, t.li.discount, row)
            .unwrap()
            .as_double();
        let q = txn
            .get_value(t.lineitem, t.li.quantity, row)
            .unwrap()
            .as_double();
        if ship >= lo && ship < hi && d >= disc - 0.01 - 1e-9 && d <= disc + 0.01 + 1e-9 && q < qty
        {
            expected += txn
                .get_value(t.lineitem, t.li.extendedprice, row)
                .unwrap()
                .as_double()
                * d;
        }
    }
    txn.commit().unwrap();
    assert!(
        (revenue - expected).abs() < 1e-6 * expected.abs().max(1.0),
        "q6 {revenue} != reference {expected}"
    );
}

/// OLAP answers reflect committed OLTP updates once a new epoch is
/// triggered (freshness), and never reflect uncommitted ones.
#[test]
fn olap_freshness_follows_epochs() {
    let t = build(DbConfig::heterogeneous_serializable().with_snapshot_every(1));
    let mut rng = SmallRng::seed_from_u64(3);
    let before: OlapResult = {
        let mut txn = t.db.begin(TxnKind::Olap);
        let r = queries::run_olap(&t, &mut txn, queries::OlapParams::Scan(OlapQuery::ScanPart))
            .unwrap();
        txn.commit().unwrap();
        r
    };
    // Commit a part update; trigger interval is 1, so the next OLAP txn
    // gets a fresh epoch.
    run_oltp(&t, OltpKind::Q8, &mut rng).unwrap();
    let after = {
        let mut txn = t.db.begin(TxnKind::Olap);
        let r = queries::run_olap(&t, &mut txn, queries::OlapParams::Scan(OlapQuery::ScanPart))
            .unwrap();
        txn.commit().unwrap();
        r
    };
    assert_ne!(
        before, after,
        "fresh epoch must expose the committed update"
    );
}

/// Q6's shipdate predicate must prune whole blocks via zone maps on the
/// snapshot path: lineitems are loaded in rough arrival order, so a
/// one-year window cannot touch most 1024-row blocks.
#[test]
fn q6_zone_maps_prune_blocks_on_snapshots() {
    let t = gen::generate(
        DbConfig::heterogeneous_serializable().with_gc_interval(None),
        &TpchConfig {
            scale_factor: 0.02,
            seed: 99,
        },
    );
    let mut txn = t.db.begin(TxnKind::Olap);
    let revenue = queries::q6(&t, &mut txn, 1995, 0.05, 24.0).unwrap();
    let stats = txn.scan_stats();
    txn.commit().unwrap();
    assert!(revenue > 0.0, "the 1995 window holds qualifying lineitems");
    assert!(
        stats.blocks_skipped > 0,
        "zone maps pruned nothing: {stats:?}"
    );
    assert!(
        stats.rows_filtered > 0,
        "pushed-down filters removed nothing: {stats:?}"
    );
    assert_eq!(stats.checked_rows, 0, "snapshot scans never check versions");
}

#[test]
fn oltp_kinds_all_run() {
    let t = build(DbConfig::heterogeneous_serializable().with_snapshot_every(4));
    let mut rng = SmallRng::seed_from_u64(17);
    let mut committed = 0;
    for kind in OltpKind::ALL {
        for _ in 0..5 {
            if run_oltp(&t, kind, &mut rng).is_ok() {
                committed += 1;
            }
        }
    }
    assert!(committed >= 40, "committed {committed}/45");
    assert_eq!(t.db.stats().committed, committed);
}

#[test]
fn workload_driver_pure_oltp() {
    let t = build(DbConfig::heterogeneous_serializable().with_snapshot_every(100));
    let r = run_workload(
        &t,
        &WorkloadConfig {
            oltp_txns: 2_000,
            olap_txns: 0,
            threads: 2,
            seed: 1,
            think_us: 0.0,
        },
    );
    assert_eq!(r.committed + r.aborted, 2_000);
    assert!(r.committed > r.aborted * 3, "{r:?}");
    assert!(r.tps > 0.0);
}

#[test]
fn workload_driver_mixed() {
    for cfg in [
        DbConfig::heterogeneous_serializable().with_snapshot_every(100),
        DbConfig::homogeneous_serializable(),
        DbConfig::homogeneous_snapshot_isolation(),
    ] {
        let t = build(cfg);
        let r = run_workload(
            &t,
            &WorkloadConfig {
                oltp_txns: 1_000,
                olap_txns: 5,
                threads: 2,
                seed: 2,
                think_us: 0.0,
            },
        );
        assert_eq!(r.committed + r.aborted, 1_000);
        assert_eq!(r.olap_done, 5);
    }
}

/// The HTAP mode — updaters committing while detached readers fan scans
/// out over the pool — must complete all scans, keep the updaters
/// committing, and report the fan-out in its scan statistics. The Q6-style
/// revenue must match a sequential (1-thread, no-updater) HTAP run: every
/// query runs on a consistent epoch regardless of concurrent commits.
#[test]
fn htap_driver_runs_parallel_scans_under_updates() {
    let t = build(DbConfig::heterogeneous_serializable().with_snapshot_every(100));
    let quiet = run_htap(
        &t,
        &HtapConfig {
            updaters: 0,
            scan_threads: 1,
            scans: 6,
            seed: 77,
            think_us: 0.0,
        },
    );
    assert_eq!(quiet.scans_done, 6);
    assert_eq!(quiet.stats.threads, 1);
    // Enough scans that the run spans several scheduler quanta — on a
    // single-core host a handful of microsecond-scale scans can finish
    // before the updater threads are ever scheduled.
    let busy = run_htap(
        &t,
        &HtapConfig {
            updaters: 2,
            scan_threads: 3,
            scans: 300,
            seed: 77,
            think_us: 0.0,
        },
    );
    assert_eq!(busy.scans_done, 300);
    assert!(busy.oltp_committed > 0, "updaters must have committed");
    assert!(busy.stats.threads > 1, "scans must have fanned out");
    assert!(busy.stats.morsels >= 300, "each scan processes ≥ 1 morsel");
    // With the updaters stopped the data is quiescent, so two runs with
    // the same seed must agree **bit-for-bit** across thread counts:
    // fold accumulators are per-morsel and merged in morsel order, so
    // even `f64` addition groups identically for any fan-out.
    let mk = |scan_threads| HtapConfig {
        updaters: 0,
        scan_threads,
        scans: 6,
        seed: 77,
        think_us: 0.0,
    };
    let seq = run_htap(&t, &mk(1));
    let par = run_htap(&t, &mk(4));
    assert_eq!(
        seq.revenue.to_bits(),
        par.revenue.to_bits(),
        "morsel-ordered merges must make fold results thread-count-invariant"
    );
}

#[test]
fn latency_driver_runs() {
    let t = build(DbConfig::heterogeneous_serializable().with_snapshot_every(50));
    let r = run_olap_latency(
        &t,
        OlapQuery::Q6,
        &LatencyConfig {
            threads: 2,
            repetitions: 3,
            seed: 4,
        },
    );
    assert_eq!(r.samples.len(), 3);
    assert!(r.mean.as_nanos() > 0);
}

/// Under sustained OLTP pressure with periodic analytics, the
/// heterogeneous database keeps far fewer versions alive (chains are
/// handed to epochs and released when they retire) than the homogeneous
/// one, which accumulates versions until GC runs. `total_versions` counts
/// frozen epoch stores too, so this measures what is actually resident.
#[test]
fn version_accumulation_differs_by_mode() {
    let hetero = build(DbConfig::heterogeneous_serializable().with_snapshot_every(50));
    let homo = build(DbConfig::homogeneous_serializable());
    let mut rng = SmallRng::seed_from_u64(8);
    for round in 0..500 {
        let kind = OltpKind::sample(&mut rng);
        let _ = run_oltp(&hetero, kind, &mut rng);
        let _ = run_oltp(&homo, kind, &mut rng);
        if round % 50 == 49 {
            // Analytics arrivals on the heterogeneous side: scans hand the
            // chains of every touched column over to the pinned epoch.
            let mut txn = hetero.db.begin(TxnKind::Olap);
            for q in [
                OlapQuery::ScanLineitem,
                OlapQuery::ScanOrders,
                OlapQuery::ScanPart,
            ] {
                let _ = queries::scan_table(&hetero, &mut txn, q).unwrap();
            }
            txn.commit().unwrap();
        }
    }
    let hetero_versions = hetero.db.total_versions();
    let homo_versions = homo.db.total_versions();
    assert!(
        hetero_versions < homo_versions,
        "hetero {hetero_versions} !< homo {homo_versions}"
    );
    // Homogeneous GC then clears them.
    homo.db.run_gc_once();
    assert_eq!(homo.db.total_versions(), 0);
}
