//! Known-bad fixture: an unjustified `unsafe` block.

pub fn read_first(p: *const u64) -> u64 {
    unsafe { *p }
}
