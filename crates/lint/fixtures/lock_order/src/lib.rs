//! Known-bad fixture: acquires `b_lock` (level 1) and then nests
//! `a_lock` (level 0) inside it — a hierarchy inversion.

pub fn inverted(locks: &Locks) {
    let b = locks.lock_b();
    let a = locks.lock_a();
    drop(a);
    drop(b);
}
