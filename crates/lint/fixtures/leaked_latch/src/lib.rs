//! Known-bad fixture: the `?` after the acquire exits with the latch
//! held — the spin-acquire deadlock the dataflow pass exists to catch.

pub fn install(rows: &Rows, row: u32) -> Result<(), Error> {
    let ts = rows.lock_row(row)?;
    rows.validate(row, ts)?; // leak: the error path exits latched
    rows.unlock_row(row, ts);
    Ok(())
}
