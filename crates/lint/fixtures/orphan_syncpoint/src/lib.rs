//! Known-bad fixture: a library sync point nobody proves a schedule
//! through.

pub fn do_work() {
    sched::hit("fixture:orphan");
}
