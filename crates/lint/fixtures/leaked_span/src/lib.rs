//! Known-bad fixture: three ways to leak a tracer span token — a `?`
//! exit, an early `return`, and a switched token that never reaches an
//! end.

pub fn question_leak(db: &Db) -> Result<u64, Error> {
    let tok = obs::span_begin(obs::stage!("fixture_stage"));
    let n = db.work()?; // leak: the error path drops the token
    obs::span_end(tok);
    Ok(n)
}

pub fn return_leak(db: &Db) -> u64 {
    let tok = obs::span_begin_sampled(obs::stage!("fixture_stage"), 4);
    if db.empty() {
        return 0; // leak: early return with the span open
    }
    let n = db.work_infallible();
    obs::span_end(tok);
    n
}

pub fn switch_leak(db: &Db) {
    let tok = obs::span_begin(obs::stage!("fixture_a"));
    let tok = obs::span_switch(tok, obs::stage!("fixture_b"));
    db.work_infallible();
    // leak: the switched-to span falls off the end unconsumed
    let _ = tok;
}
