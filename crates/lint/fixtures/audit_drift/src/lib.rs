//! Fixture body: one correctly tagged unsafe block — the finding comes
//! from the stale committed inventory, not from the code.

pub fn read_first(p: *const u64) -> u64 {
    // SAFETY(provenance: p): callers pass a valid, aligned, live pointer
    // to at least one u64.
    unsafe { *p }
}
