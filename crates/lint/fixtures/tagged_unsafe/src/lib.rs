//! Clean twin of `untagged_unsafe`: structured tags, resolving symbols.

pub fn read_first(p: *const u64) -> u64 {
    // SAFETY(provenance: p): callers pass a valid, aligned, live pointer
    // to at least one u64.
    unsafe { *p }
}

pub fn read_pair(q: *const u64, len: usize) -> u64 {
    // SAFETY(provenance: q, bounds: len): callers pass a pointer valid
    // for `len` words; the offset read stays below it.
    unsafe { *q.add(len - 1) }
}
