//! Clean twin of `escaped_pin`: the slice never leaves the pin scope —
//! it is either reduced to a value in place, or transferred through the
//! one blessed constructor that moves the pin along with it.

pub fn sum(area: &Area) -> u64 {
    let s = area.as_slice();
    let mut total = 0;
    for w in s {
        total += *w;
    }
    total
}

pub fn transfer(area: &Area) -> Cursor<'_> {
    let s = area.as_slice();
    Cursor { s }
}
