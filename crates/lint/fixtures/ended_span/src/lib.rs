//! Clean twin of `leaked_span`: the result is captured so the span ends
//! before `?`, the chained switch reaches an end, and the fail-stop
//! panic site is tagged `PANIC-OK`.

pub fn end_before_question(db: &Db) -> Result<u64, Error> {
    let tok = obs::span_begin(obs::stage!("fixture_stage"));
    let res = db.work();
    obs::span_end(tok);
    let n = res?;
    Ok(n)
}

pub fn chained_switch(db: &Db) -> u64 {
    let tok = obs::span_begin_sampled(obs::stage!("fixture_a"), 4);
    let tok = obs::span_switch(tok, obs::stage!("fixture_b"));
    let n = db.work_infallible();
    obs::span_end(tok);
    n
}

pub fn fail_stop(db: &Db) {
    let tok = obs::span_begin(obs::stage!("fixture_stage"));
    // PANIC-OK: past the point of no return — dying with the span open
    // is the designed fail-stop behaviour; the journal is diagnostic.
    db.apply().expect("apply after durable commit");
    obs::span_end(tok);
}
