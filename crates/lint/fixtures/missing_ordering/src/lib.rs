//! Known-bad fixture: an unjustified SeqCst RMW.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(x: &AtomicUsize) -> usize {
    x.fetch_add(1, Ordering::SeqCst)
}
