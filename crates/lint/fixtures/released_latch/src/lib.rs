//! Clean twin of `leaked_latch`: the error path releases before
//! propagating, and the one fail-stop panic site is tagged `PANIC-OK`.

pub fn install(rows: &Rows, row: u32) -> Result<(), Error> {
    let ts = rows.lock_row(row)?;
    match rows.validate(row, ts) {
        Ok(()) => {
            rows.unlock_row(row, ts);
            Ok(())
        }
        Err(e) => {
            rows.unlock_row(row, ts);
            Err(e)
        }
    }
}

pub fn fail_stop(rows: &Rows, row: u32) {
    let ts = rows.lock_row(row);
    // PANIC-OK: past the point of no return — the apply follows a durable
    // commit record, so dying with the latch held is the designed
    // fail-stop behaviour.
    rows.apply(row, ts).expect("apply after durable commit");
    rows.unlock_row(row, ts);
}
