//! Known-good fixture: every invariant satisfied.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn nested_in_order(locks: &Locks) {
    let a = locks.lock_a();
    let b = locks.lock_b();
    drop(b);
    drop(a);
}

pub fn reacquire_after_drop(locks: &Locks) {
    let b = locks.lock_b();
    drop(b);
    // `b_lock` no longer held: taking the lower class now is legal.
    let a = locks.lock_a();
    drop(a);
}

pub fn read_first(p: *const u64) -> u64 {
    // SAFETY(provenance: p): callers pass a valid, aligned pointer to
    // at least one u64.
    unsafe { *p }
}

pub fn bump(x: &AtomicUsize) -> usize {
    // ORDERING: SeqCst — this fixture counter is also the proof that a
    // justified ordering passes the lint.
    x.fetch_add(1, Ordering::SeqCst)
}

pub fn do_work() {
    sched::hit("fixture:step");
}

#[cfg(test)]
mod tests {
    #[test]
    fn step_schedule() {
        let ctl = sched::SchedCtl::install();
        ctl.pause("fixture:step");
        ctl.release("fixture:step", 1);
    }
}
