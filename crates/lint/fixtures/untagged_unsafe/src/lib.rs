//! Known-bad fixture: one legacy-style SAFETY comment (no structured
//! tag) and one tag whose symbols vanished from the function.

pub fn read_first(p: *const u64) -> u64 {
    // SAFETY: callers pass a valid, aligned pointer.
    unsafe { *p }
}

pub fn read_second(q: *const u64) -> u64 {
    // SAFETY(provenance: mapping, bounds: len): the mapping outlives us.
    unsafe { *q }
}
