//! Known-bad fixture: blocking I/O (`sync_all`) under a lock whose class
//! does not declare `allow_io`.

pub fn fsync_under_lock(this: &State, f: &std::fs::File) {
    let g = this.mu.lock();
    f.sync_all().unwrap();
    drop(g);
}
