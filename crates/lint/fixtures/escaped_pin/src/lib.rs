//! Known-bad fixture: the tail expression hands a pin-derived slice to
//! the caller, which outlives the pin scope (§4.1.3 recycling rule).

pub fn grab(area: &Area) -> &'static [u64] {
    let s = area.as_slice();
    s
}
