//! Robustness of the analysis substrate: the lexer, the token-tree
//! parser, and the CFG builder must be *total* — any input, however
//! mangled, produces a tree and a well-formed CFG without panicking and
//! in bounded time. The passes run on every file of the workspace on
//! every CI push, so "weird input" here is not adversarial paranoia: a
//! half-saved file, a macro-heavy module, or a future syntax extension
//! must degrade to missed findings, never to a crashed lint.
//!
//! Two generators:
//! * raw byte soup (lossy-decoded to UTF-8), and
//! * structured mutations of a realistic source template (delete, insert
//!   a delimiter/punct, duplicate a span, truncate) — much likelier to
//!   produce *almost*-valid Rust, which is where recursive parsers break.

use anker_lint::{cfg, lexer, parser};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Generous per-case ceiling: the whole 122-file workspace lints in well
/// under a second, so one sub-kilobyte input taking longer than this
/// means the parser or the CFG builder found a superlinear corner.
const CASE_BUDGET: Duration = Duration::from_secs(5);

/// A realistic template covering what the dataflow passes care about:
/// nested groups, `?`, early returns, loops with break, match arms,
/// closures, unsafe blocks, macros with panic edges, indexing.
const TEMPLATE: &str = r#"
impl Store {
    pub fn install(&self, rows: &[u32]) -> Result<u64, Error> {
        let ts = self.oracle.next();
        for &r in rows {
            let (old, word) = self.lock_row(r)?;
            if word == SENTINEL {
                self.unlock_row(r, old);
                return Err(Error::Busy);
            }
            match self.install_locked(r, old, word, ts) {
                Ok(()) => {}
                Err(e) => {
                    self.unlock_row(r, old);
                    return Err(e);
                }
            }
        }
        // SAFETY(provenance: rows, bounds: ts): fixture text only.
        let first = unsafe { *rows.as_ptr() };
        let total: u64 = rows.iter().map(|r| u64::from(*r)).sum();
        assert_eq!(self.check[first as usize], total % 7, "mismatch");
        loop {
            if self.drain(ts).unwrap() == 0 {
                break;
            }
        }
        Ok(ts)
    }
}
"#;

/// Run the full substrate pipeline, returning counts so the property can
/// assert structural sanity, not just absence of panics.
fn pipeline(src: &str) -> (usize, usize) {
    let lx = lexer::lex(src);
    lexer::test_regions(&lx);
    lexer::comment_runs_text(&lx);
    let trees = parser::parse(&lx);
    let fns = parser::functions(&trees);
    let mut nodes = 0usize;
    for f in &fns {
        let g = cfg::build(f.body);
        nodes += g.nodes.len();
        // Well-formedness: every edge targets a real node, and the graph
        // always carries its entry and exit.
        assert!(g.nodes.len() >= 2, "entry and exit always exist");
        for succs in &g.succ {
            for e in succs {
                assert!(e.to < g.nodes.len(), "edge target in range");
            }
        }
    }
    (fns.len(), nodes)
}

/// One structured mutation of the template.
#[derive(Debug, Clone)]
enum Mutation {
    Delete { at: usize, len: usize },
    Insert { at: usize, what: u8 },
    Duplicate { at: usize, len: usize },
    Truncate { at: usize },
}

const INSERTS: &[&str] = &[
    "{", "}", "(", ")", "[", "]", "?", "unsafe {", "match ", "=>", "return", "move |x|", "break",
    "#", "\"", "'a", "//", "let ", "..", "::<",
];

fn mutations() -> impl Strategy<Value = Vec<Mutation>> {
    let one = prop_oneof![
        (0..1000usize, 1..40usize).prop_map(|(at, len)| Mutation::Delete { at, len }),
        (0..1000usize, any::<u8>()).prop_map(|(at, what)| Mutation::Insert { at, what }),
        (0..1000usize, 1..60usize).prop_map(|(at, len)| Mutation::Duplicate { at, len }),
        (0..1000usize,).prop_map(|(at,)| Mutation::Truncate { at }),
    ];
    proptest::collection::vec(one, 1..8)
}

fn apply(src: &str, m: &Mutation) -> String {
    let mut s = src.to_string();
    let clamp = |at: usize| at.min(s.len());
    match m {
        Mutation::Delete { at, len } => {
            let a = clamp(*at);
            let b = (a + len).min(s.len());
            if s.is_char_boundary(a) && s.is_char_boundary(b) {
                s.replace_range(a..b, "");
            }
        }
        Mutation::Insert { at, what } => {
            let a = clamp(*at);
            if s.is_char_boundary(a) {
                s.insert_str(a, INSERTS[*what as usize % INSERTS.len()]);
            }
        }
        Mutation::Duplicate { at, len } => {
            let a = clamp(*at);
            let b = (a + len).min(s.len());
            if s.is_char_boundary(a) && s.is_char_boundary(b) {
                let span = s[a..b].to_string();
                s.insert_str(a, &span);
            }
        }
        Mutation::Truncate { at } => {
            let a = clamp(*at);
            if s.is_char_boundary(a) {
                s.truncate(a);
            }
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Byte soup: no input crashes or stalls the substrate.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let t0 = Instant::now();
        pipeline(&src);
        prop_assert!(t0.elapsed() < CASE_BUDGET, "pipeline stalled on byte soup");
    }

    /// Mutated realistic sources: almost-valid Rust is the hard case for
    /// a recursive parser; the pipeline must stay total and bounded.
    #[test]
    fn mutated_source_never_panics(muts in mutations()) {
        let mut src = TEMPLATE.to_string();
        for m in &muts {
            src = apply(&src, m);
        }
        let t0 = Instant::now();
        pipeline(&src);
        prop_assert!(t0.elapsed() < CASE_BUDGET, "pipeline stalled on mutated source");
    }
}

/// The unmutated template itself must parse into the expected shape —
/// guards against the mutation tests passing vacuously because the
/// template never produced a function in the first place.
#[test]
fn template_parses_into_a_function_with_a_cfg() {
    let (fns, nodes) = pipeline(TEMPLATE);
    assert_eq!(fns, 1, "the template holds exactly one function");
    assert!(nodes > 10, "its CFG is non-trivial, got {nodes} nodes");
}
