//! Self-tests: one known-bad fixture workspace per invariant class, a
//! known-good one, the binary's exit-code contract, and — the point of
//! the whole exercise — the real workspace coming up clean.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a grandparent")
        .to_path_buf()
}

fn checks_in(root: &Path) -> Vec<String> {
    anker_lint::run(root)
        .expect("lint run must succeed")
        .findings
        .iter()
        .map(|f| f.check.to_string())
        .collect()
}

#[test]
fn lock_order_inversion_is_flagged() {
    let report = anker_lint::run(&fixture("lock_order")).unwrap();
    let f = report
        .findings
        .iter()
        .find(|f| f.check == "lock-order")
        .expect("inverted nesting must be flagged");
    assert_eq!(f.file, "src/lib.rs");
    assert!(
        f.msg.contains("a_lock") && f.msg.contains("b_lock"),
        "{}",
        f.msg
    );
}

#[test]
fn io_under_no_io_lock_is_flagged() {
    assert!(
        checks_in(&fixture("io_under_lock")).contains(&"io-under-lock".to_string()),
        "fsync under a no_io lock must be flagged"
    );
}

#[test]
fn unsafe_without_safety_is_flagged() {
    assert!(checks_in(&fixture("missing_safety")).contains(&"unsafe-without-safety".to_string()));
}

#[test]
fn unjustified_ordering_is_flagged() {
    assert!(checks_in(&fixture("missing_ordering")).contains(&"ordering-unjustified".to_string()));
}

#[test]
fn orphan_sync_point_is_flagged() {
    let report = anker_lint::run(&fixture("orphan_syncpoint")).unwrap();
    let f = report
        .findings
        .iter()
        .find(|f| f.check == "sync-point-registry")
        .expect("a sync point with no test reference must be flagged");
    assert!(f.msg.contains("fixture:orphan"), "{}", f.msg);
}

#[test]
fn leaked_latch_is_flagged() {
    let report = anker_lint::run(&fixture("leaked_latch")).unwrap();
    let f = report
        .findings
        .iter()
        .find(|f| f.check == "latch-leak")
        .expect("a `?` exit inside the hold region must be flagged");
    assert!(f.msg.contains("row_latch"), "{}", f.msg);
    assert!(f.msg.contains('?'), "{}", f.msg);
}

#[test]
fn released_latch_twin_is_clean() {
    let report = anker_lint::run(&fixture("released_latch")).unwrap();
    assert!(
        report.findings.is_empty(),
        "release-on-every-path plus a PANIC-OK fail-stop site must be clean: {:#?}",
        report.findings
    );
}

#[test]
fn leaked_span_is_flagged() {
    let report = anker_lint::run(&fixture("leaked_span")).unwrap();
    let leaks: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.check == "span-leak")
        .collect();
    assert!(
        leaks.iter().any(|f| f.msg.contains('?')),
        "the `?` exit must be flagged: {leaks:#?}"
    );
    assert!(
        leaks.iter().any(|f| f.msg.contains("`return`")),
        "the early return must be flagged: {leaks:#?}"
    );
    assert!(
        leaks.iter().any(|f| f.msg.contains("switch_leak")),
        "the unconsumed switched token must be flagged: {leaks:#?}"
    );
}

#[test]
fn ended_span_twin_is_clean() {
    let report = anker_lint::run(&fixture("ended_span")).unwrap();
    assert!(
        report.findings.is_empty(),
        "end-on-every-path plus a PANIC-OK fail-stop site must be clean: {:#?}",
        report.findings
    );
}

#[test]
fn escaped_pin_is_flagged() {
    let report = anker_lint::run(&fixture("escaped_pin")).unwrap();
    let f = report
        .findings
        .iter()
        .find(|f| f.check == "pin-escape")
        .expect("a tail-expression return of pin-derived data must be flagged");
    assert!(f.msg.contains("tail-expression"), "{}", f.msg);
}

#[test]
fn pinned_scan_twin_is_clean() {
    let report = anker_lint::run(&fixture("pinned_scan")).unwrap();
    assert!(
        report.findings.is_empty(),
        "in-scope reduction plus a blessed transfer point must be clean: {:#?}",
        report.findings
    );
}

#[test]
fn untagged_unsafe_is_flagged() {
    let report = anker_lint::run(&fixture("untagged_unsafe")).unwrap();
    let untagged = report
        .findings
        .iter()
        .find(|f| f.check == "unsafe-provenance" && f.msg.contains("without a structured"))
        .expect("a legacy-style SAFETY comment must be flagged as untagged");
    assert_eq!(untagged.file, "src/lib.rs");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.check == "unsafe-provenance" && f.msg.contains("stale tag")),
        "a tag naming vanished symbols must be flagged: {:#?}",
        report.findings
    );
}

#[test]
fn tagged_unsafe_twin_is_clean() {
    let report = anker_lint::run(&fixture("tagged_unsafe")).unwrap();
    assert!(
        report.findings.is_empty(),
        "structured tags with resolving symbols must be clean: {:#?}",
        report.findings
    );
    assert_eq!(
        report.unsafe_sites.len(),
        2,
        "both blocks land in the inventory"
    );
}

#[test]
fn audit_drift_is_flagged() {
    let report = anker_lint::run(&fixture("audit_drift")).unwrap();
    let f = report
        .findings
        .iter()
        .find(|f| f.check == "unsafe-audit-drift")
        .expect("a committed inventory that disagrees with the tree must be flagged");
    assert!(f.msg.contains("anker-lint -- audit"), "{}", f.msg);
}

#[test]
fn clean_fixture_passes_every_check() {
    let report = anker_lint::run(&fixture("clean")).unwrap();
    assert!(
        report.findings.is_empty(),
        "clean fixture must produce no findings: {:#?}",
        report.findings
    );
}

/// The acceptance criterion: the actual workspace is clean, with the full
/// declared hierarchy loaded and the sync-point registry populated.
#[test]
fn workspace_is_clean() {
    let report = anker_lint::run(&repo_root()).expect("lint over the workspace");
    assert!(
        report.findings.is_empty(),
        "workspace must be lint-clean: {:#?}",
        report.findings
    );
    assert_eq!(
        report.classes, 10,
        "LOCKS.toml declares the 10-class hierarchy"
    );
    assert!(
        report.lib_points >= 8,
        "the commit pipeline's sync points must be registered, got {}",
        report.lib_points
    );
    assert!(
        !report.unsafe_sites.is_empty(),
        "the unsafe inventory must be populated (drift is checked against it)"
    );
}

#[test]
fn malformed_config_is_rejected() {
    assert!(anker_lint::config::parse("nonsense").is_err());
    assert!(
        anker_lint::config::parse(
            "version = 1\n[[class]]\nname = \"x\"\nlevel = 0\nacquire = [\"l\"]\n\
             files = [\"a.rs\"]\n[[class]]\nname = \"y\"\nlevel = 0\nacquire = [\"m\"]\n\
             files = [\"a.rs\"]\n"
        )
        .is_err(),
        "duplicate levels must be rejected"
    );
}

#[test]
fn binary_exit_codes_follow_the_contract() {
    let bin = env!("CARGO_BIN_EXE_anker-lint");
    let ok = Command::new(bin)
        .args(["check", "--root"])
        .arg(fixture("clean"))
        .output()
        .unwrap();
    assert!(ok.status.success(), "clean root must exit 0");

    let bad = Command::new(bin)
        .args(["check", "--root"])
        .arg(fixture("lock_order"))
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1), "findings must exit 1");

    let missing = Command::new(bin)
        .args(["check", "--root"])
        .arg(fixture("does_not_exist"))
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(2), "config errors must exit 2");
}
