//! Check 4: every *non-trivial* atomic ordering in library code — any
//! `Ordering::{Acquire, Release, AcqRel, SeqCst}` use — needs an
//! `// ORDERING:` comment within `WINDOW` lines above stating what the
//! ordering pairs with. `Relaxed` needs no justification (it claims
//! nothing), and test code is exempt: tests exercise the protocol, the
//! lib defines it. One comment covers the whole adjacent cluster that
//! sits within the window.

use crate::lexer::{comment_runs, in_regions, Lexed, TokKind};
use crate::Finding;

const WINDOW: u32 = 10;
const NON_TRIVIAL: &[&str] = &["Acquire", "Release", "AcqRel", "SeqCst"];

pub fn check(rel_path: &str, lx: &Lexed, test_regions: &[(u32, u32)]) -> Vec<Finding> {
    let is_lib = rel_path.contains("/src/") || rel_path.starts_with("src/");
    if !is_lib {
        return Vec::new();
    }
    let runs = comment_runs(lx, &["ORDERING"]);
    let t = &lx.toks;
    let mut findings = Vec::new();
    for i in 0..t.len().saturating_sub(2) {
        if !(t[i].kind == TokKind::Ident
            && t[i].text == "Ordering"
            && t[i + 1].text == "::"
            && t[i + 2].kind == TokKind::Ident
            && NON_TRIVIAL.contains(&t[i + 2].text.as_str()))
        {
            continue;
        }
        let line = t[i].line;
        if in_regions(test_regions, line) {
            continue;
        }
        let justified = runs.iter().any(|&end| end <= line && line - end <= WINDOW);
        if !justified {
            findings.push(Finding {
                file: rel_path.to_string(),
                line,
                check: "ordering-unjustified",
                msg: format!(
                    "`Ordering::{}` without an `// ORDERING:` comment within {WINDOW} lines above",
                    t[i + 2].text
                ),
            });
        }
    }
    findings
}
