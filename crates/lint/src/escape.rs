//! Check 7 (dataflow): pin-escape analysis. Data derived from a frozen
//! area — `[pins].sources` calls in `LOCKS.toml`, e.g. `as_slice` — is
//! only valid while the `SnapshotReader`/epoch pin that froze the area
//! is alive (the paper's §4.1.3 recycling rule: an area may be reused
//! once no pinned epoch can reach it). So pin-derived values must not
//! leave the scope that holds the pin:
//!
//! * no `return` (and no tail-expression return) of a tainted value,
//! * no store into a field (`self.x = tainted` outlives the frame),
//! * no send over a channel (`.send(tainted)`),
//! * no capture by a `move` closure (which may outlive the pin).
//!
//! Taint starts at source calls, propagates through `let` bindings and
//! plain-ident assignments within a function, and is checked per
//! function. Functions listed in the `[[escape]]` allowlist are blessed:
//! they transfer the pin together with the data (e.g. `into_partitions`
//! hands each partition an `Arc` of the pin) and are audited by review,
//! not by this pass.
//!
//! Deliberately not proven: flow through struct fields and across
//! function boundaries (a constructor storing tainted data into the
//! struct it returns is caught at the constructor; reads back out of
//! fields are not re-tainted), aliasing, and whether a non-`move`
//! closure outlives the frame (it cannot, by borrow rules). Test code is
//! exempt — the lib defines the protocol.

use crate::config::{Config, Pattern};
use crate::lexer::{in_regions, test_regions, Lexed, TokKind};
use crate::parser::{functions, Tree};
use crate::Finding;
use std::collections::HashSet;

pub fn check(rel_path: &str, lx: &Lexed, trees: &[Tree], cfg: &Config) -> Vec<Finding> {
    if cfg.pins.sources.is_empty()
        || !cfg.pins.files.iter().any(|f| f == rel_path)
        || rel_path.contains("/tests/")
    {
        return Vec::new();
    }
    let regions = test_regions(lx);
    let mut findings = Vec::new();
    for f in functions(trees) {
        if in_regions(&regions, f.line) {
            continue;
        }
        if cfg.escape_allowed(rel_path, &f.name, &f.qual_name) {
            continue;
        }
        let mut tainted: HashSet<String> = HashSet::new();
        // Taint to fixpoint: a binding whose initializer mentions a
        // source call or an already-tainted ident taints its pattern.
        for _ in 0..8 {
            let before = tainted.len();
            collect_taints(&f.body.children, &cfg.pins.sources, &mut tainted);
            if tainted.len() == before {
                break;
            }
        }
        detect(
            rel_path,
            &f.name,
            &f.body.children,
            true,
            &cfg.pins.sources,
            &tainted,
            &mut findings,
        );
    }
    findings.sort();
    findings.dedup();
    findings
}

/// Is the leaf at `items[i]` a call of one of `pats`?
fn is_source_call(items: &[Tree], i: usize, pats: &[Pattern]) -> bool {
    let Some(t) = items[i].leaf() else {
        return false;
    };
    if t.kind != TokKind::Ident
        || items
            .get(i + 1)
            .and_then(Tree::group)
            .is_none_or(|g| g.delim != '(')
    {
        return false;
    }
    if i >= 1 && items[i - 1].is_leaf("fn") {
        return false;
    }
    pats.iter().any(|p| match p {
        Pattern::Bare(n) => t.text == *n,
        Pattern::Method { recv, method } => {
            t.text == *method
                && i >= 2
                && items[i - 1].is_leaf(".")
                && items[i - 2].leaf().is_some_and(|r| r.text == *recv)
        }
    })
}

fn contains_source(items: &[Tree], pats: &[Pattern]) -> bool {
    items.iter().enumerate().any(|(i, t)| {
        is_source_call(items, i, pats)
            || t.group()
                .is_some_and(|g| contains_source(&g.children, pats))
    })
}

fn contains_tainted(items: &[Tree], tainted: &HashSet<String>) -> Option<String> {
    for t in items {
        match t {
            Tree::Leaf(tok) if tok.kind == TokKind::Ident && tainted.contains(&tok.text) => {
                return Some(tok.text.clone())
            }
            Tree::Group(g) => {
                if let Some(hit) = contains_tainted(&g.children, tainted) {
                    return Some(hit);
                }
            }
            _ => {}
        }
    }
    None
}

fn hot(items: &[Tree], pats: &[Pattern], tainted: &HashSet<String>) -> Option<String> {
    if let Some(name) = contains_tainted(items, tainted) {
        return Some(format!("`{name}`"));
    }
    if contains_source(items, pats) {
        return Some("a pin-source call result".to_string());
    }
    None
}

/// Index of the next `;` leaf at this level, or the slice end.
fn stmt_end(items: &[Tree], from: usize) -> usize {
    (from..items.len())
        .find(|&j| items[j].is_leaf(";"))
        .unwrap_or(items.len())
}

/// Is the leaf at `i` a *plain* assignment `=` (not `==`, `<=`, `=>`,
/// `+=`, …)? The lexer emits single-char puncts, so compound operators
/// appear as adjacent leaves.
fn is_plain_assign(items: &[Tree], i: usize) -> bool {
    if !items[i].is_leaf("=") {
        return false;
    }
    if items
        .get(i + 1)
        .and_then(Tree::leaf)
        .is_some_and(|t| t.text == "=" || t.text == ">")
    {
        return false; // `==` or `=>`
    }
    if let Some(p) = i.checked_sub(1).and_then(|j| items[j].leaf()) {
        if matches!(
            p.text.as_str(),
            "=" | "!" | "<" | ">" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
        ) {
            return false; // comparison or compound assignment
        }
    }
    true
}

/// The binding `=` of a `let`: like [`is_plain_assign`] but a preceding
/// `>` is fine — `let x: Vec<Option<&[u64]>> = …` ends its type with
/// `>`, and nothing before a `let`'s `=` can be a comparison.
fn is_binding_eq(items: &[Tree], i: usize) -> bool {
    if is_plain_assign(items, i) {
        return true;
    }
    items[i].is_leaf("=")
        && i.checked_sub(1)
            .and_then(|j| items[j].leaf())
            .is_some_and(|p| p.text == ">")
        && !items
            .get(i + 1)
            .and_then(Tree::leaf)
            .is_some_and(|t| t.text == "=" || t.text == ">")
}

/// One fixpoint round of taint collection over a statement list,
/// recursing into nested groups (closures, blocks, match arms).
fn collect_taints(items: &[Tree], pats: &[Pattern], tainted: &mut HashSet<String>) {
    let mut start = 0usize;
    while start < items.len() {
        let end = stmt_end(items, start);
        let stmt = &items[start..end];
        // `let pat (: ty)? = init` — taint the pattern idents when the
        // initializer is hot. The pattern stops at `:` so type idents
        // (`u64`, `Vec`) never become taint keys.
        for (k, t) in stmt.iter().enumerate() {
            if !t.is_leaf("let") {
                continue;
            }
            let mut pat_end = k + 1;
            while pat_end < stmt.len()
                && !stmt[pat_end].is_leaf(":")
                && !is_binding_eq(stmt, pat_end)
            {
                pat_end += 1;
            }
            let Some(eq) = (pat_end..stmt.len()).find(|&j| is_binding_eq(stmt, j)) else {
                continue;
            };
            if hot(&stmt[eq + 1..], pats, tainted).is_some() {
                taint_pattern(&stmt[k + 1..pat_end], tainted);
            }
        }
        // `x = hot` (no let, no `.` on the LHS): propagate to the ident.
        if !stmt.iter().any(|t| t.is_leaf("let")) {
            if let Some(eq) = (0..stmt.len()).find(|&j| is_plain_assign(stmt, j)) {
                let lhs = &stmt[..eq];
                let idents: Vec<&str> = lhs
                    .iter()
                    .filter_map(Tree::leaf)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.as_str())
                    .collect();
                if let [name] = idents.as_slice() {
                    if !lhs.iter().any(|t| t.is_leaf("."))
                        && hot(&stmt[eq + 1..], pats, tainted).is_some()
                    {
                        tainted.insert(name.to_string());
                    }
                }
            }
        }
        for t in stmt {
            if let Tree::Group(g) = t {
                collect_taints(&g.children, pats, tainted);
            }
        }
        start = end + 1;
    }
}

/// Lowercase non-keyword idents in a binding pattern become taint keys
/// (uppercase ones are enum constructors / types: `Some`, `Vec`).
fn taint_pattern(pat: &[Tree], tainted: &mut HashSet<String>) {
    for t in pat {
        match t {
            Tree::Leaf(tok)
                if tok.kind == TokKind::Ident
                    && tok.text.chars().next().is_some_and(char::is_lowercase)
                    && !matches!(tok.text.as_str(), "mut" | "ref" | "box" | "_") =>
            {
                tainted.insert(tok.text.clone());
            }
            Tree::Group(g) => taint_pattern(&g.children, tainted),
            _ => {}
        }
    }
}

/// Escape detection walk. `top` is true only for the function body's own
/// statement level, where the tail expression is an implicit return.
#[allow(clippy::too_many_arguments)]
fn detect(
    rel_path: &str,
    fn_name: &str,
    items: &[Tree],
    top: bool,
    pats: &[Pattern],
    tainted: &HashSet<String>,
    findings: &mut Vec<Finding>,
) {
    fn report(
        findings: &mut Vec<Finding>,
        rel_path: &str,
        fn_name: &str,
        line: u32,
        what: &str,
        via: String,
    ) {
        findings.push(Finding {
            file: rel_path.to_string(),
            line,
            check: "pin-escape",
            msg: format!(
                "{what} {via} escapes the pin scope in `{fn_name}`; pin-derived data must not \
                 outlive its SnapshotReader/epoch pin (bless intentional transfer points with \
                 `[[escape]]` in LOCKS.toml)"
            ),
        });
    }
    let mut i = 0usize;
    let mut last_semi: Option<usize> = None;
    while i < items.len() {
        match &items[i] {
            Tree::Leaf(t) if t.text == ";" => {
                last_semi = Some(i);
                i += 1;
            }
            Tree::Leaf(t) if t.text == "return" => {
                let end = stmt_end(items, i + 1);
                if let Some(via) = hot(&items[i + 1..end], pats, tainted) {
                    report(findings, rel_path, fn_name, t.line, "`return` of", via);
                }
                i = end;
            }
            Tree::Leaf(t) if (t.text == "send" || t.text == "try_send") => {
                if i >= 1
                    && items[i - 1].is_leaf(".")
                    && items
                        .get(i + 1)
                        .and_then(Tree::group)
                        .is_some_and(|g| g.delim == '(')
                {
                    let g = items[i + 1].group().expect("paren group");
                    if let Some(via) = hot(&g.children, pats, tainted) {
                        report(findings, rel_path, fn_name, t.line, "channel send of", via);
                    }
                }
                i += 1;
            }
            Tree::Leaf(t) if t.text == "move" => {
                // `move |params| body` — find the closure body.
                let mut j = i + 1;
                while j < items.len() && j <= i + 2 && !items[j].is_leaf("|") {
                    j += 1;
                }
                if items.get(j).is_some_and(|x| x.is_leaf("|")) {
                    let mut k = j + 1;
                    while k < items.len() && !items[k].is_leaf("|") {
                        k += 1;
                    }
                    let body_start = k + 1;
                    let body_end = (body_start..items.len())
                        .find(|&m| items[m].is_leaf(",") || items[m].is_leaf(";"))
                        .unwrap_or(items.len());
                    if body_start <= items.len() {
                        if let Some(via) =
                            hot(&items[body_start..body_end.max(body_start)], pats, tainted)
                        {
                            report(
                                findings,
                                rel_path,
                                fn_name,
                                t.line,
                                "`move` closure capturing",
                                via,
                            );
                        }
                    }
                }
                i += 1;
            }
            Tree::Group(g) => {
                detect(
                    rel_path,
                    fn_name,
                    &g.children,
                    false,
                    pats,
                    tainted,
                    findings,
                );
                i += 1;
            }
            _ => i += 1,
        }
    }
    // Field stores: `lhs.field = hot` — scan statements for a plain `=`
    // whose LHS contains a `.` (storing through a place that can outlive
    // the frame).
    let mut start = 0usize;
    while start < items.len() {
        let end = stmt_end(items, start);
        let stmt = &items[start..end];
        if !stmt.iter().any(|t| t.is_leaf("let")) {
            if let Some(eq) = (0..stmt.len()).find(|&j| is_plain_assign(stmt, j)) {
                if stmt[..eq].iter().any(|t| t.is_leaf(".")) {
                    if let Some(via) = hot(&stmt[eq + 1..], pats, tainted) {
                        report(
                            findings,
                            rel_path,
                            fn_name,
                            stmt[eq].line(),
                            "field store of",
                            via,
                        );
                    }
                }
            }
        }
        start = end + 1;
    }
    // The tail expression is an implicit return.
    if top {
        let tail_start = last_semi.map_or(0, |s| s + 1);
        let tail = &items[tail_start..];
        let is_value = tail
            .first()
            .and_then(Tree::leaf)
            .is_none_or(|t| !matches!(t.text.as_str(), "for" | "while" | "loop"))
            && !tail.is_empty();
        if is_value {
            if let Some(via) = hot(tail, pats, tainted) {
                report(
                    findings,
                    rel_path,
                    fn_name,
                    tail[0].line(),
                    "tail-expression return of",
                    via,
                );
            }
        }
    }
}
