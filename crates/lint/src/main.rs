//! CLI for `anker-lint`. Usage:
//!
//! ```text
//! cargo run -p anker-lint -- check [--root PATH] [--budget-ms N]
//! cargo run -p anker-lint -- audit [--root PATH]
//! ```
//!
//! `check` runs every pass; `--budget-ms` additionally fails the run if
//! it exceeds the wall-clock budget (CI asserts the lint stays cheap).
//! `audit` regenerates `results/unsafe_audit.json` from the tree so the
//! drift check can be satisfied after intentional `unsafe` changes.
//!
//! Exit codes: 0 clean, 1 findings/budget overrun, 2 usage/configuration
//! error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = None;
    let mut budget_ms: Option<u128> = None;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "check" | "audit" if cmd.is_none() => cmd = Some(args[i].clone()),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => return usage("--root needs a path"),
                }
            }
            "--budget-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(ms) => budget_ms = Some(ms),
                    None => return usage("--budget-ms needs a number"),
                }
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    let Some(cmd) = cmd else {
        return usage("expected the `check` or `audit` subcommand");
    };
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match anker_lint::find_root(&cwd) {
                Some(r) => r,
                None => return usage("no LOCKS.toml here or above; pass --root"),
            }
        }
    };
    let started = Instant::now();
    let report = match anker_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("anker-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_millis();
    if cmd == "audit" {
        let out = root.join("results/unsafe_audit.json");
        if let Some(dir) = out.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("anker-lint: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        let json = anker_lint::provenance::audit_json(&report.unsafe_sites);
        if let Err(e) = std::fs::write(&out, json) {
            eprintln!("anker-lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!(
            "anker-lint: audit — {} unsafe block(s) inventoried to {}",
            report.unsafe_sites.len(),
            out.display()
        );
        return ExitCode::SUCCESS;
    }
    let mut code = ExitCode::SUCCESS;
    if report.findings.is_empty() {
        println!(
            "anker-lint: OK — {} files, {} lock classes, {} sync points, {} unsafe blocks, \
             0 findings ({elapsed_ms} ms)",
            report.files_scanned,
            report.classes,
            report.lib_points,
            report.unsafe_sites.len()
        );
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "anker-lint: {} finding(s) across {} files",
            report.findings.len(),
            report.files_scanned
        );
        code = ExitCode::FAILURE;
    }
    if let Some(budget) = budget_ms {
        if elapsed_ms > budget {
            println!("anker-lint: budget exceeded — {elapsed_ms} ms > {budget} ms");
            code = ExitCode::FAILURE;
        }
    }
    code
}

fn usage(err: &str) -> ExitCode {
    eprintln!("anker-lint: {err}\nusage: anker-lint <check|audit> [--root PATH] [--budget-ms N]");
    ExitCode::from(2)
}
