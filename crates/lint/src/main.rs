//! CLI for `anker-lint`. Usage:
//!
//! ```text
//! cargo run -p anker-lint -- check [--root PATH]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = None;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "check" if cmd.is_none() => cmd = Some("check"),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => return usage("--root needs a path"),
                }
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if cmd != Some("check") {
        return usage("expected the `check` subcommand");
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match anker_lint::find_root(&cwd) {
                Some(r) => r,
                None => return usage("no LOCKS.toml here or above; pass --root"),
            }
        }
    };
    match anker_lint::run(&root) {
        Ok(report) if report.findings.is_empty() => {
            println!(
                "anker-lint: OK — {} files, {} lock classes, {} sync points, 0 findings",
                report.files_scanned, report.classes, report.lib_points
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            println!(
                "anker-lint: {} finding(s) across {} files",
                report.findings.len(),
                report.files_scanned
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("anker-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("anker-lint: {err}\nusage: anker-lint check [--root PATH]");
    ExitCode::from(2)
}
