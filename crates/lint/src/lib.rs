//! `anker-lint`: concurrency-invariant static analysis for the AnKerDB
//! workspace. Five checks, all driven by `LOCKS.toml` and a hand-rolled
//! lexer (no `syn`, no registry dependencies):
//!
//! 1. **lock-order** — lexical acquisition nesting must follow the
//!    declared hierarchy;
//! 2. **io-under-lock** — no blocking file I/O while a `no_io` class is
//!    held;
//! 3. **unsafe-without-safety** — every `unsafe` carries a `// SAFETY:`;
//! 4. **ordering-unjustified** — every non-`Relaxed` atomic ordering in
//!    lib code carries an `// ORDERING:`;
//! 5. **sync-point-registry** — `sched::hit` points and test references
//!    must pair up.
//!
//! Plus three dataflow passes over a token-tree parse and a per-function
//! CFG approximation (see DESIGN.md, "Dataflow lint"):
//!
//! 6. **latch-leak** — manual-release classes release on *every* CFG
//!    exit path (`?`, `return`, panic edges included);
//! 7. **pin-escape** — frozen-area slices never escape their epoch pin;
//! 8. **unsafe-provenance** — every `unsafe` block carries a structured
//!    `SAFETY(provenance: …, bounds: …)` tag whose symbols resolve, with
//!    a per-crate inventory (`results/unsafe_audit.json`) diffed by CI;
//! 9. **span-leak** — every `anker-obs` span token reaches
//!    `span_end`/`span_switch` on every CFG exit path, so a leaked span
//!    cannot silently skew stage timings.
//!
//! Run as `cargo run -p anker-lint -- check`. The runtime complement is
//! `anker_util::lockcheck` (`--features lockcheck`); `witness_agrees`
//! cross-checks that the two layers declare the same hierarchy.
// No unsafe in this crate: verified by the compiler, inventoried by
// `anker-lint -- audit` (results/unsafe_audit.json records zero sites).
#![forbid(unsafe_code)]

pub mod cfg;
pub mod config;
pub mod escape;
pub mod latch;
pub mod lexer;
pub mod locks;
pub mod ordering;
pub mod parser;
pub mod provenance;
pub mod safety;
pub mod spans;
pub mod syncpoints;

use std::fmt;
use std::path::{Path, PathBuf};

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub check: &'static str,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.check, self.msg
        )
    }
}

#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub classes: usize,
    pub lib_points: usize,
    /// Every `unsafe` block seen, for the audit inventory.
    pub unsafe_sites: Vec<provenance::UnsafeSite>,
}

/// Run every check over the workspace rooted at `root` (the directory
/// containing `LOCKS.toml`).
pub fn run(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join("LOCKS.toml");
    let cfg_src = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = config::parse(&cfg_src)?;

    let mut report = Report {
        classes: cfg.classes.len(),
        ..Report::default()
    };
    report.findings.extend(witness_agrees(root, &cfg)?);

    let mut files = Vec::new();
    walk(root, root, &mut files);
    files.sort();
    let mut reg = syncpoints::Registry::default();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        let lx = lexer::lex(&src);
        let regions = lexer::test_regions(&lx);
        let trees = parser::parse(&lx);
        report.findings.extend(locks::check(rel, &lx, &cfg));
        report.findings.extend(safety::check(rel, &lx));
        report.findings.extend(ordering::check(rel, &lx, &regions));
        report.findings.extend(latch::check(rel, &lx, &trees, &cfg));
        report.findings.extend(spans::check(rel, &lx, &trees, &cfg));
        report
            .findings
            .extend(escape::check(rel, &lx, &trees, &cfg));
        report.findings.extend(provenance::check(
            rel,
            &lx,
            &trees,
            &mut report.unsafe_sites,
        ));
        syncpoints::collect(rel, &lx, &regions, &mut reg);
        report.files_scanned += 1;
    }
    report.lib_points = reg.lib_points.len();
    report.findings.extend(syncpoints::verdict(&reg));
    report.findings.extend(provenance::drift(
        &root.join("results/unsafe_audit.json"),
        &report.unsafe_sites,
    ));
    report.findings.sort();
    Ok(report)
}

/// Cross-check `LOCKS.toml` against the runtime witness's `LockClass`
/// statics in `anker_util::lockcheck` — the two layers must declare the
/// same (name, level, ordered) triples. Skipped silently when the file is
/// absent (e.g. a fixture workspace).
pub fn witness_agrees(root: &Path, cfg: &config::Config) -> Result<Vec<Finding>, String> {
    let rel = "crates/util/src/lockcheck.rs";
    let path = root.join(rel);
    let Ok(src) = std::fs::read_to_string(&path) else {
        return Ok(Vec::new());
    };
    let lx = lexer::lex(&src);
    let t = &lx.toks;
    let mut witness: Vec<(String, i64, bool, u32)> = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        let is_literal = t[i].text == "LockClass"
            && t.get(i + 1).is_some_and(|x| x.text == "{")
            && (i == 0 || t[i - 1].text != "struct");
        if is_literal {
            let line = t[i].line;
            let (mut name, mut level, mut ordered) = (None, None, None);
            let mut j = i + 2;
            while j < t.len() && t[j].text != "}" {
                match t[j].text.as_str() {
                    "name" => {
                        if let Some(s) = t.get(j + 2).filter(|x| x.kind == lexer::TokKind::Str) {
                            name = Some(s.text.clone());
                        }
                    }
                    "level" => {
                        if let Some(n) = t.get(j + 2).and_then(|x| x.text.parse::<i64>().ok()) {
                            level = Some(n);
                        }
                    }
                    "ordered" => {
                        if let Some(b) = t.get(j + 2) {
                            ordered = Some(b.text == "true");
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if let (Some(n), Some(l), Some(o)) = (name, level, ordered) {
                witness.push((n, l, o, line));
            }
            i = j;
            continue;
        }
        i += 1;
    }
    let mut findings = Vec::new();
    for (name, level, ordered, line) in &witness {
        match cfg.classes.iter().find(|c| c.name == *name) {
            None => findings.push(Finding {
                file: rel.to_string(),
                line: *line,
                check: "witness-config-drift",
                msg: format!("runtime witness class `{name}` is not declared in LOCKS.toml"),
            }),
            Some(c) if c.level != *level || c.ordered != *ordered => findings.push(Finding {
                file: rel.to_string(),
                line: *line,
                check: "witness-config-drift",
                msg: format!(
                    "class `{name}`: witness says (level {level}, ordered {ordered}), LOCKS.toml \
                     says (level {}, ordered {})",
                    c.level, c.ordered
                ),
            }),
            Some(_) => {}
        }
    }
    for c in &cfg.classes {
        if !witness.iter().any(|(n, ..)| n == &c.name) {
            findings.push(Finding {
                file: "LOCKS.toml".to_string(),
                line: 0,
                check: "witness-config-drift",
                msg: format!(
                    "class `{}` has no LockClass static in the runtime witness",
                    c.name
                ),
            });
        }
    }
    Ok(findings)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" || name == "shims" || name == "fixtures" {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Locate the workspace root: the nearest ancestor of `start` (including
/// itself) containing a `LOCKS.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(d) = cur {
        if d.join("LOCKS.toml").is_file() {
            return Some(d.to_path_buf());
        }
        cur = d.parent();
    }
    None
}
